//! Property-based tests for tensor algebra.

use proptest::prelude::*;
use wr_tensor::{Rng64, Tensor};

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (AB)ᵀ = BᵀAᵀ
    #[test]
    fn matmul_transpose_identity(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    /// A(B + C) = AB + AC
    #[test]
    fn matmul_distributes(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let c = tensor(k, n, seed + 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    /// matmul_nt/tn agree with explicit transposes.
    #[test]
    fn fused_transposed_matmuls(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let a = tensor(m, k, seed);
        let b = tensor(n, k, seed + 1);
        prop_assert!(close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4));
        let c = tensor(k, m, seed + 2);
        let d = tensor(k, n, seed + 3);
        prop_assert!(close(&c.matmul_tn(&d), &c.transpose().matmul(&d), 1e-4));
    }

    /// Row-wise softmax is invariant to per-row constant shifts.
    #[test]
    fn softmax_shift_invariance(rows in 1usize..5, cols in 2usize..8, shift in -10.0f32..10.0, seed in 0u64..500) {
        let x = tensor(rows, cols, seed);
        let shifted = x.add_scalar(shift);
        prop_assert!(close(&x.softmax_rows(), &shifted.softmax_rows(), 1e-4));
    }

    /// concat_cols then slice_cols round-trips.
    #[test]
    fn concat_slice_roundtrip(rows in 1usize..6, c1 in 1usize..5, c2 in 1usize..5, seed in 0u64..500) {
        let a = tensor(rows, c1, seed);
        let b = tensor(rows, c2, seed + 1);
        let cat = Tensor::concat_cols(&[&a, &b]);
        let left = cat.slice_cols(0, c1);
        let right = cat.slice_cols(c1, c1 + c2);
        prop_assert_eq!(left.data(), a.data());
        prop_assert_eq!(right.data(), b.data());
    }

    /// gather_rows distributes over row concatenation of the index lists.
    #[test]
    fn gather_concat(rows in 2usize..8, cols in 1usize..5, seed in 0u64..500) {
        let t = tensor(rows, cols, seed);
        let i1 = vec![0usize, rows - 1];
        let i2 = vec![rows / 2];
        let all: Vec<usize> = i1.iter().chain(i2.iter()).copied().collect();
        let g_all = t.gather_rows(&all);
        let g_cat = Tensor::concat_rows(&[&t.gather_rows(&i1), &t.gather_rows(&i2)]);
        prop_assert_eq!(g_all.data(), g_cat.data());
    }

    /// L2-normalized rows have unit norm (when input row is nonzero).
    #[test]
    fn l2_rows_unit(rows in 1usize..6, cols in 1usize..6, seed in 0u64..500) {
        let x = tensor(rows, cols, seed).add_scalar(0.01);
        let n = x.l2_normalize_rows();
        for r in 0..rows {
            let norm: f32 = n.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    /// bmm equals per-slice matmul.
    #[test]
    fn bmm_equals_slices(b in 1usize..4, m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..500) {
        let mut rng = Rng64::seed_from(seed);
        let a = Tensor::randn(&[b, m, k], &mut rng);
        let c = Tensor::randn(&[b, k, n], &mut rng);
        let out = a.bmm(&c);
        for i in 0..b {
            let ai = Tensor::from_vec(a.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]);
            let ci = Tensor::from_vec(c.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]);
            let oi = ai.matmul(&ci);
            for (x, y) in out.data()[i * m * n..(i + 1) * m * n].iter().zip(oi.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
