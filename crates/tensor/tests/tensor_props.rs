//! Property-style tests for tensor algebra.
//!
//! The offline workspace carries no proptest; each property is exercised
//! over a deterministic sweep of shapes and seeds instead, which keeps the
//! same coverage intent (many random instances per invariant) while staying
//! reproducible from fixed seeds.

use wr_tensor::{Rng64, Tensor};

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Deterministic sweep over (m, k, n, seed) cases.
fn shape_cases() -> Vec<(usize, usize, usize, u64)> {
    let mut rng = Rng64::seed_from(0xC0FFEE);
    (0..32)
        .map(|i| {
            (
                1 + rng.below(8),
                1 + rng.below(8),
                1 + rng.below(8),
                i as u64 * 13 + 5,
            )
        })
        .collect()
}

/// (AB)ᵀ = BᵀAᵀ
#[test]
fn matmul_transpose_identity() {
    for (m, k, n, seed) in shape_cases() {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert!(close(&lhs, &rhs, 1e-4), "m={m} k={k} n={n} seed={seed}");
    }
}

/// A(B + C) = AB + AC
#[test]
fn matmul_distributes() {
    for (m, k, n, seed) in shape_cases() {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed + 1);
        let c = tensor(k, n, seed + 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert!(close(&lhs, &rhs, 1e-3), "m={m} k={k} n={n} seed={seed}");
    }
}

/// matmul_nt/tn agree with explicit transposes.
#[test]
fn fused_transposed_matmuls() {
    for (m, k, n, seed) in shape_cases() {
        let a = tensor(m, k, seed);
        let b = tensor(n, k, seed + 1);
        assert!(close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4));
        let c = tensor(k, m, seed + 2);
        let d = tensor(k, n, seed + 3);
        assert!(close(&c.matmul_tn(&d), &c.transpose().matmul(&d), 1e-4));
    }
}

/// Row-wise softmax is invariant to per-row constant shifts.
#[test]
fn softmax_shift_invariance() {
    for (rows, cols, _, seed) in shape_cases() {
        let cols = cols.max(2);
        let shift = (seed as f32 % 20.0) - 10.0;
        let x = tensor(rows, cols, seed);
        let shifted = x.add_scalar(shift);
        assert!(close(&x.softmax_rows(), &shifted.softmax_rows(), 1e-4));
    }
}

/// concat_cols then slice_cols round-trips.
#[test]
fn concat_slice_roundtrip() {
    for (rows, c1, c2, seed) in shape_cases() {
        let a = tensor(rows, c1, seed);
        let b = tensor(rows, c2, seed + 1);
        let cat = Tensor::concat_cols(&[&a, &b]);
        let left = cat.slice_cols(0, c1);
        let right = cat.slice_cols(c1, c1 + c2);
        assert_eq!(left.data(), a.data());
        assert_eq!(right.data(), b.data());
    }
}

/// gather_rows distributes over row concatenation of the index lists.
#[test]
fn gather_concat() {
    for (rows, cols, _, seed) in shape_cases() {
        let rows = rows.max(2);
        let t = tensor(rows, cols, seed);
        let i1 = vec![0usize, rows - 1];
        let i2 = vec![rows / 2];
        let all: Vec<usize> = i1.iter().chain(i2.iter()).copied().collect();
        let g_all = t.gather_rows(&all);
        let g_cat = Tensor::concat_rows(&[&t.gather_rows(&i1), &t.gather_rows(&i2)]);
        assert_eq!(g_all.data(), g_cat.data());
    }
}

/// L2-normalized rows have unit norm (when input row is nonzero).
#[test]
fn l2_rows_unit() {
    for (rows, cols, _, seed) in shape_cases() {
        let x = tensor(rows, cols, seed).add_scalar(0.01);
        let n = x.l2_normalize_rows();
        for r in 0..rows {
            let norm: f32 = n.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "row {r} norm {norm}");
        }
    }
}

/// bmm equals per-slice matmul.
#[test]
fn bmm_equals_slices() {
    for (b, m, k, seed) in shape_cases() {
        let (b, m, k, n) = (b.min(4), m.min(4), k.min(4), (seed as usize % 3) + 1);
        let mut rng = Rng64::seed_from(seed);
        let a = Tensor::randn(&[b, m, k], &mut rng);
        let c = Tensor::randn(&[b, k, n], &mut rng);
        let out = a.bmm(&c);
        for i in 0..b {
            let ai = Tensor::from_vec(a.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]);
            let ci = Tensor::from_vec(c.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]);
            let oi = ai.matmul(&ci);
            for (x, y) in out.data()[i * m * n..(i + 1) * m * n].iter().zip(oi.data()) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
