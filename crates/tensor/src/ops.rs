//! Elementwise and broadcast arithmetic on [`Tensor`].

use crate::{Result, Tensor, TensorError};

macro_rules! binary_op {
    ($name:ident, $try_name:ident, $op:tt) => {
        /// Elementwise operation; panics on shape mismatch.
        pub fn $name(&self, other: &Tensor) -> Tensor {
            // wr-check: allow(R1) — documented panicking wrapper; the
            // $try_name twin is the Result path.
            self.$try_name(other).expect(stringify!($name))
        }

        /// Fallible elementwise operation.
        pub fn $try_name(&self, other: &Tensor) -> Result<Tensor> {
            if self.shape() != other.shape() {
                return Err(TensorError::ShapeMismatch {
                    op: stringify!($name),
                    lhs: self.dims().to_vec(),
                    rhs: other.dims().to_vec(),
                });
            }
            let data = self
                .data()
                .iter()
                .zip(other.data())
                .map(|(a, b)| a $op b)
                .collect();
            Ok(Tensor::from_vec(data, self.dims()))
        }
    };
}

impl Tensor {
    binary_op!(add, try_add, +);
    binary_op!(sub, try_sub, -);
    binary_op!(mul, try_mul, *);
    binary_op!(div, try_div, /);

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Apply `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// In-place `self += other`. Panics on shape mismatch.
    pub fn add_assign_(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_(&mut self, s: f32) {
        for a in self.data_mut() {
            *a *= s;
        }
    }

    /// In-place `self += alpha * other` (axpy). Panics on shape mismatch.
    pub fn axpy_(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy_: shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// Add `row` (length = cols) to every row of a matrix.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert!(self.rank() == 2, "add_row_broadcast requires a matrix");
        let cols = self.cols();
        assert_eq!(
            row.numel(),
            cols,
            "add_row_broadcast: row has {} elements, matrix has {} cols",
            row.numel(),
            cols
        );
        let mut out = self.clone();
        let rv = row.data();
        for r in 0..out.rows() {
            for (a, b) in out.row_mut(r).iter_mut().zip(rv) {
                *a += b;
            }
        }
        out
    }

    /// Subtract `row` (length = cols) from every row of a matrix.
    pub fn sub_row_broadcast(&self, row: &Tensor) -> Tensor {
        let neg: Vec<f32> = row.data().iter().map(|x| -x).collect();
        self.add_row_broadcast(&Tensor::from_vec(neg, &[row.numel()]))
    }

    /// Multiply every row of a matrix elementwise by `row`.
    pub fn mul_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert!(self.rank() == 2, "mul_row_broadcast requires a matrix");
        let cols = self.cols();
        assert_eq!(row.numel(), cols, "mul_row_broadcast: size mismatch");
        let mut out = self.clone();
        let rv = row.data();
        for r in 0..out.rows() {
            for (a, b) in out.row_mut(r).iter_mut().zip(rv) {
                *a *= b;
            }
        }
        out
    }

    /// Add `col[i]` to every element of row `i` of a matrix.
    pub fn add_col_broadcast(&self, col: &Tensor) -> Tensor {
        assert!(self.rank() == 2, "add_col_broadcast requires a matrix");
        assert_eq!(col.numel(), self.rows(), "add_col_broadcast: size mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            let v = col.data()[r];
            for a in out.row_mut(r) {
                *a += v;
            }
        }
        out
    }

    // ----- activations / pointwise nonlinearities ------------------------

    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Gaussian error linear unit (tanh approximation, as in BERT/GPT).
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    pub fn powi(&self, n: i32) -> Tensor {
        self.map(|x| x.powi(n))
    }

    /// Row-wise softmax of a matrix.
    pub fn softmax_rows(&self) -> Tensor {
        assert!(self.rank() == 2, "softmax_rows requires a matrix");
        let mut out = self.clone();
        for r in 0..out.rows() {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Row-wise log-softmax of a matrix (numerically stable).
    pub fn log_softmax_rows(&self) -> Tensor {
        assert!(self.rank() == 2, "log_softmax_rows requires a matrix");
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
            for x in row {
                *x -= logsum;
            }
        }
        out
    }

    /// Normalize each row of a matrix to unit L2 norm (rows of zeros pass
    /// through unchanged).
    pub fn l2_normalize_rows(&self) -> Tensor {
        assert!(self.rank() == 2, "l2_normalize_rows requires a matrix");
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
        out
    }
}

/// GELU with the tanh approximation used by BERT.
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn binary_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.try_add(&b).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = t(&[1.0, 2.0]);
        a.add_assign_(&t(&[3.0, 4.0]));
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.scale_(0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.axpy_(2.0, &t(&[1.0, 1.0]));
        assert_eq!(a.data(), &[4.0, 5.0]);
    }

    #[test]
    fn broadcasts() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let row = t(&[10.0, 20.0]);
        assert_eq!(m.add_row_broadcast(&row).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.sub_row_broadcast(&row).data(), &[-9.0, -18.0, -7.0, -16.0]);
        assert_eq!(m.mul_row_broadcast(&row).data(), &[10.0, 40.0, 30.0, 80.0]);
        let col = t(&[100.0, 200.0]);
        assert_eq!(m.add_col_broadcast(&col).data(), &[101.0, 102.0, 203.0, 204.0]);
    }

    #[test]
    fn activations() {
        let a = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0]);
        let s = a.sigmoid();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 0.85);
        // GELU(0)=0 and GELU is close to identity for large positive x.
        let g = t(&[0.0, 5.0]).gelu();
        assert!(g.data()[0].abs() < 1e-6);
        assert!((g.data()[1] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Large-but-equal logits must not overflow.
        assert!((s.at2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let m = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 0.0, 0.0], &[2, 3]);
        let ls = m.log_softmax_rows();
        let s = m.softmax_rows();
        for i in 0..6 {
            assert!((ls.data()[i] - s.data()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize() {
        let m = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let n = m.l2_normalize_rows();
        assert!((n.at2(0, 0) - 0.6).abs() < 1e-6);
        assert!((n.at2(0, 1) - 0.8).abs() < 1e-6);
        // zero row unchanged
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }
}
