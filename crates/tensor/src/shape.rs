use std::fmt;

/// A tensor shape: the extent of each dimension, row-major.
///
/// Kept as a thin wrapper around `Vec<usize>` so it can grow helpers
/// (strides, broadcasting checks) without leaking representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// True when this shape describes a matrix.
    pub fn is_matrix(&self) -> bool {
        self.rank() == 2
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let m = Shape::new(&[5, 7]);
        assert_eq!(m.strides(), vec![7, 1]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
