//! Minimal JSON support for the workspace's persistence paths.
//!
//! The offline build carries no serde, so the few JSON formats the
//! reproduction reads and writes — `{dims, data}` tensors, `[1,2,3]`
//! sequence lines, and flat experiment records — go through this small
//! value type instead. Numbers are held as `f64`; an `f32` round-trips
//! exactly because `f32 → f64` is lossless and `Display` for `f64` prints
//! the shortest representation that parses back to the same value.
//! Non-finite floats serialize as `null` and parse back as NaN (JSON has no
//! literal for them).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth. Parsing is recursive, so unbounded
/// depth on hostile input would overflow the stack (an abort, not a
/// catchable error); the workspace's own formats nest at most 2 deep.
const MAX_DEPTH: usize = 128;

/// Longest accepted number token. f64 shortest-round-trip output is under
/// 25 bytes and u64 under 21; anything much longer is hostile input that
/// should error rather than be silently collapsed to ±inf.
const MAX_NUMBER_LEN: usize = 512;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // wr-check: allow(R5) — fract() == 0.0 is the exact integrality
            // test; a tolerance would accept non-integers as indices.
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret as a `Vec<usize>` (an array of non-negative integers).
    pub fn as_usize_vec(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(|v| v.as_usize()).collect()
    }

    /// Interpret as a `Vec<f32>`.
    pub fn as_f32_vec(&self) -> Option<Vec<f32>> {
        self.as_arr()?
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32))
            .collect()
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos - start > MAX_NUMBER_LEN {
        return Err(format!("number longer than {MAX_NUMBER_LEN} bytes at byte {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s
                    .chars()
                    .next()
                    .ok_or_else(|| format!("unreadable scalar at byte {}", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Write a float the way the rest of the file format expects: shortest
/// round-trip representation, `null` for non-finite values.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `Display` for floats prints the shortest string that parses back
        // to the same value.
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl Json {
    /// Serialize compactly (no whitespace), matching `serde_json::to_string`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialize a `usize` slice as a compact JSON array (`[1,2,3]`).
pub fn usize_array_to_string(xs: &[usize]) -> String {
    let mut out = String::with_capacity(xs.len() * 4 + 2);
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{x}"));
    }
    out.push(']');
    out
}

impl crate::Tensor {
    /// Serialize as `{"dims":[...],"data":[...]}` (the format previously
    /// produced by the serde impl, and what `wr-data` persists to disk).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(self.numel() * 12 + 32);
        out.push_str("{\"dims\":");
        out.push_str(&usize_array_to_string(self.dims()));
        out.push_str(",\"data\":[");
        for (i, &v) in self.data().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(&mut out, v as f64);
        }
        out.push_str("]}");
        out
    }

    /// Parse a tensor written by [`Self::to_json_string`]. Rejects documents
    /// whose `data` length disagrees with `dims`.
    pub fn from_json_str(text: &str) -> Result<crate::Tensor, String> {
        let v = Json::parse(text)?;
        let dims = v
            .get("dims")
            .and_then(|d| d.as_usize_vec())
            .ok_or("tensor json: missing or invalid dims")?;
        let data = v
            .get("data")
            .and_then(|d| d.as_f32_vec())
            .ok_or("tensor json: missing or invalid data")?;
        crate::Tensor::try_from_vec(data, &dims).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tensor_json_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.5, -3.0, 4.0, 0.0, 9.5], &[2, 3]);
        let json = t.to_json_string();
        assert!(json.contains("\"dims\":[2,3]"));
        let back = Tensor::from_json_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tensor_json_rejects_mismatched_dims() {
        let bad = r#"{"dims":[2,2],"data":[1.0,2.0,3.0]}"#;
        assert!(Tensor::from_json_str(bad).is_err(), "3 values cannot fill a 2x2 tensor");
    }

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a":[1,2.5,-3e2],"b":"hi\n","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f32_vec().unwrap(), vec![1.0, 2.5, -300.0]);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "hi\n");
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("definitely not json").is_err());
        assert!(Json::parse("{not json}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("[1,2] extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn truncated_documents_error() {
        // Every prefix of a valid document must error, never panic.
        let full = r#"{"dims":[2,2],"data":[1.0,2.0,3.0,4.0]}"#;
        for cut in 0..full.len() {
            assert!(Json::parse(&full[..cut]).is_err(), "prefix of len {cut} must error");
        }
    }

    #[test]
    fn unterminated_strings_error() {
        for bad in [r#""never closed"#, r#"{"key"#, r#"["a", "b"#, "\"ends in escape\\"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn bad_escapes_error() {
        for bad in [r#""\x00""#, r#""\u12"#, r#""\u12G4""#, r#""\"#, r#""\q""#] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Far beyond MAX_DEPTH; without the depth guard this would blow the
        // parser's stack (an abort, not an Err).
        let deep_arr = "[".repeat(100_000);
        assert!(Json::parse(&deep_arr).is_err());
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // Just under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH - 1), "]".repeat(MAX_DEPTH - 1));
        assert!(Json::parse(&ok).is_ok());
        // Depth counts containers, not siblings: a wide flat array is fine.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn overlong_numbers_error() {
        let huge_digits = "9".repeat(100_000);
        assert!(Json::parse(&huge_digits).is_err());
        let huge_exponent = format!("1e{}", "9".repeat(100_000));
        assert!(Json::parse(&huge_exponent).is_err());
        let many_signs = "-".repeat(100_000);
        assert!(Json::parse(&many_signs).is_err());
        // Ordinary precision is untouched.
        assert!(Json::parse("-1.7976931348623157e308").is_ok());
    }

    #[test]
    fn malformed_numbers_error() {
        for bad in ["1.2.3", "1e", "--5", "+", ".", "0x10", "1e+"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f32, -3.75, 1e-20, f32::MAX, f32::MIN_POSITIVE, 0.0] {
            let mut s = String::new();
            write_f64(&mut s, x as f64);
            let back = Json::parse(&s).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn non_finite_becomes_null_then_nan() {
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn usize_array_roundtrip() {
        let xs = vec![0usize, 3, 7, 123456];
        let s = usize_array_to_string(&xs);
        assert_eq!(s, "[0,3,7,123456]");
        assert_eq!(Json::parse(&s).unwrap().as_usize_vec().unwrap(), xs);
        assert_eq!(usize_array_to_string(&[]), "[]");
        assert_eq!(Json::parse("[]").unwrap().as_usize_vec().unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t control\u{1} unicode→";
        let mut s = String::new();
        write_escaped(&mut s, original);
        let back = Json::parse(&s).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
    }
}
