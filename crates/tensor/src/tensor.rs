use crate::{Result, Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations produce new contiguous tensors; in-place variants are
/// provided where the training loop is hot (`add_assign_`, `scale_`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ----- constructors -------------------------------------------------

    /// Build a tensor from raw data. Panics if `data.len()` doesn't match.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        // wr-check: allow(R1) — documented panicking wrapper; try_from_vec
        // is the Result path for untrusted input.
        Self::try_from_vec(data, dims).expect("Tensor::from_vec")
    }

    /// Fallible version of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ElementCount {
                op: "from_vec",
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[values.len()]),
            data: values.to_vec(),
        }
    }

    // ----- accessors ----------------------------------------------------

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires exactly one element, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// Element at `(row, col)` of a matrix.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        debug_assert!(self.rank() == 2, "at2 on rank-{} tensor", self.rank());
        self.data[row * self.shape.dim(1) + col]
    }

    /// Mutable element at `(row, col)` of a matrix.
    pub fn at2_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        debug_assert!(self.rank() == 2);
        let cols = self.shape.dim(1);
        &mut self.data[row * cols + col]
    }

    /// Number of rows of a matrix.
    pub fn rows(&self) -> usize {
        assert!(self.rank() == 2, "rows() on rank-{} tensor", self.rank());
        self.shape.dim(0)
    }

    /// Number of columns of a matrix.
    pub fn cols(&self) -> usize {
        assert!(self.rank() == 2, "cols() on rank-{} tensor", self.rank());
        self.shape.dim(1)
    }

    /// Borrow row `r` of a matrix as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Borrow row `r` of a matrix as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[r * cols..(r + 1) * cols]
    }

    // ----- shape manipulation --------------------------------------------

    /// Reinterpret the data with a new shape of identical element count.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        // wr-check: allow(R1) — documented panicking wrapper; try_reshape
        // is the Result path.
        self.try_reshape(dims).expect("Tensor::reshape")
    }

    /// Fallible version of [`Tensor::reshape`].
    pub fn try_reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::ElementCount {
                op: "reshape",
                expected: self.numel(),
                actual: shape.numel(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Consume and reshape without copying the buffer.
    pub fn into_reshape(mut self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "into_reshape: {} elements cannot view as {}",
            self.numel(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Transpose a matrix.
    pub fn transpose(&self) -> Tensor {
        assert!(self.rank() == 2, "transpose requires a matrix");
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        // Block the loop for cache friendliness on large matrices.
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            for j0 in (0..c).step_by(B) {
                for i in i0..(i0 + B).min(r) {
                    for j in j0..(j0 + B).min(c) {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Tensor {
            shape: Shape::new(&[c, r]),
            data: out,
        }
    }

    /// Copy rows `start..end` of a matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() == 2, "slice_rows requires a matrix");
        assert!(
            start <= end && end <= self.rows(),
            "slice_rows: {start}..{end} out of bounds for {} rows",
            self.rows()
        );
        let cols = self.cols();
        Tensor {
            shape: Shape::new(&[end - start, cols]),
            data: self.data[start * cols..end * cols].to_vec(),
        }
    }

    /// Copy columns `start..end` of a matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() == 2, "slice_cols requires a matrix");
        assert!(
            start <= end && end <= self.cols(),
            "slice_cols: {start}..{end} out of bounds for {} cols",
            self.cols()
        );
        let (r, c) = (self.rows(), self.cols());
        let w = end - start;
        let mut out = Vec::with_capacity(r * w);
        for i in 0..r {
            out.extend_from_slice(&self.data[i * c + start..i * c + end]);
        }
        Tensor {
            shape: Shape::new(&[r, w]),
            data: out,
        }
    }

    /// Gather rows of a matrix by index (embedding-style lookup).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() == 2, "gather_rows requires a matrix");
        let cols = self.cols();
        let rows = self.rows();
        let mut out = Vec::with_capacity(indices.len() * cols);
        for &ix in indices {
            assert!(ix < rows, "gather_rows: index {ix} >= {rows}");
            out.extend_from_slice(&self.data[ix * cols..(ix + 1) * cols]);
        }
        Tensor {
            shape: Shape::new(&[indices.len(), cols]),
            data: out,
        }
    }

    /// Stack matrices vertically (same column count).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols(), cols, "concat_rows: column mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows();
        }
        Tensor {
            shape: Shape::new(&[rows, cols]),
            data,
        }
    }

    /// Stack matrices horizontally (same row count).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts[0].rows();
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows(), rows, "concat_cols: row mismatch");
                data.extend_from_slice(p.row(r));
            }
        }
        Tensor {
            shape: Shape::new(&[rows, total_cols]),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let e = Tensor::eye(3);
        assert_eq!(e.at2(0, 0), 1.0);
        assert_eq!(e.at2(0, 1), 0.0);
        assert_eq!(e.at2(2, 2), 1.0);
    }

    #[test]
    fn from_vec_checks_count() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let r = t.reshape(&[2, 6]);
        assert_eq!(r.dims(), &[2, 6]);
        assert_eq!(r.data(), t.data());
        assert!(t.try_reshape(&[5, 5]).is_err());
    }

    #[test]
    fn transpose_small() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_involution_large() {
        // Exercises the blocked path.
        let t = Tensor::from_vec((0..70 * 45).map(|x| x as f32).collect(), &[70, 45]);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn slicing() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let r = t.slice_rows(1, 3);
        assert_eq!(r.dims(), &[2, 4]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0, 7.0]);
        let c = t.slice_cols(1, 3);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.row(0), &[1.0, 2.0]);
        assert_eq!(c.row(2), &[9.0, 10.0]);
    }

    #[test]
    fn gather_rows_lookup() {
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let v = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(v.dims(), &[2, 2]);
        assert_eq!(v.data(), &[1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(h.dims(), &[1, 4]);
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "gather_rows")]
    fn gather_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.gather_rows(&[2]);
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
