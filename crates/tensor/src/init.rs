//! Random tensor initialization.
//!
//! All randomness in the workspace flows through seeded [`Rng64`] instances
//! so every experiment is reproducible from a single `u64`.

use crate::Tensor;

/// A seeded random-number generator used across the workspace.
///
/// Implemented in-tree (xoshiro256++ seeded via SplitMix64 — the standard
/// pairing from Blackman & Vigna) because the build environment is offline
/// and the workspace carries no external crates. Downstream code depends on
/// this one type, so the generator can still be swapped in a single place.
pub struct Rng64 {
    state: [u64; 4],
}

impl Rng64 {
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; never
        // produces the all-zero state xoshiro cannot escape.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng64 {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Top 24 bits → exactly representable f32 in [0, 1).
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.uniform().max(1e-12);
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * n,
        // negligible for the catalog-sized ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Sample from unnormalized non-negative weights. Panics if all zero.
    pub fn weighted(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weighted: all weights are zero");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derive an independent child generator (for parallel workloads).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from(self.next_u64())
    }

    /// Snapshot the raw 256-bit generator state, for checkpointing.
    /// [`Rng64::from_state`] on the snapshot continues the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Resume a generator from a [`Rng64::state`] snapshot. The all-zero
    /// state is unreachable from any seed (xoshiro cannot escape it), so
    /// it is remapped through the seeding path rather than honored.
    pub fn from_state(state: [u64; 4]) -> Rng64 {
        if state == [0, 0, 0, 0] {
            return Rng64::seed_from(0);
        }
        Rng64 { state }
    }
}

/// Weight-initialization schemes for tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Every element `N(0, std²)`.
    Normal { std: f32 },
    /// Every element uniform in `[-bound, bound]`.
    Uniform { bound: f32 },
    /// Xavier/Glorot uniform: bound = sqrt(6 / (fan_in + fan_out)).
    XavierUniform,
    /// Zeros (bias default).
    Zeros,
}

impl Initializer {
    /// Materialize a `[rows, cols]` matrix under this scheme.
    pub fn init_matrix(&self, rows: usize, cols: usize, rng: &mut Rng64) -> Tensor {
        let n = rows * cols;
        let data: Vec<f32> = match self {
            Initializer::Normal { std } => (0..n).map(|_| rng.normal() * std).collect(),
            Initializer::Uniform { bound } => {
                (0..n).map(|_| rng.uniform_in(-bound, *bound)).collect()
            }
            Initializer::XavierUniform => {
                let bound = (6.0 / (rows + cols) as f32).sqrt();
                (0..n).map(|_| rng.uniform_in(-bound, bound)).collect()
            }
            Initializer::Zeros => vec![0.0; n],
        };
        Tensor::from_vec(data, &[rows, cols])
    }
}

impl Tensor {
    /// Standard-normal-filled tensor.
    pub fn randn(dims: &[usize], rng: &mut Rng64) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| rng.normal()).collect();
        Tensor::from_vec(data, dims)
    }

    /// Uniform `[lo, hi)`-filled tensor.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from(7);
        let mut b = Rng64::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut a = Rng64::seed_from(42);
        for _ in 0..17 {
            a.uniform();
        }
        let snap = a.state();
        let mut b = Rng64::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero snapshots are remapped, never honored.
        let mut z = Rng64::from_state([0; 4]);
        assert_ne!(z.state(), [0; 4]);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from(1);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Rng64::seed_from(3);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[rng.weighted(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        assert!((counts[2] as f32 / 9000.0 - 2.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = Rng64::seed_from(5);
        let w = Initializer::XavierUniform.init_matrix(100, 50, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|x| x.abs() <= bound + 1e-6));
        assert!(w.data().iter().any(|x| x.abs() > bound * 0.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from(11);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn randn_shape() {
        let mut rng = Rng64::seed_from(2);
        let t = Tensor::randn(&[3, 4, 5], &mut rng);
        assert_eq!(t.dims(), &[3, 4, 5]);
        assert_eq!(t.non_finite_count(), 0);
    }
}
