use std::fmt;

/// Errors surfaced by the fallible (`try_*`) tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes were expected to match (or be compatible) but were not.
    ShapeMismatch {
        op: &'static str,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    /// The number of elements implied by a shape does not match the data.
    ElementCount {
        op: &'static str,
        expected: usize,
        actual: usize,
    },
    /// An index or axis was out of bounds for the tensor's shape.
    OutOfBounds {
        op: &'static str,
        index: usize,
        bound: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        op: &'static str,
        expected: usize,
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::ElementCount {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected {expected} elements, got {actual}"),
            TensorError::OutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (< {bound} required)")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert_eq!(e.to_string(), "matmul: incompatible shapes [2, 3] and [4, 5]");
    }

    #[test]
    fn display_rank_mismatch() {
        let e = TensorError::RankMismatch {
            op: "bmm",
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected rank 3"));
    }
}
