//! Reductions over tensors and matrix axes.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (NEG_INFINITY for empty tensors).
    pub fn max(&self) -> f32 {
        self.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (INFINITY for empty tensors).
    pub fn min(&self) -> f32 {
        self.data().iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Column sums of a matrix → vector of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        assert!(self.rank() == 2, "sum_rows requires a matrix");
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Row sums of a matrix → vector of length `rows`.
    pub fn sum_cols(&self) -> Tensor {
        assert!(self.rank() == 2, "sum_cols requires a matrix");
        let out: Vec<f32> = (0..self.rows()).map(|i| self.row(i).iter().sum()).collect();
        Tensor::from_vec(out, &[self.rows()])
    }

    /// Column means of a matrix → vector of length `cols`.
    pub fn mean_rows(&self) -> Tensor {
        let r = self.rows() as f32;
        self.sum_rows().scale(1.0 / r)
    }

    /// Row means of a matrix → vector of length `rows`.
    pub fn mean_cols(&self) -> Tensor {
        let c = self.cols() as f32;
        self.sum_cols().scale(1.0 / c)
    }

    /// Per-column variance of a matrix (population variance, 1/N).
    pub fn var_rows(&self) -> Tensor {
        assert!(self.rank() == 2, "var_rows requires a matrix");
        let mean = self.mean_rows();
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (j, &v) in self.row(i).iter().enumerate() {
                let d = v - mean.data()[j];
                out[j] += d * d;
            }
        }
        for o in &mut out {
            *o /= r as f32;
        }
        Tensor::from_vec(out, &[c])
    }

    /// Count of NaN or infinite elements; useful for training diagnostics.
    pub fn non_finite_count(&self) -> usize {
        self.data().iter().filter(|x| !x.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 2.0 / 3.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.frob_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axis_reductions() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(m.sum_rows().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_cols().data(), &[6.0, 15.0]);
        assert_eq!(m.mean_rows().data(), &[2.5, 3.5, 4.5]);
        assert_eq!(m.mean_cols().data(), &[2.0, 5.0]);
    }

    #[test]
    fn variance() {
        let m = Tensor::from_vec(vec![0.0, 10.0, 2.0, 10.0], &[2, 2]);
        let v = m.var_rows();
        assert_eq!(v.data(), &[1.0, 0.0]);
    }

    #[test]
    fn non_finite_detection() {
        let t = Tensor::from_slice(&[1.0, f32::NAN, f32::INFINITY]);
        assert_eq!(t.non_finite_count(), 2);
        assert_eq!(Tensor::zeros(&[3]).non_finite_count(), 0);
    }
}
