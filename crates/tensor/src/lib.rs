//! Dense `f32` tensor library underpinning the WhitenRec reproduction.
//!
//! Tensors are always contiguous and row-major. The library favours a small,
//! predictable API over generality: everything the autograd tape, the
//! whitening transforms, and the linear-algebra kernels need — and nothing
//! more. Shape mismatches are programming errors in this codebase, so the
//! convenience methods panic with a descriptive message; fallible `try_*`
//! variants are provided where callers want to recover.
//!
//! # Example
//! ```
//! use wr_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod error;
mod init;
pub mod json;
mod matmul;
mod ops;
mod reduce;
mod shape;
mod tensor;

pub use error::TensorError;
pub use init::{Initializer, Rng64};
pub use json::Json;
pub use matmul::{dot, gemm};
pub use ops::softmax_in_place;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
