//! Matrix multiplication kernels.
//!
//! The workloads in this repository multiply matrices in the range
//! ~[64..4096] × [64..512]; a cache-blocked `ikj` kernel with an explicit
//! inner loop over contiguous rows is fast enough on one core and keeps the
//! crate dependency-free.

use crate::{Result, Tensor, TensorError};

/// Tile edge for the blocked kernel; 64 f32 = 256 B per row strip.
const TILE: usize = 64;

impl Tensor {
    /// Matrix product `self @ other`. Panics on shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.try_matmul(other).expect("Tensor::matmul")
    }

    /// Fallible matrix product.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.rank(),
            });
        }
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), other.data(), &mut out, m, k, n);
        Ok(Tensor::from_vec(out, &[m, n]))
    }

    /// `selfᵀ @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && other.rank() == 2, "matmul_tn needs matrices");
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: inner dimensions {} vs {} differ",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = vec![0.0f32; m * n];
        // out[i][j] = sum_k a[k][i] * b[k][j]; iterate k outermost so both
        // reads stream contiguously.
        for p in 0..k {
            let arow = &self.data()[p * m..(p + 1) * m];
            let brow = &other.data()[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && other.rank() == 2, "matmul_nt needs matrices");
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: inner dimensions {} vs {} differ",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data()[j * k..(j + 1) * k];
                *o = dot(arow, brow);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix multiply of two rank-3 tensors `[b, m, k] @ [b, k, n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert!(
            self.rank() == 3 && other.rank() == 3,
            "bmm requires rank-3 tensors, got {} and {}",
            self.rank(),
            other.rank()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            gemm(
                &self.data()[i * m * k..(i + 1) * m * k],
                &other.data()[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched `self @ otherᵀ`: `[b, m, k] @ [b, n, k]ᵀ → [b, m, n]`.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 3 && other.rank() == 3, "bmm_nt requires rank-3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm_nt: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let a = &self.data()[i * m * k..(i + 1) * m * k];
            let bb = &other.data()[i * n * k..(i + 1) * n * k];
            let c = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                let arow = &a[r * k..(r + 1) * k];
                for col in 0..n {
                    c[r * n + col] = dot(arow, &bb[col * k..(col + 1) * k]);
                }
            }
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched `selfᵀ @ other`: `[b, k, m]ᵀ @ [b, k, n] → [b, m, n]`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 3 && other.rank() == 3, "bmm_tn requires rank-3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm_tn: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let a = &self.data()[i * k * m..(i + 1) * k * m];
            let bb = &other.data()[i * k * n..(i + 1) * k * n];
            let c = &mut out[i * m * n..(i + 1) * m * n];
            // out[r][col] = sum_p a[p][r] * b[p][col]
            for p in 0..k {
                let arow = &a[p * m..(p + 1) * m];
                let brow = &bb[p * n..(p + 1) * n];
                for (r, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut c[r * n..(r + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Matrix–vector product `self @ v` for a rank-1 `v`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && v.rank() == 1, "matvec: need matrix and vector");
        assert_eq!(self.cols(), v.numel(), "matvec: size mismatch");
        let out: Vec<f32> = (0..self.rows()).map(|i| dot(self.row(i), v.data())).collect();
        Tensor::from_vec(out, &[self.rows()])
    }

    /// Frobenius inner product of two same-shaped tensors.
    pub fn dot_all(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot_all: shape mismatch");
        dot(self.data(), other.data())
    }
}

/// Dense dot product with 4-way unrolling (helps LLVM vectorize).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Cache-blocked `C += A(m×k) · B(k×n)` over contiguous row-major slices.
/// `c` must be zero-initialized by the caller (it is accumulated into).
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for p0 in (0..k).step_by(TILE) {
            let p1 = (p0 + TILE).min(k);
            for i in i0..i1 {
                let crow = &mut c[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                *out.at2_mut(i, j) = s;
            }
        }
        out
    }

    fn pseudo_random(dims: &[usize], seed: u32) -> Tensor {
        // deterministic fill; avoids pulling rand into the unit tests
        let n: usize = dims.iter().product();
        let mut state = seed as u64 | 1;
        let data = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (u32::MAX as f32)) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn matmul_identity() {
        let a = pseudo_random(&[7, 7], 1);
        assert_eq!(a.matmul(&Tensor::eye(7)).dims(), &[7, 7]);
        let prod = a.matmul(&Tensor::eye(7));
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(3, 4, 5), (65, 70, 67), (1, 128, 1)] {
            let a = pseudo_random(&[m, k], 42);
            let b = pseudo_random(&[k, n], 7);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.try_matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.try_matmul(&a).is_err());
    }

    #[test]
    fn transposed_variants_match() {
        let a = pseudo_random(&[13, 9], 3);
        let b = pseudo_random(&[13, 11], 4);
        let tn = a.matmul_tn(&b); // a^T b : [9,11]
        let reference = a.transpose().matmul(&b);
        for (x, y) in tn.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }

        let c = pseudo_random(&[9, 11], 5);
        let nt = c.matmul_nt(&b); // c([9,11]) @ b([13,11])^T -> [9,13]
        let reference = c.matmul(&b.transpose());
        assert_eq!(nt.dims(), reference.dims());
        for (x, y) in nt.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bmm_matches_per_slice() {
        let a = pseudo_random(&[4, 3, 5], 11);
        let b = pseudo_random(&[4, 5, 2], 12);
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[4, 3, 2]);
        for i in 0..4 {
            let ai = Tensor::from_vec(a.data()[i * 15..(i + 1) * 15].to_vec(), &[3, 5]);
            let bi = Tensor::from_vec(b.data()[i * 10..(i + 1) * 10].to_vec(), &[5, 2]);
            let ci = ai.matmul(&bi);
            for (x, y) in c.data()[i * 6..(i + 1) * 6].iter().zip(ci.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bmm_transposed_variants() {
        let a = pseudo_random(&[3, 4, 5], 21);
        let b = pseudo_random(&[3, 6, 5], 22);
        let nt = a.bmm_nt(&b); // [3,4,6]
        assert_eq!(nt.dims(), &[3, 4, 6]);
        for i in 0..3 {
            let ai = Tensor::from_vec(a.data()[i * 20..(i + 1) * 20].to_vec(), &[4, 5]);
            let bi = Tensor::from_vec(b.data()[i * 30..(i + 1) * 30].to_vec(), &[6, 5]);
            let ci = ai.matmul(&bi.transpose());
            for (x, y) in nt.data()[i * 24..(i + 1) * 24].iter().zip(ci.data()) {
                assert!((x - y).abs() < 1e-4);
            }
        }

        let c = pseudo_random(&[3, 5, 4], 23);
        let d = pseudo_random(&[3, 5, 7], 24);
        let tn = c.bmm_tn(&d); // [3,4,7]
        assert_eq!(tn.dims(), &[3, 4, 7]);
        for i in 0..3 {
            let ci = Tensor::from_vec(c.data()[i * 20..(i + 1) * 20].to_vec(), &[5, 4]);
            let di = Tensor::from_vec(d.data()[i * 35..(i + 1) * 35].to_vec(), &[5, 7]);
            let ri = ci.transpose().matmul(&di);
            for (x, y) in tn.data()[i * 28..(i + 1) * 28].iter().zip(ri.data()) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matvec_and_dot() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_slice(&[1.0, -1.0]);
        assert_eq!(m.matvec(&v).data(), &[-1.0, -1.0]);
        assert_eq!(dot(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 1.0, 1.0, 1.0, 1.0]), 15.0);
        assert_eq!(m.dot_all(&m), 30.0);
    }
}
