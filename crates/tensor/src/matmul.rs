//! Matrix multiplication kernels.
//!
//! The workloads in this repository multiply matrices in the range
//! ~[64..4096] × [64..512]. Two levels of blocking keep them fast:
//!
//! * a cache-blocked `ikj` kernel with a 4-row register micro-kernel (each
//!   pass over a B-row strip feeds four output rows, quartering B traffic
//!   and giving LLVM a clean 4-accumulator inner loop to vectorize);
//! * row-block parallelism over the shared `wr-runtime` pool — each task
//!   owns a disjoint block of output rows, so the result is bit-identical
//!   to the sequential kernel at any thread count.
//!
//! The seed's `if av == 0.0 { continue; }` branch in the dense inner loops
//! was removed: it only helps on pathologically sparse inputs and costs a
//! compare+branch per multiply on the dense matrices every model here
//! produces (see `zero_skip_is_not_worth_it` below for the guard test).

use crate::{Result, Tensor, TensorError};

/// Tile edge for the blocked kernel; 64 f32 = 256 B per row strip.
const TILE: usize = 64;

/// Output rows per parallel task. One task writes `PAR_ROWS * n` floats —
/// big enough to amortize dispatch, small enough to balance load.
const PAR_ROWS: usize = 64;

/// Below this many multiply-adds the dispatch overhead dominates; stay
/// sequential.
const PAR_MIN_FLOPS: usize = 1 << 16;

impl Tensor {
    /// Matrix product `self @ other`. Panics on shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        // wr-check: allow(R1) — documented panicking wrapper; try_matmul is
        // the Result path for untrusted shapes.
        self.try_matmul(other).expect("Tensor::matmul")
    }

    /// Fallible matrix product.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.rank(),
            });
        }
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), other.data(), &mut out, m, k, n);
        Ok(Tensor::from_vec(out, &[m, n]))
    }

    /// `selfᵀ @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && other.rank() == 2, "matmul_tn needs matrices");
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: inner dimensions {} vs {} differ",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = vec![0.0f32; m * n];
        let (a, b) = (self.data(), other.data());
        // out[i][j] = sum_p a[p][i] * b[p][j]; iterate p outermost so both
        // reads stream contiguously. Parallel tasks own disjoint blocks of
        // output rows (columns of A) and each replays the full p loop.
        let run = |i0: usize, block: &mut [f32]| {
            let rows = block.len() / n;
            for p in 0..k {
                let arow = &a[p * m + i0..p * m + i0 + rows];
                let brow = &b[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    let orow = &mut block[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        };
        if m * k * n < PAR_MIN_FLOPS || wr_runtime::threads() <= 1 {
            run(0, &mut out);
        } else {
            wr_runtime::parallel_chunks_mut(&mut out, PAR_ROWS * n, |ci, block| {
                run(ci * PAR_ROWS, block);
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && other.rank() == 2, "matmul_nt needs matrices");
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: inner dimensions {} vs {} differ",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = vec![0.0f32; m * n];
        let (a, b) = (self.data(), other.data());
        let run = |i0: usize, block: &mut [f32]| {
            let rows = block.len() / n;
            for r in 0..rows {
                let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
                let orow = &mut block[r * n..(r + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot(arow, &b[j * k..(j + 1) * k]);
                }
            }
        };
        if m * k * n < PAR_MIN_FLOPS || wr_runtime::threads() <= 1 {
            run(0, &mut out);
        } else {
            wr_runtime::parallel_chunks_mut(&mut out, PAR_ROWS * n, |ci, block| {
                run(ci * PAR_ROWS, block);
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix multiply of two rank-3 tensors `[b, m, k] @ [b, k, n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert!(
            self.rank() == 3 && other.rank() == 3,
            "bmm requires rank-3 tensors, got {} and {}",
            self.rank(),
            other.rank()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        let (av, bv) = (self.data(), other.data());
        batch_parallel(&mut out, m * n, b * m * k * n, |i, c| {
            gemm_rows(
                &av[i * m * k..(i + 1) * m * k],
                &bv[i * k * n..(i + 1) * k * n],
                c,
                m,
                k,
                n,
            );
        });
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched `self @ otherᵀ`: `[b, m, k] @ [b, n, k]ᵀ → [b, m, n]`.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 3 && other.rank() == 3, "bmm_nt requires rank-3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, n, k2) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm_nt: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        let (av, bvals) = (self.data(), other.data());
        batch_parallel(&mut out, m * n, b * m * k * n, |i, c| {
            let a = &av[i * m * k..(i + 1) * m * k];
            let bb = &bvals[i * n * k..(i + 1) * n * k];
            for r in 0..m {
                let arow = &a[r * k..(r + 1) * k];
                for col in 0..n {
                    c[r * n + col] = dot(arow, &bb[col * k..(col + 1) * k]);
                }
            }
        });
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched `selfᵀ @ other`: `[b, k, m]ᵀ @ [b, k, n] → [b, m, n]`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() == 3 && other.rank() == 3, "bmm_tn requires rank-3");
        let (b, k, m) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert!(
            b == b2 && k == k2,
            "bmm_tn: incompatible shapes {:?} and {:?}",
            self.dims(),
            other.dims()
        );
        let mut out = vec![0.0f32; b * m * n];
        let (av, bvals) = (self.data(), other.data());
        batch_parallel(&mut out, m * n, b * m * k * n, |i, c| {
            let a = &av[i * k * m..(i + 1) * k * m];
            let bb = &bvals[i * k * n..(i + 1) * k * n];
            // out[r][col] = sum_p a[p][r] * b[p][col]
            for p in 0..k {
                let arow = &a[p * m..(p + 1) * m];
                let brow = &bb[p * n..(p + 1) * n];
                for (r, &aval) in arow.iter().enumerate() {
                    let crow = &mut c[r * n..(r + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aval * bv;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Matrix–vector product `self @ v` for a rank-1 `v`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert!(self.rank() == 2 && v.rank() == 1, "matvec: need matrix and vector");
        assert_eq!(self.cols(), v.numel(), "matvec: size mismatch");
        let out: Vec<f32> = (0..self.rows()).map(|i| dot(self.row(i), v.data())).collect();
        Tensor::from_vec(out, &[self.rows()])
    }

    /// Frobenius inner product of two same-shaped tensors.
    pub fn dot_all(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot_all: shape mismatch");
        dot(self.data(), other.data())
    }
}

/// Run `f(batch_index, batch_output)` over every `slice_len` block of
/// `out`, in parallel when the total work is worth dispatching.
fn batch_parallel(
    out: &mut [f32],
    slice_len: usize,
    total_flops: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if total_flops < PAR_MIN_FLOPS || wr_runtime::threads() <= 1 || slice_len == 0 {
        for (i, c) in out.chunks_mut(slice_len.max(1)).enumerate() {
            f(i, c);
        }
    } else {
        wr_runtime::parallel_chunks_mut(out, slice_len, &f);
    }
}

/// Dense dot product with 4-way unrolling (helps LLVM vectorize).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Cache-blocked `C += A(m×k) · B(k×n)` over contiguous row-major slices.
/// `c` must be zero-initialized by the caller (it is accumulated into).
///
/// Parallelizes over blocks of output rows when the problem is big enough;
/// every row's arithmetic is identical to the sequential kernel, so the
/// result does not depend on the thread count.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * k * n < PAR_MIN_FLOPS || wr_runtime::threads() <= 1 || n == 0 || k == 0 {
        gemm_rows(a, b, c, m, k, n);
        return;
    }
    wr_runtime::parallel_chunks_mut(c, PAR_ROWS * n, |ci, block| {
        let i0 = ci * PAR_ROWS;
        let rows = block.len() / n;
        gemm_rows(&a[i0 * k..(i0 + rows) * k], b, block, rows, k, n);
    });
}

/// Sequential blocked kernel over `rows` output rows.
///
/// Rows are processed four at a time: for each `p` the B-row strip is
/// streamed once and feeds four independent accumulator rows, which keeps
/// four FMA chains in flight and quarters B-side memory traffic.
fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], rows: usize, k: usize, n: usize) {
    if n == 0 || k == 0 {
        return;
    }
    let mut i = 0;
    while i + 4 <= rows {
        let (c0, rest) = c[i * n..].split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, rest) = rest.split_at_mut(n);
        let c3 = &mut rest[..n];
        for p0 in (0..k).step_by(TILE) {
            let p1 = (p0 + TILE).min(k);
            for p in p0..p1 {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for (j, &bv) in brow.iter().enumerate() {
                    c0[j] += a0 * bv;
                    c1[j] += a1 * bv;
                    c2[j] += a2 * bv;
                    c3[j] += a3 * bv;
                }
            }
        }
        i += 4;
    }
    // Tail rows (< 4) one at a time.
    while i < rows {
        let crow = &mut c[i * n..(i + 1) * n];
        for p0 in (0..k).step_by(TILE) {
            let p1 = (p0 + TILE).min(k);
            for p in p0..p1 {
                let av = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                *out.at2_mut(i, j) = s;
            }
        }
        out
    }

    fn pseudo_random(dims: &[usize], seed: u32) -> Tensor {
        // deterministic fill; avoids pulling rand into the unit tests
        let n: usize = dims.iter().product();
        let mut state = seed as u64 | 1;
        let data = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (u32::MAX as f32)) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn matmul_identity() {
        let a = pseudo_random(&[7, 7], 1);
        assert_eq!(a.matmul(&Tensor::eye(7)).dims(), &[7, 7]);
        let prod = a.matmul(&Tensor::eye(7));
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(3, 4, 5), (65, 70, 67), (1, 128, 1), (4, 3, 2), (130, 40, 33)] {
            let a = pseudo_random(&[m, k], 42);
            let b = pseudo_random(&[k, n], 7);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_is_bit_identical_across_thread_counts() {
        // Big enough to cross the parallel threshold and exercise several
        // row blocks.
        let (m, k, n) = (260, 70, 90);
        let a = pseudo_random(&[m, k], 3);
        let b = pseudo_random(&[k, n], 4);
        let serial = {
            let mut c = vec![0.0f32; m * n];
            gemm_rows(a.data(), b.data(), &mut c, m, k, n);
            c
        };
        for t in [1usize, 2, 8] {
            let prev = wr_runtime::threads();
            wr_runtime::set_threads(t);
            let par = {
                let mut c = vec![0.0f32; m * n];
                gemm(a.data(), b.data(), &mut c, m, k, n);
                c
            };
            wr_runtime::set_threads(prev);
            assert!(
                serial.iter().zip(&par).all(|(x, y)| x.to_bits() == y.to_bits()),
                "gemm diverged from serial kernel at {t} threads"
            );
        }
    }

    #[test]
    fn zero_skip_is_not_worth_it() {
        // The seed skipped `av == 0.0` in the dense inner loop. Verify the
        // dense kernel handles all-zero rows correctly without the branch
        // (the numeric justification: 0 * finite == 0 exactly in IEEE 754).
        let mut a = pseudo_random(&[8, 16], 9);
        for j in 0..16 {
            *a.at2_mut(3, j) = 0.0;
        }
        let b = pseudo_random(&[16, 5], 10);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert!(fast.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.try_matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.try_matmul(&a).is_err());
    }

    #[test]
    fn transposed_variants_match() {
        let a = pseudo_random(&[13, 9], 3);
        let b = pseudo_random(&[13, 11], 4);
        let tn = a.matmul_tn(&b); // a^T b : [9,11]
        let reference = a.transpose().matmul(&b);
        for (x, y) in tn.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }

        let c = pseudo_random(&[9, 11], 5);
        let nt = c.matmul_nt(&b); // c([9,11]) @ b([13,11])^T -> [9,13]
        let reference = c.matmul(&b.transpose());
        assert_eq!(nt.dims(), reference.dims());
        for (x, y) in nt.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_when_parallel() {
        // Sizes above the parallel threshold.
        let a = pseudo_random(&[150, 140], 31);
        let b = pseudo_random(&[150, 130], 32);
        let tn = a.matmul_tn(&b);
        let reference = a.transpose().matmul(&b);
        for (x, y) in tn.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-3);
        }
        let c = pseudo_random(&[150, 140], 33);
        let d = pseudo_random(&[130, 140], 34);
        let nt = c.matmul_nt(&d);
        let reference = c.matmul(&d.transpose());
        for (x, y) in nt.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn bmm_matches_per_slice() {
        let a = pseudo_random(&[4, 3, 5], 11);
        let b = pseudo_random(&[4, 5, 2], 12);
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[4, 3, 2]);
        for i in 0..4 {
            let ai = Tensor::from_vec(a.data()[i * 15..(i + 1) * 15].to_vec(), &[3, 5]);
            let bi = Tensor::from_vec(b.data()[i * 10..(i + 1) * 10].to_vec(), &[5, 2]);
            let ci = ai.matmul(&bi);
            for (x, y) in c.data()[i * 6..(i + 1) * 6].iter().zip(ci.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bmm_large_batches_match_per_slice() {
        // Crosses the parallel threshold: 16 batches of 32×24×20.
        let (b, m, k, n) = (16, 32, 24, 20);
        let a = pseudo_random(&[b, m, k], 13);
        let x = pseudo_random(&[b, k, n], 14);
        let out = a.bmm(&x);
        for i in 0..b {
            let ai = Tensor::from_vec(a.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]);
            let xi = Tensor::from_vec(x.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]);
            let oi = ai.matmul(&xi);
            for (p, q) in out.data()[i * m * n..(i + 1) * m * n].iter().zip(oi.data()) {
                assert!((p - q).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bmm_transposed_variants() {
        let a = pseudo_random(&[3, 4, 5], 21);
        let b = pseudo_random(&[3, 6, 5], 22);
        let nt = a.bmm_nt(&b); // [3,4,6]
        assert_eq!(nt.dims(), &[3, 4, 6]);
        for i in 0..3 {
            let ai = Tensor::from_vec(a.data()[i * 20..(i + 1) * 20].to_vec(), &[4, 5]);
            let bi = Tensor::from_vec(b.data()[i * 30..(i + 1) * 30].to_vec(), &[6, 5]);
            let ci = ai.matmul(&bi.transpose());
            for (x, y) in nt.data()[i * 24..(i + 1) * 24].iter().zip(ci.data()) {
                assert!((x - y).abs() < 1e-4);
            }
        }

        let c = pseudo_random(&[3, 5, 4], 23);
        let d = pseudo_random(&[3, 5, 7], 24);
        let tn = c.bmm_tn(&d); // [3,4,7]
        assert_eq!(tn.dims(), &[3, 4, 7]);
        for i in 0..3 {
            let ci = Tensor::from_vec(c.data()[i * 20..(i + 1) * 20].to_vec(), &[5, 4]);
            let di = Tensor::from_vec(d.data()[i * 35..(i + 1) * 35].to_vec(), &[5, 7]);
            let ri = ci.transpose().matmul(&di);
            for (x, y) in tn.data()[i * 28..(i + 1) * 28].iter().zip(ri.data()) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matvec_and_dot() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_slice(&[1.0, -1.0]);
        assert_eq!(m.matvec(&v).data(), &[-1.0, -1.0]);
        assert_eq!(dot(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 1.0, 1.0, 1.0, 1.0]), 15.0);
        assert_eq!(m.dot_all(&m), 30.0);
    }
}
