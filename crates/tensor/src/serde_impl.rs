//! Serde support for [`Tensor`] — serialized as `{ dims, data }`.

use crate::{Shape, Tensor};
use serde::de::{self, MapAccess, Visitor};
use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for Tensor {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Tensor", 2)?;
        st.serialize_field("dims", self.dims())?;
        st.serialize_field("data", self.data())?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Tensor {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct TensorVisitor;

        impl<'de> Visitor<'de> for TensorVisitor {
            type Value = Tensor;

            fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                f.write_str("a struct with dims and data fields")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Tensor, A::Error> {
                let mut dims: Option<Vec<usize>> = None;
                let mut data: Option<Vec<f32>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "dims" => dims = Some(map.next_value()?),
                        "data" => data = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::unknown_field(other, &["dims", "data"]))
                        }
                    }
                }
                let dims = dims.ok_or_else(|| de::Error::missing_field("dims"))?;
                let data = data.ok_or_else(|| de::Error::missing_field("data"))?;
                Tensor::try_from_vec(data, &dims).map_err(|e| de::Error::custom(e.to_string()))
            }
        }

        deserializer.deserialize_struct("Tensor", &["dims", "data"], TensorVisitor)
    }
}

impl Serialize for Shape {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.dims().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Shape {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let dims: Vec<usize> = Vec::deserialize(deserializer)?;
        Ok(Shape::from(dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrap {
        t: Tensor,
    }

    #[test]
    fn json_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.5, -3.0, 4.0, 0.0, 9.5], &[2, 3]);
        let json = serde_json::to_string(&Wrap { t: t.clone() }).unwrap();
        assert!(json.contains("\"dims\":[2,3]"));
        let back: Wrap = serde_json::from_str(&json).unwrap();
        assert_eq!(back.t, t);
    }

    #[test]
    fn mismatched_dims_rejected_on_load() {
        let bad = r#"{"dims":[2,2],"data":[1.0,2.0,3.0]}"#;
        let res: Result<Tensor, _> = serde_json::from_str(bad);
        assert!(res.is_err(), "3 values cannot fill a 2x2 tensor");
    }

    #[test]
    fn shape_roundtrip() {
        let s = Shape::new(&[4, 5, 6]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "[4,5,6]");
        let back: Shape = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
