//! GRU4Rec: recurrent sequence encoder over ID embeddings.

use wr_autograd::Graph;
use wr_data::Batch;
use wr_nn::{GruStack, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{IdTower, ItemTower, ModelConfig};

/// GRU4Rec with a full-softmax objective (the strongest published variant
/// at this scale). The final GRU state is the user representation; scoring
/// is the inner product against the ID embedding table.
pub struct Gru4Rec {
    pub tower: IdTower,
    pub gru: GruStack,
    pub config: ModelConfig,
}

impl Gru4Rec {
    pub fn new(n_items: usize, config: ModelConfig, rng: &mut Rng64) -> Self {
        Gru4Rec {
            tower: IdTower::new(n_items, config.dim, rng),
            gru: GruStack::new(config.dim, config.dim, 2, rng),
            config,
        }
    }
}

impl SeqRecModel for Gru4Rec {
    fn name(&self) -> String {
        "GRU4Rec".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.tower.params();
        ps.extend(self.gru.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let users = self
            .gru
            .forward_user(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        // GRU predicts each sequence's final next item (session-based style).
        let targets: Vec<usize> = final_targets(batch);
        let logits = g.matmul(users, g.transpose(v));
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let users = self
            .gru
            .forward_user(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let logits = g.matmul(users, g.transpose(v));
        g.value(logits)
    }

    fn item_representations(&self) -> Tensor {
        self.tower.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let users = self
            .gru
            .forward_user(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        g.value(users)
    }
}

/// The last target of every sequence in the batch.
pub(crate) fn final_targets(batch: &Batch) -> Vec<usize> {
    let mut targets = vec![0usize; batch.batch];
    for (&pos, &t) in batch.loss_positions.iter().zip(&batch.targets) {
        targets[pos / batch.seq] = t; // positions are ordered; last write wins
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn final_targets_extraction() {
        let s1: &[usize] = &[1, 2, 3];
        let s2: &[usize] = &[4, 5, 6, 7];
        let b = Batch::from_sequences(&[s1, s2], 5);
        assert_eq!(final_targets(&b), vec![3, 7]);
    }

    #[test]
    fn gru4rec_learns() {
        let mut rng = Rng64::seed_from(1);
        let n_items = 8;
        let cfg = ModelConfig {
            dim: 12,
            max_seq: 6,
            dropout: 0.0,
            seed: 2,
            ..ModelConfig::default()
        };
        let mut model = Gru4Rec::new(n_items, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 1e-2,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..32)
            .map(|u| (0..5).map(|t| (u + t) % n_items).collect())
            .collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..25 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first * 0.7, "loss {first} -> {last}");
        // Match the training shape: length-4 contexts predict first+4.
        let s = model.score(&[&[0, 1, 2, 3][..]]);
        assert_eq!(s.dims(), &[1, n_items]);
        let best = s.row(0).iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(best, 4);
    }
}
