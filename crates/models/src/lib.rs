//! The WhitenRec model zoo.
//!
//! Every model decomposes as in Fig. 1: an **item tower** producing the
//! item representation matrix `V`, a **sequence encoder** producing user
//! representations, and an inner-product **prediction layer**. The
//! SASRec-family variants (SASRec^ID/^T/^T+ID, WhitenRec, WhitenRec+,
//! UniSRec, VQRec, S³-Rec, CL4SRec) share one [`SasRec`] chassis
//! parameterized by tower and auxiliary losses; GRU4Rec swaps the encoder;
//! FDSA runs two attention branches; BM3/GRCN are general (non-sequential)
//! recommenders with text.
//!
//! Construct models through [`zoo`] for the experiment harness, or directly
//! via each type's constructor.

mod bert4rec;
mod cl4srec;
mod difsr;
mod fdsa;
mod general;
mod gru4rec;
mod s3rec;
mod sasrec;
mod towers;
mod vqrec;
pub mod zoo;

pub use bert4rec::{Bert4Rec, Popularity};
pub use cl4srec::{augment_sequence, Augmentation, Cl4SRec};
pub use difsr::DifSr;
pub use fdsa::Fdsa;
pub use general::{Bm3Lite, GrcnLite};
pub use gru4rec::Gru4Rec;
pub use s3rec::S3Rec;
pub use sasrec::{LossKind, ModelConfig, SasRec};
pub use towers::{EnsembleTower, IdTower, ItemTower, MoeTower, PwTower, TextIdTower, TextTower};
pub use vqrec::{product_quantize, VqTower};
