//! The SASRec chassis shared by most of the zoo.

use wr_autograd::{Graph, Var};
use wr_data::Batch;
use wr_nn::{Module, Param, Session, TransformerConfig, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::ItemTower;

/// Prediction-layer loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    /// Full softmax cross-entropy over raw inner products (SASRec family;
    /// the paper's Eq. 1).
    Softmax,
    /// Cross-entropy over cosine similarities with temperature `tau`
    /// (UniSRec's fine-tuning objective).
    CosineSoftmax { tau: f32 },
    /// Sampled softmax with `negatives` uniform negatives per positive —
    /// the production-scale approximation of the full softmax (the paper's
    /// 21k–40k-item catalogs are near the practical full-softmax limit).
    SampledSoftmax { negatives: usize },
    /// Bayesian personalized ranking: `−log σ(s⁺ − s⁻)` with one uniform
    /// negative per positive (original SASRec's objective).
    Bpr,
}

/// Shared hyper-parameters for the zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    pub dim: usize,
    pub heads: usize,
    pub blocks: usize,
    pub ff_mult: usize,
    pub max_seq: usize,
    pub dropout: f32,
    /// Hidden layers in the text projection head (paper default 2).
    pub proj_layers: usize,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            dim: 32,
            heads: 2,
            blocks: 2,
            ff_mult: 2,
            max_seq: 20,
            dropout: 0.2,
            proj_layers: 2,
            seed: 1234,
        }
    }
}

impl ModelConfig {
    pub fn transformer(&self) -> TransformerConfig {
        TransformerConfig {
            dim: self.dim,
            heads: self.heads,
            blocks: self.blocks,
            ff_mult: self.ff_mult,
            max_seq: self.max_seq,
            dropout: self.dropout,
            bidirectional: false,
        }
    }
}

/// SASRec with a pluggable item tower — this one type *is* SASRec^ID,
/// SASRec^T, SASRec^T+ID, WhitenRec, WhitenRec+, and UniSRec depending on
/// the tower and loss it's built with (see [`crate::zoo`]).
pub struct SasRec {
    pub model_name: String,
    pub tower: Box<dyn ItemTower>,
    pub encoder: TransformerEncoder,
    pub loss: LossKind,
    pub config: ModelConfig,
    /// When set, training logits span only these items (cold-start
    /// protocol); `None` = full catalog.
    train_candidates: Option<Vec<usize>>,
}

impl SasRec {
    pub fn new(
        name: impl Into<String>,
        tower: Box<dyn ItemTower>,
        loss: LossKind,
        config: ModelConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(tower.dim(), config.dim, "tower dim must match encoder dim");
        SasRec {
            model_name: name.into(),
            tower,
            encoder: TransformerEncoder::new(config.transformer(), rng),
            loss,
            config,
            train_candidates: None,
        }
    }

    /// Hidden states for a batch: returns `(V, hidden)` graph nodes.
    fn forward(&self, sess: &mut Session, batch: &Batch) -> (Var, Var) {
        let g = sess.graph;
        let v = self.tower.all_items(sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        (v, hidden)
    }

    /// Logits for arbitrary user-representation rows against all items.
    fn logits(&self, g: &Graph, users: Var, v: Var) -> Var {
        match self.loss {
            LossKind::Softmax | LossKind::SampledSoftmax { .. } | LossKind::Bpr => {
                g.matmul(users, g.transpose(v))
            }
            LossKind::CosineSoftmax { tau } => {
                let un = g.l2_normalize_rows(users);
                let vn = g.l2_normalize_rows(v);
                g.scale(g.matmul(un, g.transpose(vn)), 1.0 / tau)
            }
        }
    }

    /// One step of a sampled objective: per loss position, the positive
    /// target plus `negatives` uniform negatives (resampled if they collide
    /// with the positive).
    fn sampled_step(
        &mut self,
        batch: &Batch,
        optimizer: &mut Adam,
        rng: &mut Rng64,
        negatives: usize,
        bpr: bool,
    ) -> f32 {
        assert!(negatives >= 1);
        let n_items = self.tower.n_items();
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let (v, hidden) = self.forward(&mut sess, batch);
        let users = g.gather_rows(hidden, &batch.loss_positions); // [p, d]

        // Candidate rows per position: positive first, then negatives.
        let width = 1 + negatives;
        let mut cand: Vec<usize> = Vec::with_capacity(batch.targets.len() * width);
        for &t in &batch.targets {
            cand.push(t);
            for _ in 0..negatives {
                let mut neg = rng.below(n_items);
                while neg == t {
                    neg = rng.below(n_items);
                }
                cand.push(neg);
            }
        }
        let cand_rows = g.gather_rows(v, &cand); // [p*width, d]
        // Per-position scores: elementwise dot of the repeated user rows
        // with their candidates.
        let rep: Vec<usize> = (0..batch.targets.len())
            .flat_map(|p| std::iter::repeat(p).take(width))
            .collect();
        let users_rep = g.gather_rows(users, &rep); // [p*width, d]
        let prod = g.mul(users_rep, cand_rows);
        let d = self.config.dim;
        let ones = g.constant(Tensor::ones(&[d, 1]));
        let scores = g.matmul(prod, ones); // [p*width, 1]
        let scores = g.reshape(scores, &[batch.targets.len(), width]);

        let loss = if bpr {
            // −log σ(s⁺ − s⁻), averaged (width == 2).
            let pos = g.slice_cols(scores, 0, 1);
            let neg = g.slice_cols(scores, 1, 2);
            let diff = g.sub(pos, neg);
            let p = g.sigmoid(diff);
            let logp = g.ln(g.add_scalar(p, 1e-8));
            g.scale(g.mean_all(logp), -1.0)
        } else {
            // Softmax CE over [positive | negatives]: target index 0.
            let targets = vec![0usize; batch.targets.len()];
            g.cross_entropy(scores, &targets)
        };
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }
}

impl SeqRecModel for SasRec {
    fn name(&self) -> String {
        self.model_name.clone()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.tower.params();
        ps.extend(self.encoder.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        // Sampled objectives bypass the all-items logits path entirely.
        match self.loss {
            LossKind::SampledSoftmax { negatives } => {
                return self.sampled_step(batch, optimizer, rng, negatives, false)
            }
            LossKind::Bpr => return self.sampled_step(batch, optimizer, rng, 1, true),
            _ => {}
        }
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let (v, hidden) = self.forward(&mut sess, batch);
        let user_rows = g.gather_rows(hidden, &batch.loss_positions);
        let (v_train, targets) = match &self.train_candidates {
            None => (v, batch.targets.clone()),
            Some(cands) => {
                // Map targets into candidate-local indices; items outside
                // the candidate set never appear as cold-training targets
                // by construction of the cold split.
                let mut local = vec![usize::MAX; self.tower.n_items()];
                for (j, &c) in cands.iter().enumerate() {
                    local[c] = j;
                }
                let targets: Vec<usize> = batch
                    .targets
                    .iter()
                    .map(|&t| {
                        let l = local[t];
                        assert!(l != usize::MAX, "target {t} outside train candidates");
                        l
                    })
                    .collect();
                (g.gather_rows(v, cands), targets)
            }
        };
        let logits = self.logits(&g, user_rows, v_train);
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (v, hidden) = self.forward(&mut sess, &batch);
        let last_rows: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let users = g.gather_rows(hidden, &last_rows);
        let logits = self.logits(&g, users, v);
        g.value(logits)
    }

    fn item_representations(&self) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        g.value(v)
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (_, hidden) = self.forward(&mut sess, &batch);
        let last_rows: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let users = g.gather_rows(hidden, &last_rows);
        g.value(users)
    }

    fn set_train_candidates(&mut self, candidates: Option<Vec<usize>>) {
        self.train_candidates = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdTower, TextTower};
    use wr_train::AdamConfig;

    pub(crate) fn tiny_config() -> ModelConfig {
        ModelConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            ff_mult: 2,
            max_seq: 8,
            dropout: 0.0,
            proj_layers: 2,
            seed: 3,
        }
    }

    /// Cyclic next-item data: item i → i+1 mod n.
    fn cyclic_batches(n_items: usize, n_seq: usize, max_seq: usize) -> Vec<Batch> {
        let mut seqs = Vec::new();
        for u in 0..n_seq {
            let start = u % n_items;
            let s: Vec<usize> = (0..6).map(|t| (start + t) % n_items).collect();
            seqs.push(s);
        }
        seqs.chunks(8)
            .map(|chunk| {
                let refs: Vec<&[usize]> = chunk.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, max_seq)
            })
            .collect()
    }

    #[test]
    fn sasrec_id_learns_cyclic_pattern() {
        let mut rng = Rng64::seed_from(1);
        let n_items = 10;
        let cfg = tiny_config();
        let tower = IdTower::new(n_items, cfg.dim, &mut rng);
        let mut model = SasRec::new("SASRec(ID)", Box::new(tower), LossKind::Softmax, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let batches = cyclic_batches(n_items, 40, cfg.max_seq);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if epoch == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");

        // Prediction: after [3,4,5] the next item should be 6.
        let ctx: &[usize] = &[3, 4, 5];
        let scores = model.score(&[ctx]);
        let best = scores.row(0).iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(best, 6, "scores {:?}", scores.row(0));
    }

    #[test]
    fn text_tower_model_trains() {
        let mut rng = Rng64::seed_from(2);
        let n_items = 12;
        let cfg = tiny_config();
        let emb = Tensor::randn(&[n_items, 24], &mut rng);
        let tower = TextTower::new(emb, cfg.dim, cfg.proj_layers, &mut rng);
        let mut model = SasRec::new("SASRec(T)", Box::new(tower), LossKind::Softmax, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let batches = cyclic_batches(n_items, 24, cfg.max_seq);
        let mut losses = Vec::new();
        for _ in 0..10 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            losses.push(sum);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.9));
        // Frozen table: the tower only trains its MLP-2 head
        // (24→16 then 16→16, with biases) — never the n_items×24 table.
        let tower_params: usize = model.tower.params().iter().map(|p| p.numel()).sum();
        assert_eq!(tower_params, 24 * 16 + 16 + 16 * 16 + 16);
    }

    #[test]
    fn cosine_loss_variant_runs() {
        let mut rng = Rng64::seed_from(3);
        let cfg = tiny_config();
        let emb = Tensor::randn(&[10, 16], &mut rng);
        let tower = TextTower::new(emb, cfg.dim, 1, &mut rng);
        let mut model = SasRec::new(
            "UniSRec-like",
            Box::new(tower),
            LossKind::CosineSoftmax { tau: 0.1 },
            cfg,
            &mut rng,
        );
        let mut opt = Adam::new(AdamConfig::default());
        for b in cyclic_batches(10, 8, cfg.max_seq) {
            let loss = model.train_step(&b, &mut opt, &mut rng);
            assert!(loss.is_finite());
        }
        let s = model.score(&[&[1, 2][..]]);
        assert_eq!(s.dims(), &[1, 10]);
    }

    #[test]
    fn sampled_losses_learn_the_cycle() {
        for loss in [LossKind::SampledSoftmax { negatives: 4 }, LossKind::Bpr] {
            let mut rng = Rng64::seed_from(9);
            let n_items = 10;
            let cfg = tiny_config();
            let tower = IdTower::new(n_items, cfg.dim, &mut rng);
            let mut model = SasRec::new("sampled", Box::new(tower), loss, cfg, &mut rng);
            let mut opt = Adam::new(AdamConfig {
                lr: 5e-3,
                ..AdamConfig::default()
            });
            let batches = cyclic_batches(n_items, 40, cfg.max_seq);
            let mut first = 0.0;
            let mut last = 0.0;
            for e in 0..30 {
                let mut sum = 0.0;
                for b in &batches {
                    let l = model.train_step(b, &mut opt, &mut rng);
                    assert!(l.is_finite(), "{loss:?} produced non-finite loss");
                    sum += l;
                }
                if e == 0 {
                    first = sum;
                }
                last = sum;
            }
            assert!(last < first, "{loss:?}: loss {first} -> {last}");
            // the learned scores still rank the true successor on top
            let scores = model.score(&[&[3, 4, 5][..]]);
            let best = scores
                .row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best, 6, "{loss:?} failed to learn the cycle");
        }
    }

    #[test]
    fn representations_shapes() {
        let mut rng = Rng64::seed_from(4);
        let cfg = tiny_config();
        let tower = IdTower::new(9, cfg.dim, &mut rng);
        let model = SasRec::new("m", Box::new(tower), LossKind::Softmax, cfg, &mut rng);
        assert_eq!(model.item_representations().dims(), &[9, cfg.dim]);
        let u = model.user_representations(&[&[1, 2][..], &[3][..]]);
        assert_eq!(u.dims(), &[2, cfg.dim]);
    }
}
