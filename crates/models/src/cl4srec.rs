//! CL4SRec: contrastive learning for sequential recommendation.
//!
//! SASRec^ID plus a contrastive auxiliary task built from three sequence
//! augmentations — crop, mask, reorder — with an InfoNCE loss over the two
//! augmented views of every sequence in the batch.

use wr_autograd::{Graph, Var};
use wr_data::Batch;
use wr_nn::{Module, Param, Session, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{IdTower, ItemTower, ModelConfig};

/// The three augmentation operators of CL4SRec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Augmentation {
    /// Keep a random contiguous sub-sequence of ratio `η` (default 0.6).
    Crop,
    /// Replace a random `γ` fraction of items with the mask token (here:
    /// item dropout — masked items are removed, mirroring RecBole's
    /// implementation at short lengths).
    Mask,
    /// Shuffle a random contiguous sub-sequence of ratio `β`.
    Reorder,
}

/// Apply one random augmentation to a sequence.
pub fn augment_sequence(seq: &[usize], rng: &mut Rng64) -> Vec<usize> {
    if seq.len() < 2 {
        return seq.to_vec();
    }
    let choice = match rng.below(3) {
        0 => Augmentation::Crop,
        1 => Augmentation::Mask,
        _ => Augmentation::Reorder,
    };
    apply_augmentation(seq, choice, rng)
}

/// Apply a specific augmentation (exposed for testing).
pub fn apply_augmentation(seq: &[usize], aug: Augmentation, rng: &mut Rng64) -> Vec<usize> {
    let n = seq.len();
    match aug {
        Augmentation::Crop => {
            let keep = ((n as f32 * 0.6).round() as usize).clamp(1, n);
            let start = rng.below(n - keep + 1);
            seq[start..start + keep].to_vec()
        }
        Augmentation::Mask => {
            let out: Vec<usize> = seq
                .iter()
                .cloned()
                .filter(|_| !rng.chance(0.3))
                .collect();
            if out.is_empty() {
                vec![seq[rng.below(n)]]
            } else {
                out
            }
        }
        Augmentation::Reorder => {
            let span = ((n as f32 * 0.6).round() as usize).clamp(1, n);
            let start = rng.below(n - span + 1);
            let mut out = seq.to_vec();
            rng.shuffle(&mut out[start..start + span]);
            out
        }
    }
}

/// CL4SRec model.
pub struct Cl4SRec {
    pub tower: IdTower,
    pub encoder: TransformerEncoder,
    pub config: ModelConfig,
    /// Weight λ of the contrastive loss (paper default 0.1).
    pub lambda: f32,
    /// InfoNCE temperature.
    pub tau: f32,
}

impl Cl4SRec {
    pub fn new(n_items: usize, config: ModelConfig, rng: &mut Rng64) -> Self {
        Cl4SRec {
            tower: IdTower::new(n_items, config.dim, rng),
            encoder: TransformerEncoder::new(config.transformer(), rng),
            config,
            lambda: 0.1,
            tau: 1.0,
        }
    }

    fn encode_batch(&self, sess: &mut Session, batch: &Batch) -> (Var, Var) {
        let g = sess.graph;
        let v = self.tower.all_items(sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        (v, hidden)
    }

    fn user_rows(batch: &Batch) -> Vec<usize> {
        (0..batch.batch).map(|b| b * batch.seq + batch.seq - 1).collect()
    }

    /// InfoNCE between two aligned views `[b, d]`: positives are matching
    /// rows, negatives are every other row of the second view.
    fn info_nce(&self, g: &Graph, a: Var, b: Var) -> Var {
        let an = g.l2_normalize_rows(a);
        let bn = g.l2_normalize_rows(b);
        let sim = g.scale(g.matmul(an, g.transpose(bn)), 1.0 / self.tau);
        let n = g.dims(a)[0];
        let targets: Vec<usize> = (0..n).collect();
        g.cross_entropy(sim, &targets)
    }
}

impl SeqRecModel for Cl4SRec {
    fn name(&self) -> String {
        "CL4SRec".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.tower.params();
        ps.extend(self.encoder.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        // Rebuild the raw sequences from the batch to derive two augmented
        // views per sequence.
        let sequences = raw_sequences(batch);
        let aug1: Vec<Vec<usize>> = sequences.iter().map(|s| augment_sequence(s, rng)).collect();
        let aug2: Vec<Vec<usize>> = sequences.iter().map(|s| augment_sequence(s, rng)).collect();
        let refs1: Vec<&[usize]> = aug1.iter().map(|s| s.as_slice()).collect();
        let refs2: Vec<&[usize]> = aug2.iter().map(|s| s.as_slice()).collect();
        let b1 = Batch::inference(&refs1, batch.seq);
        let b2 = Batch::inference(&refs2, batch.seq);

        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());

        // Main next-item loss.
        let (v, hidden) = self.encode_batch(&mut sess, batch);
        let users = g.gather_rows(hidden, &batch.loss_positions);
        let logits = g.matmul(users, g.transpose(v));
        let main = g.cross_entropy(logits, &batch.targets);

        // Contrastive loss between the two augmented views.
        let (_, h1) = self.encode_batch(&mut sess, &b1);
        let (_, h2) = self.encode_batch(&mut sess, &b2);
        let u1 = g.gather_rows(h1, &Self::user_rows(&b1));
        let u2 = g.gather_rows(h2, &Self::user_rows(&b2));
        let nce = self.info_nce(&g, u1, u2);

        let loss = g.add(main, g.scale(nce, self.lambda));
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (v, hidden) = self.encode_batch(&mut sess, &batch);
        let users = g.gather_rows(hidden, &Self::user_rows(&batch));
        let logits = g.matmul(users, g.transpose(v));
        g.value(logits)
    }

    fn item_representations(&self) -> Tensor {
        self.tower.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (_, hidden) = self.encode_batch(&mut sess, &batch);
        let users = g.gather_rows(hidden, &Self::user_rows(&batch));
        g.value(users)
    }
}

/// Reconstruct the (truncated, unpadded) input sequences from a batch.
fn raw_sequences(batch: &Batch) -> Vec<Vec<usize>> {
    (0..batch.batch)
        .map(|b| {
            let offset = batch.seq - batch.lengths[b];
            (0..batch.lengths[b])
                .map(|t| batch.items[b * batch.seq + offset + t])
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn crop_keeps_contiguous_subsequence() {
        let mut rng = Rng64::seed_from(1);
        let seq: Vec<usize> = (10..20).collect();
        let out = apply_augmentation(&seq, Augmentation::Crop, &mut rng);
        assert_eq!(out.len(), 6); // 60% of 10
        // contiguity: each element is predecessor + 1
        for w in out.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn mask_drops_items_but_never_all() {
        let mut rng = Rng64::seed_from(2);
        let seq: Vec<usize> = (0..10).collect();
        for _ in 0..50 {
            let out = apply_augmentation(&seq, Augmentation::Mask, &mut rng);
            assert!(!out.is_empty());
            assert!(out.len() <= 10);
            // masked view preserves order
            for w in out.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn reorder_is_a_permutation() {
        let mut rng = Rng64::seed_from(3);
        let seq: Vec<usize> = (0..12).collect();
        let out = apply_augmentation(&seq, Augmentation::Reorder, &mut rng);
        assert_eq!(out.len(), 12);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, seq);
    }

    #[test]
    fn raw_sequences_roundtrip() {
        let s1: &[usize] = &[1, 2, 3, 4];
        let s2: &[usize] = &[7, 8];
        let b = Batch::from_sequences(&[s1, s2], 5);
        let raw = raw_sequences(&b);
        assert_eq!(raw[0], vec![1, 2, 3]); // inputs only (last item is target)
        assert_eq!(raw[1], vec![7]);
    }

    #[test]
    fn training_step_is_finite_and_learns() {
        let mut rng = Rng64::seed_from(4);
        let cfg = ModelConfig {
            dim: 16,
            max_seq: 8,
            dropout: 0.0,
            blocks: 1,
            ..ModelConfig::default()
        };
        let mut model = Cl4SRec::new(10, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..24).map(|u| (0..6).map(|t| (u + t) % 10).collect()).collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..12 {
            let mut sum = 0.0;
            for b in &batches {
                let l = model.train_step(b, &mut opt, &mut rng);
                assert!(l.is_finite());
                sum += l;
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first, "loss {first} -> {last}");
    }
}
