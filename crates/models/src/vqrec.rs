//! VQRec (lite): vector-quantized item representations.
//!
//! Text embeddings are product-quantized offline: the `d_t` dimensions are
//! split into `M` sub-blocks, each clustered into `K` codes with k-means.
//! An item is its `M` discrete codes; its representation is the sum of `M`
//! trainable code embeddings — text determines *which* codes, training
//! determines what the codes *mean*.

use wr_autograd::Var;
use wr_nn::{Embedding, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};

use crate::ItemTower;

/// Product-quantize rows of `x: [n, d]` into `m` blocks of `k` codes each.
///
/// Returns `codes[item][block] ∈ 0..k`. Plain Lloyd k-means per block with
/// k-means++-style seeding from the data.
pub fn product_quantize(x: &Tensor, m: usize, k: usize, iterations: usize, seed: u64) -> Vec<Vec<usize>> {
    let (n, d) = (x.rows(), x.cols());
    assert!(d % m == 0, "dimension {d} not divisible into {m} blocks");
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let block = d / m;
    let mut rng = Rng64::seed_from(seed);
    let mut codes = vec![vec![0usize; m]; n];

    for b in 0..m {
        let sub = x.slice_cols(b * block, (b + 1) * block);
        // Seed centroids from distinct random rows.
        let mut centroid_rows: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut centroid_rows);
        let mut centroids: Vec<Vec<f32>> = centroid_rows[..k]
            .iter()
            .map(|&r| sub.row(r).to_vec())
            .collect();

        let mut assign = vec![0usize; n];
        for _ in 0..iterations {
            // Assign.
            for i in 0..n {
                let row = sub.row(i);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (c, cent) in centroids.iter().enumerate() {
                    let d2: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d2 < best_d {
                        best_d = d2;
                        best = c;
                    }
                }
                assign[i] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f32; block]; k];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assign[i]] += 1;
                for (s, &v) in sums[assign[i]].iter_mut().zip(sub.row(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                } else {
                    // Re-seed empty cluster from a random row.
                    centroids[c] = sub.row(rng.below(n)).to_vec();
                }
            }
        }
        for i in 0..n {
            codes[i][b] = assign[i];
        }
    }
    codes
}

/// VQRec's item tower: sum of trainable code embeddings.
pub struct VqTower {
    /// Flattened code ids: item `i`, block `b` → `b * k + codes[i][b]`.
    lookup: Vec<usize>,
    pub code_emb: Embedding,
    n_items: usize,
    m: usize,
    dim: usize,
}

impl VqTower {
    pub fn new(text_embeddings: &Tensor, m: usize, k: usize, dim: usize, rng: &mut Rng64) -> Self {
        let codes = product_quantize(text_embeddings, m, k, 8, 0xC0DE);
        let n_items = text_embeddings.rows();
        let mut lookup = Vec::with_capacity(n_items * m);
        for item_codes in &codes {
            for (b, &c) in item_codes.iter().enumerate() {
                lookup.push(b * k + c);
            }
        }
        VqTower {
            lookup,
            code_emb: Embedding::new(m * k, dim, rng),
            n_items,
            m,
            dim,
        }
    }
}

impl ItemTower for VqTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let g = sess.graph;
        // Gather [n*m, dim] then fold blocks by summing: reshape to
        // [n, m*dim] view won't sum — instead gather per block and add.
        let table = sess.bind(&self.code_emb.table);
        let mut acc: Option<Var> = None;
        for b in 0..self.m {
            let idx: Vec<usize> = (0..self.n_items).map(|i| self.lookup[i * self.m + b]).collect();
            let part = g.gather_rows(table, &idx);
            acc = Some(match acc {
                Some(a) => g.add(a, part),
                None => part,
            });
        }
        // `m ≥ 1` by construction; an impossible m = 0 degrades to a zero
        // item table instead of panicking.
        acc.unwrap_or_else(|| g.constant(Tensor::zeros(&[self.n_items, self.dim])))
    }

    fn params(&self) -> Vec<Param> {
        self.code_emb.params()
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    #[test]
    fn quantization_groups_similar_rows() {
        let mut rng = Rng64::seed_from(1);
        // Two well-separated clusters in each half of the space.
        let n = 40;
        let mut x = Tensor::randn(&[n, 8], &mut rng).scale(0.1);
        for r in 0..n / 2 {
            for v in x.row_mut(r) {
                *v += 5.0;
            }
        }
        let codes = product_quantize(&x, 2, 2, 10, 7);
        // Items in the same cluster share codes; across clusters differ.
        assert_eq!(codes[0], codes[1]);
        assert_ne!(codes[0], codes[n - 1]);
    }

    #[test]
    fn codes_within_range() {
        let mut rng = Rng64::seed_from(2);
        let x = Tensor::randn(&[30, 12], &mut rng);
        let codes = product_quantize(&x, 3, 4, 5, 8);
        assert_eq!(codes.len(), 30);
        for c in &codes {
            assert_eq!(c.len(), 3);
            assert!(c.iter().all(|&v| v < 4));
        }
    }

    #[test]
    fn tower_output_and_grads() {
        let mut rng = Rng64::seed_from(3);
        let x = Tensor::randn(&[20, 8], &mut rng);
        let tower = VqTower::new(&x, 2, 4, 6, &mut rng);
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(4));
        let v = tower.all_items(&mut s);
        assert_eq!(g.dims(v), vec![20, 6]);
        let loss = g.sum_all(v);
        g.backward(loss);
        let (_, var) = &s.bindings()[0];
        assert!(g.grad(*var).is_some());
        // Code table is the only trainable part.
        assert_eq!(tower.params().len(), 1);
        assert_eq!(tower.param_count(), 2 * 4 * 6);
    }

    #[test]
    fn items_with_same_codes_share_representation() {
        let mut rng = Rng64::seed_from(5);
        let mut x = Tensor::randn(&[10, 8], &mut rng).scale(0.05);
        // rows 0 and 1 nearly identical
        let r0: Vec<f32> = x.row(0).to_vec();
        x.row_mut(1).copy_from_slice(&r0);
        let tower = VqTower::new(&x, 2, 3, 4, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let v = g.value(tower.all_items(&mut s));
        assert_eq!(v.row(0), v.row(1));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_blocks_rejected() {
        let x = Tensor::zeros(&[10, 7]);
        product_quantize(&x, 2, 2, 3, 1);
    }
}
