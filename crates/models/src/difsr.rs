//! DIF-SR: decoupled side-information fusion (§II-B's attribute baseline).
//!
//! Instead of adding attribute embeddings into the input (which entangles
//! them with item representations), DIF-SR moves attributes into the
//! *attention calculation*: per head, the attention logits are the sum of
//! an item-based score `Q Kᵀ` and an attribute-based score `Q_a K_aᵀ`,
//! while values flow only through the item stream.

use wr_autograd::{Graph, Var};
use wr_data::Batch;
use wr_nn::{causal_padding_mask, Embedding, LayerNorm, Linear, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{IdTower, ItemTower, ModelConfig};

/// One DIF block: decoupled-attention sublayer + feed-forward sublayer.
struct DifBlock {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    // Attribute-stream projections (no value path).
    waq: Linear,
    wak: Linear,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
    heads: usize,
    dim: usize,
    dropout: f32,
}

impl DifBlock {
    fn new(dim: usize, heads: usize, ff_mult: usize, dropout: f32, rng: &mut Rng64) -> Self {
        DifBlock {
            wq: Linear::new(dim, dim, true, rng),
            wk: Linear::new(dim, dim, true, rng),
            wv: Linear::new(dim, dim, true, rng),
            wo: Linear::new(dim, dim, true, rng),
            waq: Linear::new(dim, dim, true, rng),
            wak: Linear::new(dim, dim, true, rng),
            ln1: LayerNorm::new(dim),
            ff1: Linear::new(dim, dim * ff_mult, true, rng),
            ff2: Linear::new(dim * ff_mult, dim, true, rng),
            ln2: LayerNorm::new(dim),
            heads,
            dim,
            dropout,
        }
    }

    /// `x` item stream, `attr` attribute stream (both `[b*t, d]`).
    fn forward(
        &self,
        sess: &mut Session,
        x: Var,
        attr: Var,
        batch: usize,
        seq: usize,
        mask: &Tensor,
    ) -> Var {
        let g = sess.graph;
        let q = self.wq.forward(sess, x);
        let k = self.wk.forward(sess, x);
        let v = self.wv.forward(sess, x);
        let qa = self.waq.forward(sess, attr);
        let ka = self.wak.forward(sess, attr);

        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mask_var = g.constant(mask.clone());

        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let r3 = |t: Var, g: &Graph| g.reshape(g.slice_cols(t, lo, hi), &[batch, seq, dh]);
            let qh = r3(q, g);
            let kh = r3(k, g);
            let vh = r3(v, g);
            let qah = r3(qa, g);
            let kah = r3(ka, g);

            // Decoupled fusion: item scores + attribute scores.
            let s_item = g.bmm_nt(qh, kh);
            let s_attr = g.bmm_nt(qah, kah);
            let scores = g.scale(g.add(s_item, s_attr), scale);
            let scores = g.add(scores, mask_var);
            let attn = g.softmax3d_last(scores);
            let attn = sess.dropout(attn, self.dropout);
            let out = g.bmm(attn, vh);
            heads.push(g.reshape(out, &[batch * seq, dh]));
        }
        let concat = if heads.len() == 1 {
            heads[0]
        } else {
            g.concat_cols(&heads)
        };
        let a = self.wo.forward(sess, concat);
        let a = sess.dropout(a, self.dropout);
        let x = self.ln1.forward(sess, g.add(x, a));

        let hdn = self.ff1.forward(sess, x);
        let hdn = g.gelu(hdn);
        let hdn = self.ff2.forward(sess, hdn);
        let hdn = sess.dropout(hdn, self.dropout);
        self.ln2.forward(sess, g.add(x, hdn))
    }
}

impl Module for DifBlock {
    fn params(&self) -> Vec<Param> {
        let mut ps = Vec::new();
        for l in [&self.wq, &self.wk, &self.wv, &self.wo, &self.waq, &self.wak, &self.ff1, &self.ff2] {
            ps.extend(l.params());
        }
        ps.extend(self.ln1.params());
        ps.extend(self.ln2.params());
        ps
    }
}

/// DIF-SR model: ID tower + category attribute stream + decoupled blocks.
pub struct DifSr {
    pub tower: IdTower,
    pub attr_emb: Embedding,
    pub pos: Embedding,
    pub input_ln: LayerNorm,
    blocks: Vec<DifBlock>,
    pub item_category: Vec<usize>,
    pub config: ModelConfig,
}

impl DifSr {
    pub fn new(item_category: Vec<usize>, config: ModelConfig, rng: &mut Rng64) -> Self {
        let n_items = item_category.len();
        let n_categories = item_category.iter().copied().max().unwrap_or(0) + 1;
        DifSr {
            tower: IdTower::new(n_items, config.dim, rng),
            attr_emb: Embedding::new(n_categories, config.dim, rng),
            pos: Embedding::new(config.max_seq, config.dim, rng),
            input_ln: LayerNorm::new(config.dim),
            blocks: (0..config.blocks)
                .map(|_| DifBlock::new(config.dim, config.heads, config.ff_mult, config.dropout, rng))
                .collect(),
            item_category,
            config,
        }
    }

    fn forward(&self, sess: &mut Session, batch: &Batch) -> (Var, Var) {
        let g = sess.graph;
        let v = self.tower.all_items(sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let pos_idx: Vec<usize> = (0..batch.batch).flat_map(|_| 0..batch.seq).collect();
        let p = self.pos.forward(sess, &pos_idx);
        let mut h = g.add(seq_emb, p);
        h = self.input_ln.forward(sess, h);
        h = sess.dropout(h, self.config.dropout);

        // Attribute stream: category embedding per position.
        // Unknown item ids (outside the category table) degrade to
        // category 0 rather than panicking a serving batch.
        let cat_idx: Vec<usize> = batch
            .items
            .iter()
            .map(|&i| self.item_category.get(i).copied().unwrap_or(0))
            .collect();
        let attr = self.attr_emb.forward(sess, &cat_idx);

        let mask = causal_padding_mask(batch.batch, batch.seq, &batch.lengths);
        for block in &self.blocks {
            h = block.forward(sess, h, attr, batch.batch, batch.seq, &mask);
        }
        (v, h)
    }
}

impl SeqRecModel for DifSr {
    fn name(&self) -> String {
        "DIF-SR".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.tower.params();
        ps.extend(self.attr_emb.params());
        ps.extend(self.pos.params());
        ps.extend(self.input_ln.params());
        for b in &self.blocks {
            ps.extend(b.params());
        }
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let (v, hidden) = self.forward(&mut sess, batch);
        let users = g.gather_rows(hidden, &batch.loss_positions);
        let logits = g.matmul(users, g.transpose(v));
        let loss = g.cross_entropy(logits, &batch.targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (v, hidden) = self.forward(&mut sess, &batch);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let users = g.gather_rows(hidden, &last);
        g.value(g.matmul(users, g.transpose(v)))
    }

    fn item_representations(&self) -> Tensor {
        self.tower.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (_, hidden) = self.forward(&mut sess, &batch);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        g.value(g.gather_rows(hidden, &last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn difsr_trains_and_uses_attributes() {
        let mut rng = Rng64::seed_from(1);
        let cfg = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 8,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let cats: Vec<usize> = (0..12).map(|i| i % 4).collect();
        let mut model = DifSr::new(cats, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..24).map(|u| (0..6).map(|t| (u + t) % 12).collect()).collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..12 {
            let mut sum = 0.0;
            for b in &batches {
                let l = model.train_step(b, &mut opt, &mut rng);
                assert!(l.is_finite());
                sum += l;
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first, "loss {first} -> {last}");
        let s = model.score(&[&[1, 2, 3][..]]);
        assert_eq!(s.dims(), &[1, 12]);

        // Attribute stream receives gradients: the attr table must move.
        let table_before = model.attr_emb.table.get();
        for b in &batches {
            model.train_step(b, &mut opt, &mut rng);
        }
        let table_after = model.attr_emb.table.get();
        assert!(
            table_before.sub(&table_after).frob_norm() > 1e-6,
            "attribute embeddings never updated"
        );
    }

    #[test]
    fn param_count_includes_attr_stream() {
        let mut rng = Rng64::seed_from(2);
        let cfg = ModelConfig {
            dim: 8,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let model = DifSr::new(vec![0, 1, 0, 1], cfg, &mut rng);
        // attribute table: 2 categories × 8 dims
        let total = model.param_count();
        let without_attr: usize = model
            .params()
            .iter()
            .filter(|p| !p.name().starts_with("embedding[2x8"))
            .map(|p| p.numel())
            .sum();
        assert_eq!(total - without_attr, 16);
    }
}
