//! S³-Rec (lite): self-supervised attribute objectives on top of SASRec.
//!
//! The original pre-trains with four mutual-information objectives and then
//! fine-tunes. At this scale we fold the key signal — item–attribute
//! correlation — into training as an auxiliary loss: every loss position
//! additionally predicts the *category* of its target item from the hidden
//! state.

use wr_autograd::Graph;
use wr_data::Batch;
use wr_nn::{Linear, Module, Param, Session, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{IdTower, ItemTower, ModelConfig};

/// S³-Rec-lite model.
pub struct S3Rec {
    pub tower: IdTower,
    pub encoder: TransformerEncoder,
    pub attr_head: Linear,
    /// Category id per item (the attribute vocabulary).
    pub item_category: Vec<usize>,
    pub n_categories: usize,
    pub lambda: f32,
    pub config: ModelConfig,
}

impl S3Rec {
    pub fn new(item_category: Vec<usize>, config: ModelConfig, rng: &mut Rng64) -> Self {
        let n_items = item_category.len();
        let n_categories = item_category.iter().copied().max().unwrap_or(0) + 1;
        S3Rec {
            tower: IdTower::new(n_items, config.dim, rng),
            encoder: TransformerEncoder::new(config.transformer(), rng),
            attr_head: Linear::new(config.dim, n_categories, true, rng),
            item_category,
            n_categories,
            lambda: 0.2,
            config,
        }
    }
}

impl SeqRecModel for S3Rec {
    fn name(&self) -> String {
        "S3Rec".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.tower.params();
        ps.extend(self.encoder.params());
        ps.extend(self.attr_head.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let users = g.gather_rows(hidden, &batch.loss_positions);

        let logits = g.matmul(users, g.transpose(v));
        let main = g.cross_entropy(logits, &batch.targets);

        // Attribute prediction: category of the target item.
        let attr_logits = self.attr_head.forward(&mut sess, users);
        let attr_targets: Vec<usize> = batch
            .targets
            .iter()
            .map(|&t| self.item_category[t])
            .collect();
        let attr = g.cross_entropy(attr_logits, &attr_targets);

        let loss = g.add(main, g.scale(attr, self.lambda));
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let users = g.gather_rows(hidden, &last);
        let logits = g.matmul(users, g.transpose(v));
        g.value(logits)
    }

    fn item_representations(&self) -> Tensor {
        self.tower.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        let seq_emb = g.gather_rows(v, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        g.value(g.gather_rows(hidden, &last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn s3rec_trains_with_attribute_loss() {
        let mut rng = Rng64::seed_from(1);
        let cfg = ModelConfig {
            dim: 12,
            blocks: 1,
            max_seq: 6,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        // 10 items in 3 categories
        let cats: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let mut model = S3Rec::new(cats, cfg, &mut rng);
        assert_eq!(model.n_categories, 3);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..5).map(|t| (u + t) % 10).collect()).collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..10 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first, "loss {first} -> {last}");
        assert_eq!(model.score(&[&[0, 1][..]]).dims(), &[1, 10]);
    }
}
