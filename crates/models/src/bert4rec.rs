//! BERT4Rec: bidirectional Transformer trained with the Cloze (masked
//! item) objective — the related-work baseline of §II-A.
//!
//! A special mask token (id `n_items`) replaces a random fraction of
//! input items; the model predicts the original item at every masked
//! position. Inference appends the mask token after the context and
//! predicts it.

use wr_autograd::Graph;
use wr_data::Batch;
use wr_nn::{Embedding, Module, Param, Session, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::ModelConfig;

/// BERT4Rec model.
pub struct Bert4Rec {
    /// `n_items + 1` rows; the last row is the mask token.
    pub emb: Embedding,
    pub encoder: TransformerEncoder,
    pub config: ModelConfig,
    /// Cloze masking probability (paper default 0.2 at short lengths).
    pub mask_prob: f32,
    n_items: usize,
}

impl Bert4Rec {
    pub fn new(n_items: usize, config: ModelConfig, rng: &mut Rng64) -> Self {
        let mut tconfig = config.transformer();
        tconfig.bidirectional = true;
        Bert4Rec {
            emb: Embedding::new(n_items + 1, config.dim, rng),
            encoder: TransformerEncoder::new(tconfig, rng),
            config,
            mask_prob: 0.2,
            n_items,
        }
    }

    fn mask_token(&self) -> usize {
        self.n_items
    }

    /// Scores over real items (the mask token row is excluded).
    fn score_batch(&self, batch: &Batch) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let table = sess.bind(&self.emb.table);
        let seq_emb = g.gather_rows(table, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let users = g.gather_rows(hidden, &last);
        let items = g.slice_cols(g.transpose(table), 0, self.n_items);
        g.value(g.matmul(users, items))
    }
}

impl SeqRecModel for Bert4Rec {
    fn name(&self) -> String {
        "BERT4Rec".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.emb.params();
        ps.extend(self.encoder.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        // Cloze corruption: mask random real positions; always mask the
        // last position (aligns training with next-item inference).
        let mut items = batch.items.clone();
        let mut loss_positions = Vec::new();
        let mut targets = Vec::new();
        for b in 0..batch.batch {
            let start = batch.seq - batch.lengths[b];
            for t in start..batch.seq {
                let pos = b * batch.seq + t;
                let is_last = t == batch.seq - 1;
                if is_last || rng.chance(self.mask_prob) {
                    loss_positions.push(pos);
                    targets.push(items[pos]);
                    items[pos] = self.mask_token();
                }
            }
        }

        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let table = sess.bind(&self.emb.table);
        let seq_emb = g.gather_rows(table, &items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let masked = g.gather_rows(hidden, &loss_positions);
        let logits = g.matmul(masked, g.slice_cols(g.transpose(table), 0, self.n_items));
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        // Append the mask token to each context: predict what fills it.
        let appended: Vec<Vec<usize>> = contexts
            .iter()
            .map(|c| {
                let mut v = c.to_vec();
                v.push(self.mask_token());
                v
            })
            .collect();
        let refs: Vec<&[usize]> = appended.iter().map(|c| c.as_slice()).collect();
        let batch = Batch::inference(&refs, self.config.max_seq);
        self.score_batch(&batch)
    }

    fn item_representations(&self) -> Tensor {
        self.emb.table.get().slice_rows(0, self.n_items)
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let appended: Vec<Vec<usize>> = contexts
            .iter()
            .map(|c| {
                let mut v = c.to_vec();
                v.push(self.mask_token());
                v
            })
            .collect();
        let refs: Vec<&[usize]> = appended.iter().map(|c| c.as_slice()).collect();
        let batch = Batch::inference(&refs, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let table = sess.bind(&self.emb.table);
        let seq_emb = g.gather_rows(table, &batch.items);
        let hidden =
            self.encoder
                .forward_hidden(&mut sess, seq_emb, batch.batch, batch.seq, &batch.lengths);
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        g.value(g.gather_rows(hidden, &last))
    }
}

/// Popularity baseline: scores every item by its training frequency.
/// Zero parameters; the sanity floor every learned model must beat.
pub struct Popularity {
    counts: Vec<f32>,
}

impl Popularity {
    pub fn new(train_sequences: &[Vec<usize>], n_items: usize) -> Self {
        let mut counts = vec![0.0f32; n_items];
        for s in train_sequences {
            for &i in s {
                counts[i] += 1.0;
            }
        }
        Popularity { counts }
    }
}

impl SeqRecModel for Popularity {
    fn name(&self) -> String {
        "Pop".into()
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn train_step(&mut self, _batch: &Batch, _optimizer: &mut Adam, _rng: &mut Rng64) -> f32 {
        0.0
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let n = self.counts.len();
        let mut out = Tensor::zeros(&[contexts.len(), n]);
        for r in 0..contexts.len() {
            out.row_mut(r).copy_from_slice(&self.counts);
        }
        out
    }

    fn item_representations(&self) -> Tensor {
        Tensor::from_vec(self.counts.clone(), &[self.counts.len(), 1])
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        Tensor::ones(&[contexts.len(), 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn bert4rec_learns_cyclic_pattern() {
        let mut rng = Rng64::seed_from(1);
        let n_items = 10;
        let cfg = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 8,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let mut model = Bert4Rec::new(n_items, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..40)
            .map(|u| (0..6).map(|t| (u + t) % n_items).collect())
            .collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..25 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first * 0.6, "loss {first} -> {last}");
        let s = model.score(&[&[2, 3, 4][..]]);
        assert_eq!(s.dims(), &[1, n_items]);
        let best = s
            .row(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "after [2,3,4] expect 5, scores {:?}", s.row(0));
    }

    #[test]
    fn mask_token_never_scored() {
        let mut rng = Rng64::seed_from(2);
        let model = Bert4Rec::new(7, ModelConfig {
            dim: 8,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        }, &mut rng);
        let s = model.score(&[&[1, 2][..]]);
        assert_eq!(s.dims(), &[1, 7]); // not 8: mask row excluded
    }

    #[test]
    fn popularity_ranks_frequent_items_first() {
        let seqs = vec![vec![0, 1, 1, 2, 2, 2], vec![2, 2, 1]];
        let model = Popularity::new(&seqs, 4);
        let s = model.score(&[&[0][..]]);
        let row = s.row(0);
        assert!(row[2] > row[1] && row[1] > row[0] && row[0] > row[3]);
        assert_eq!(model.param_count(), 0);
    }
}
