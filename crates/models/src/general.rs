//! General (non-sequential) recommenders with text features: the BM3 and
//! GRCN baselines of Table III, adapted to the sequential protocol by
//! mean-pooling context items into the user representation.

use wr_autograd::{Graph, Var};
use wr_data::Batch;
use wr_nn::{Param, Session};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{ItemTower, ModelConfig, TextIdTower, TextTower};

/// Mean-pool item rows per sequence: builds the `[b, ctx_rows]` averaging
/// matrix and returns `users = M · ctx_item_rows`.
fn mean_pool_users(
    g: &Graph,
    v: Var,
    contexts: &[&[usize]],
) -> Var {
    let total: usize = contexts.iter().map(|c| c.len()).sum();
    let flat: Vec<usize> = contexts.iter().flat_map(|c| c.iter().copied()).collect();
    let rows = g.gather_rows(v, &flat);
    let mut m = Tensor::zeros(&[contexts.len(), total]);
    let mut offset = 0;
    for (b, ctx) in contexts.iter().enumerate() {
        let w = 1.0 / ctx.len().max(1) as f32;
        for j in 0..ctx.len() {
            *m.at2_mut(b, offset + j) = w;
        }
        offset += ctx.len();
    }
    let mv = g.constant(m);
    g.matmul(mv, rows)
}

/// Rebuild unpadded contexts + final target from a training batch.
fn contexts_and_targets(batch: &Batch) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut contexts = Vec::with_capacity(batch.batch);
    for b in 0..batch.batch {
        let offset = batch.seq - batch.lengths[b];
        contexts.push(
            (0..batch.lengths[b])
                .map(|t| batch.items[b * batch.seq + offset + t])
                .collect(),
        );
    }
    (contexts, crate::gru4rec::final_targets(batch))
}

/// BM3-lite: multimodal recommender trained with (i) a user–item softmax
/// alignment and (ii) an inter-modality alignment between each target
/// item's ID embedding and its text projection (the bootstrap-alignment
/// signal of BM3, without the momentum machinery).
pub struct Bm3Lite {
    pub tower: TextIdTower,
    pub config: ModelConfig,
    pub modal_lambda: f32,
}

impl Bm3Lite {
    pub fn new(text_embeddings: Tensor, config: ModelConfig, rng: &mut Rng64) -> Self {
        Bm3Lite {
            tower: TextIdTower::new(text_embeddings, config.dim, 1, rng),
            config,
            modal_lambda: 0.5,
        }
    }
}

impl SeqRecModel for Bm3Lite {
    fn name(&self) -> String {
        "BM3".into()
    }

    fn params(&self) -> Vec<Param> {
        self.tower.params()
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let (contexts, targets) = contexts_and_targets(batch);
        let ctx_refs: Vec<&[usize]> = contexts.iter().map(|c| c.as_slice()).collect();
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let v = self.tower.all_items(&mut sess);
        let users = mean_pool_users(&g, v, &ctx_refs);
        let logits = g.matmul(users, g.transpose(v));
        let main = g.cross_entropy(logits, &targets);

        // Modality alignment on the targets: text proj ≈ id embedding.
        let text_all = self.tower.text.all_items(&mut sess);
        let id_all = sess.bind(&self.tower.id.table);
        let t_rows = g.gather_rows(text_all, &targets);
        let i_rows = g.gather_rows(id_all, &targets);
        let tn = g.l2_normalize_rows(t_rows);
        let in_ = g.l2_normalize_rows(i_rows);
        let diff = g.sub(tn, in_);
        let modal = g.mean_all(g.mul(diff, diff));

        let loss = g.add(main, g.scale(modal, self.modal_lambda));
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        let users = mean_pool_users(&g, v, contexts);
        g.value(g.matmul(users, g.transpose(v)))
    }

    fn item_representations(&self) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        g.value(v)
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.tower.all_items(&mut sess);
        g.value(mean_pool_users(&g, v, contexts))
    }
}

/// GRCN-lite: graph-refined convolution. Item representations are smoothed
/// over a co-occurrence graph whose edges are *refined* (re-weighted) by
/// text similarity, pruning likely-false-positive links — the core of GRCN
/// without the full multi-layer message passing.
pub struct GrcnLite {
    pub tower: TextTower,
    /// `neighbors[i]` = up to K `(neighbor, weight)` pairs, text-refined.
    neighbors: Vec<Vec<(usize, f32)>>,
    pub alpha: f32,
    pub config: ModelConfig,
}

impl GrcnLite {
    /// `train_sequences` supply the co-occurrence graph.
    pub fn new(
        text_embeddings: Tensor,
        train_sequences: &[Vec<usize>],
        k_neighbors: usize,
        config: ModelConfig,
        rng: &mut Rng64,
    ) -> Self {
        let n = text_embeddings.rows();
        let neighbors = refined_graph(&text_embeddings, train_sequences, n, k_neighbors);
        GrcnLite {
            tower: TextTower::new(text_embeddings, config.dim, 1, rng),
            neighbors,
            alpha: 0.5,
            config,
        }
    }

    /// `V = proj(text) + α · Agg_graph(proj(text))`.
    fn items_with_graph(&self, sess: &mut Session) -> Var {
        let g = sess.graph;
        let base = self.tower.all_items(sess);
        let n = self.tower.n_items();
        // Aggregate neighbor rows slot-by-slot (ragged lists padded with
        // self-loops of weight 0).
        let k_max = self.neighbors.iter().map(Vec::len).max().unwrap_or(0);
        let mut agg: Option<Var> = None;
        let d = self.tower.dim();
        let mut idx: Vec<usize> = Vec::with_capacity(n);
        for slot in 0..k_max {
            idx.clear();
            let mut w = Tensor::zeros(&[n, 1]);
            for (i, nbrs) in self.neighbors.iter().enumerate() {
                match nbrs.get(slot) {
                    Some(&(j, weight)) => {
                        idx.push(j);
                        *w.at2_mut(i, 0) = weight;
                    }
                    None => idx.push(i),
                }
            }
            let rows = g.gather_rows(base, &idx);
            let wv = g.constant(w);
            let ones = g.constant(Tensor::ones(&[1, d]));
            let wfull = g.matmul(wv, ones);
            let contrib = g.mul(rows, wfull);
            agg = Some(match agg {
                Some(a) => g.add(a, contrib),
                None => contrib,
            });
        }
        match agg {
            Some(a) => g.add(base, g.scale(a, self.alpha)),
            None => base,
        }
    }
}

/// Build the text-refined co-occurrence graph: count adjacent co-occurrences,
/// weight each edge by `count · max(0, cos(text_i, text_j))`, keep the top-K
/// per item, normalize weights to sum to 1.
fn refined_graph(
    text: &Tensor,
    sequences: &[Vec<usize>],
    n: usize,
    k: usize,
) -> Vec<Vec<(usize, f32)>> {
    // BTreeMap, not HashMap: the top-K truncation below breaks weight ties
    // by whatever order the map iterates in, so the map must iterate
    // deterministically for the graph (and the model) to be reproducible.
    use std::collections::BTreeMap;
    let mut counts: Vec<BTreeMap<usize, f32>> = vec![BTreeMap::new(); n];
    for s in sequences {
        for w in s.windows(2) {
            if w[0] != w[1] {
                *counts[w[0]].entry(w[1]).or_insert(0.0) += 1.0;
                *counts[w[1]].entry(w[0]).or_insert(0.0) += 1.0;
            }
        }
    }
    let tn = text.l2_normalize_rows();
    (0..n)
        .map(|i| {
            let mut edges: Vec<(usize, f32)> = counts[i]
                .iter()
                .map(|(&j, &c)| {
                    let cos: f32 = tn.row(i).iter().zip(tn.row(j)).map(|(a, b)| a * b).sum();
                    (j, c * cos.max(0.0))
                })
                .filter(|&(_, w)| w > 0.0)
                .collect();
            // Sort by weight descending, tie-broken by item index so the
            // kept top-K never depends on the incoming order.
            edges.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            edges.truncate(k);
            let total: f32 = edges.iter().map(|e| e.1).sum();
            if total > 0.0 {
                for e in &mut edges {
                    e.1 /= total;
                }
            }
            edges
        })
        .collect()
}

impl SeqRecModel for GrcnLite {
    fn name(&self) -> String {
        "GRCN".into()
    }

    fn params(&self) -> Vec<Param> {
        self.tower.params()
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let (contexts, targets) = contexts_and_targets(batch);
        let ctx_refs: Vec<&[usize]> = contexts.iter().map(|c| c.as_slice()).collect();
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let v = self.items_with_graph(&mut sess);
        let users = mean_pool_users(&g, v, &ctx_refs);
        let logits = g.matmul(users, g.transpose(v));
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.items_with_graph(&mut sess);
        let users = mean_pool_users(&g, v, contexts);
        g.value(g.matmul(users, g.transpose(v)))
    }

    fn item_representations(&self) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.items_with_graph(&mut sess);
        g.value(v)
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let v = self.items_with_graph(&mut sess);
        g.value(mean_pool_users(&g, v, contexts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    fn toy_batches(n_items: usize, cfg: &ModelConfig) -> Vec<Batch> {
        let seqs: Vec<Vec<usize>> = (0..16)
            .map(|u| (0..5).map(|t| (u + t) % n_items).collect())
            .collect();
        seqs.chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect()
    }

    #[test]
    fn bm3_trains() {
        let mut rng = Rng64::seed_from(1);
        let cfg = ModelConfig {
            dim: 12,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let mut model = Bm3Lite::new(Tensor::randn(&[10, 16], &mut rng), cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let batches = toy_batches(10, &cfg);
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..10 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first);
        assert_eq!(model.score(&[&[1, 2][..]]).dims(), &[1, 10]);
    }

    #[test]
    fn grcn_graph_is_text_refined() {
        let mut rng = Rng64::seed_from(2);
        // Items 0,1 textually similar; 0,2 co-occur but dissimilar.
        let mut text = Tensor::randn(&[4, 8], &mut rng).scale(0.05);
        let shared: Vec<f32> = (0..8).map(|j| (j as f32).sin()).collect();
        for r in [0usize, 1] {
            for (v, s) in text.row_mut(r).iter_mut().zip(&shared) {
                *v += s;
            }
        }
        for (v, s) in text.row_mut(2).iter_mut().zip(&shared) {
            *v -= s; // opposite direction → negative cosine with 0
        }
        let seqs = vec![vec![0, 1, 0, 2, 0, 1], vec![0, 2, 0, 2]];
        let graph = refined_graph(&text, &seqs, 4, 3);
        // edge 0→1 survives; edge 0→2 has negative cosine → pruned
        assert!(graph[0].iter().any(|&(j, _)| j == 1));
        assert!(
            !graph[0].iter().any(|&(j, _)| j == 2),
            "dissimilar edge should be pruned: {:?}",
            graph[0]
        );
    }

    #[test]
    fn grcn_trains_and_scores() {
        let mut rng = Rng64::seed_from(3);
        let cfg = ModelConfig {
            dim: 12,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let text = Tensor::randn(&[10, 16], &mut rng);
        let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..5).map(|t| (u + t) % 10).collect()).collect();
        let mut model = GrcnLite::new(text, &seqs, 4, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        for b in toy_batches(10, &cfg) {
            let loss = model.train_step(&b, &mut opt, &mut rng);
            assert!(loss.is_finite());
        }
        let s = model.score(&[&[0, 1, 2][..]]);
        assert_eq!(s.dims(), &[1, 10]);
        assert_eq!(s.non_finite_count(), 0);
    }

    #[test]
    fn mean_pool_users_averages() {
        let g = Graph::new();
        let v = g.constant(Tensor::from_vec(
            vec![1.0, 0.0, 3.0, 0.0, 0.0, 6.0],
            &[3, 2],
        ));
        let ctx: Vec<&[usize]> = vec![&[0, 1][..], &[2][..]];
        let u = mean_pool_users(&g, v, &ctx);
        let uv = g.value(u);
        assert_eq!(uv.row(0), &[2.0, 0.0]);
        assert_eq!(uv.row(1), &[0.0, 6.0]);
    }
}
