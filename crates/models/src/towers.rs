//! Item towers: everything that can produce the item matrix `V` of Eq. (2).

use wr_autograd::Var;
use wr_nn::{Embedding, FrozenTable, Linear, MoEAdaptor, Module, Param, ProjectionHead, Session};
use wr_tensor::{Rng64, Tensor};
use wr_whiten::EnsembleMode;

/// An item encoder `f_θ1`: maps the full catalog to `V ∈ R^{n_items × d}`
/// inside a session.
pub trait ItemTower {
    /// Build the `[n_items, d]` item representation node.
    fn all_items(&self, sess: &mut Session) -> Var;

    /// Trainable parameters of the tower.
    fn params(&self) -> Vec<Param>;

    fn n_items(&self) -> usize;

    fn dim(&self) -> usize;

    /// Total trainable scalars in the tower.
    fn param_count(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }
}

/// Classic trainable ID embeddings (SASRec^ID).
pub struct IdTower {
    pub emb: Embedding,
}

impl IdTower {
    pub fn new(n_items: usize, dim: usize, rng: &mut Rng64) -> Self {
        IdTower {
            emb: Embedding::new(n_items, dim, rng),
        }
    }
}

impl ItemTower for IdTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        sess.bind(&self.emb.table)
    }

    fn params(&self) -> Vec<Param> {
        self.emb.params()
    }

    fn n_items(&self) -> usize {
        self.emb.vocab()
    }

    fn dim(&self) -> usize {
        self.emb.dim()
    }
}

/// Frozen text embeddings (raw or pre-whitened) through a projection head
/// (SASRec^T when fed raw embeddings; WhitenRec when fed ZCA-whitened ones).
pub struct TextTower {
    pub table: FrozenTable,
    pub head: ProjectionHead,
    dim: usize,
}

impl TextTower {
    pub fn new(embeddings: Tensor, dim: usize, proj_layers: usize, rng: &mut Rng64) -> Self {
        let head = ProjectionHead::new(embeddings.cols(), dim, proj_layers, rng);
        TextTower {
            table: FrozenTable::new(embeddings),
            head,
            dim,
        }
    }
}

impl ItemTower for TextTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let x = self.table.all(sess);
        self.head.forward(sess, x)
    }

    fn params(&self) -> Vec<Param> {
        self.head.params()
    }

    fn n_items(&self) -> usize {
        self.table.vocab()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Text projection + trainable ID embeddings, merged by element-wise sum
/// (SASRec^T+ID; also WhitenRec(T+ID) in Table VIII).
pub struct TextIdTower {
    pub text: TextTower,
    pub id: Embedding,
}

impl TextIdTower {
    pub fn new(embeddings: Tensor, dim: usize, proj_layers: usize, rng: &mut Rng64) -> Self {
        let n = embeddings.rows();
        TextIdTower {
            text: TextTower::new(embeddings, dim, proj_layers, rng),
            id: Embedding::new(n, dim, rng),
        }
    }
}

impl ItemTower for TextIdTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let t = self.text.all_items(sess);
        let i = sess.bind(&self.id.table);
        sess.graph.add(t, i)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.text.params();
        ps.extend(self.id.params());
        ps
    }

    fn n_items(&self) -> usize {
        self.text.n_items()
    }

    fn dim(&self) -> usize {
        self.text.dim()
    }
}

/// WhitenRec+'s ensemble tower (Eq. 6): fully whitened and relaxed
/// whitened views through a *shared* projection head, combined by Sum,
/// Concat+linear, or learned attention (Table VII).
pub struct EnsembleTower {
    pub z_full: FrozenTable,
    pub z_relaxed: FrozenTable,
    pub head: ProjectionHead,
    pub mode: EnsembleMode,
    /// `Concat` mode: `[2d, d]` merge layer.
    concat_merge: Option<Linear>,
    /// `Attn` mode: scoring vector `[d, 1]`.
    attn_query: Option<Linear>,
    dim: usize,
}

impl EnsembleTower {
    pub fn new(
        z_full: Tensor,
        z_relaxed: Tensor,
        dim: usize,
        proj_layers: usize,
        mode: EnsembleMode,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(z_full.dims(), z_relaxed.dims(), "whitened views must align");
        let head = ProjectionHead::new(z_full.cols(), dim, proj_layers, rng);
        let concat_merge = matches!(mode, EnsembleMode::Concat)
            .then(|| Linear::new(2 * dim, dim, true, rng));
        let attn_query =
            matches!(mode, EnsembleMode::Attn).then(|| Linear::new(dim, 1, false, rng));
        EnsembleTower {
            z_full: FrozenTable::new(z_full),
            z_relaxed: FrozenTable::new(z_relaxed),
            head,
            mode,
            concat_merge,
            attn_query,
            dim,
        }
    }
}

impl ItemTower for EnsembleTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let g = sess.graph;
        let x1 = self.z_full.all(sess);
        let x2 = self.z_relaxed.all(sess);
        // Shared head: the session de-duplicates the weight bindings, so
        // gradients from both views accumulate into the same parameters.
        let h1 = self.head.forward(sess, x1);
        let h2 = self.head.forward(sess, x2);
        // The constructor pairs each mode with its layer; if that invariant
        // is ever broken, the ensemble degrades to the Sum merge instead of
        // panicking a serving batch.
        match self.mode {
            EnsembleMode::Sum => g.add(h1, h2),
            EnsembleMode::Concat => match self.concat_merge.as_ref() {
                Some(merge) => {
                    let cat = g.concat_cols(&[h1, h2]);
                    merge.forward(sess, cat)
                }
                None => g.add(h1, h2),
            },
            EnsembleMode::Attn => match self.attn_query.as_ref() {
                Some(q) => {
                    let s1 = q.forward(sess, h1); // [n, 1]
                    let s2 = q.forward(sess, h2);
                    let scores = g.concat_cols(&[s1, s2]); // [n, 2]
                    let alpha = g.softmax_rows(scores);
                    let ones = g.constant(Tensor::ones(&[1, self.dim]));
                    let a1 = g.matmul(g.slice_cols(alpha, 0, 1), ones);
                    let a2 = g.matmul(g.slice_cols(alpha, 1, 2), ones);
                    g.add(g.mul(h1, a1), g.mul(h2, a2))
                }
                None => g.add(h1, h2),
            },
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.head.params();
        if let Some(l) = &self.concat_merge {
            ps.extend(l.params());
        }
        if let Some(l) = &self.attn_query {
            ps.extend(l.params());
        }
        ps
    }

    fn n_items(&self) -> usize {
        self.z_full.vocab()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Parametric whitening (UniSRec's PW, the Table VI baseline): a trainable
/// affine map `z = (x − b) W` in place of a pre-computed whitening, feeding
/// the usual projection head. A linear layer cannot guarantee decorrelated
/// outputs — which is exactly the deficiency Table VI demonstrates.
pub struct PwTower {
    pub pw: Linear,
    pub head: ProjectionHead,
    dim: usize,
    table: FrozenTable,
}

impl PwTower {
    pub fn new(embeddings: Tensor, dim: usize, proj_layers: usize, rng: &mut Rng64) -> Self {
        let dt = embeddings.cols();
        PwTower {
            pw: Linear::new(dt, dt, true, rng),
            head: ProjectionHead::new(dt, dim, proj_layers, rng),
            dim,
            table: FrozenTable::new(embeddings),
        }
    }
}

impl ItemTower for PwTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let x = self.table.all(sess);
        let z = self.pw.forward(sess, x);
        self.head.forward(sess, z)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.pw.params();
        ps.extend(self.head.params());
        ps
    }

    fn n_items(&self) -> usize {
        self.table.vocab()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// UniSRec's item encoder: parametric whitening is the linear part of each
/// expert, wrapped in a Mixture-of-Experts adaptor over the frozen text.
pub struct MoeTower {
    pub table: FrozenTable,
    pub moe: MoEAdaptor,
    dim: usize,
}

impl MoeTower {
    pub fn new(embeddings: Tensor, dim: usize, n_experts: usize, rng: &mut Rng64) -> Self {
        let moe = MoEAdaptor::new(embeddings.cols(), dim, n_experts, 0.01, rng);
        MoeTower {
            table: FrozenTable::new(embeddings),
            moe,
            dim,
        }
    }
}

impl ItemTower for MoeTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let x = self.table.all(sess);
        self.moe.forward(sess, x)
    }

    fn params(&self) -> Vec<Param> {
        self.moe.params()
    }

    fn n_items(&self) -> usize {
        self.table.vocab()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    fn embeddings(n: usize, dt: usize) -> Tensor {
        let mut rng = Rng64::seed_from(9);
        Tensor::randn(&[n, dt], &mut rng)
    }

    #[test]
    fn id_tower_is_the_embedding_table() {
        let mut rng = Rng64::seed_from(1);
        let tower = IdTower::new(20, 8, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let v = tower.all_items(&mut s);
        assert_eq!(g.dims(v), vec![20, 8]);
        assert_eq!(tower.params().len(), 1);
    }

    #[test]
    fn text_tower_has_no_table_params() {
        let mut rng = Rng64::seed_from(2);
        let tower = TextTower::new(embeddings(30, 16), 8, 2, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let v = tower.all_items(&mut s);
        assert_eq!(g.dims(v), vec![30, 8]);
        // only the projection head is trainable
        let head_params: usize = tower.params().iter().map(|p| p.numel()).sum();
        assert_eq!(head_params, 16 * 8 + 8 + 8 * 8 + 8);
    }

    #[test]
    fn text_id_tower_parameter_count() {
        let mut rng = Rng64::seed_from(3);
        let tower = TextIdTower::new(embeddings(30, 16), 8, 2, &mut rng);
        let id_part = 30 * 8;
        let text_part = 16 * 8 + 8 + 8 * 8 + 8;
        let total: usize = tower.params().iter().map(|p| p.numel()).sum();
        assert_eq!(total, id_part + text_part);
    }

    #[test]
    fn ensemble_modes_produce_valid_output() {
        let mut rng = Rng64::seed_from(4);
        for mode in EnsembleMode::ALL {
            let tower = EnsembleTower::new(
                embeddings(25, 16),
                embeddings(25, 16).scale(0.5),
                8,
                2,
                mode,
                &mut rng,
            );
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let v = tower.all_items(&mut s);
            assert_eq!(g.dims(v), vec![25, 8], "mode {mode:?}");
            assert_eq!(g.value(v).non_finite_count(), 0);
        }
    }

    #[test]
    fn ensemble_sum_shares_head_gradients() {
        let mut rng = Rng64::seed_from(5);
        let tower = EnsembleTower::new(
            embeddings(10, 8),
            embeddings(10, 8),
            4,
            1,
            EnsembleMode::Sum,
            &mut rng,
        );
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(6));
        let v = tower.all_items(&mut s);
        let loss = g.sum_all(v);
        g.backward(loss);
        // The shared head binds each param exactly once.
        let n_bound = s.bindings().len();
        assert_eq!(n_bound, tower.params().len());
        for (p, var) in s.bindings() {
            assert!(g.grad(*var).is_some(), "no grad for shared {}", p.name());
        }
    }

    #[test]
    fn moe_tower_output() {
        let mut rng = Rng64::seed_from(7);
        let tower = MoeTower::new(embeddings(15, 12), 6, 3, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let v = tower.all_items(&mut s);
        assert_eq!(g.dims(v), vec![15, 6]);
        assert_eq!(tower.dim(), 6);
        assert_eq!(tower.n_items(), 15);
    }
}
