//! Model factory for the experiment harness.
//!
//! Builds every row of Tables III/IV by name, handling the whitening
//! pre-processing each model expects.

use wr_autograd::Var;
use wr_nn::{Embedding, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;
use wr_whiten::{group_whiten, EnsembleMode, WhiteningMethod, WhiteningTransform, DEFAULT_EPS};

use crate::{
    Bm3Lite, Cl4SRec, EnsembleTower, Fdsa, GrcnLite, Gru4Rec, IdTower, ItemTower, LossKind,
    ModelConfig, MoeTower, S3Rec, SasRec, TextIdTower, TextTower, VqTower,
};

/// Everything a model might need at construction time.
pub struct ZooInputs<'a> {
    /// Raw (un-whitened) pre-trained text embeddings `[n_items, d_t]`.
    pub embeddings: &'a Tensor,
    /// Category id per item (S³-Rec's attributes).
    pub item_categories: &'a [usize],
    /// Training sequences (GRCN's co-occurrence graph).
    pub train_sequences: &'a [Vec<usize>],
    /// Group count for relaxed whitening (WhitenRec+ default 4).
    pub relaxed_groups: usize,
}

/// Any tower plus trainable ID embeddings (UniSRec's transductive setting).
struct PlusIdTower {
    inner: Box<dyn ItemTower>,
    id: Embedding,
}

impl ItemTower for PlusIdTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let t = self.inner.all_items(sess);
        let i = sess.bind(&self.id.table);
        sess.graph.add(t, i)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.inner.params();
        ps.extend(self.id.params());
        ps
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }
}

/// Extension (the paper's Table VIII future-work direction): *gated* ID
/// fusion instead of plain summation. A sigmoid gate computed from the
/// text representation decides per item and dimension how much of the ID
/// embedding enters: `V = T + sigmoid(T W_g) * E_id`. Cold items — whose
/// ID rows are untrained noise — can be gated out; the plain sum of
/// Table VIII cannot do that.
struct GatedIdTower {
    inner: Box<dyn ItemTower>,
    id: Embedding,
    gate: wr_nn::Linear,
}

impl GatedIdTower {
    fn new(inner: Box<dyn ItemTower>, n_items: usize, dim: usize, rng: &mut Rng64) -> Self {
        GatedIdTower {
            inner,
            id: Embedding::new(n_items, dim, rng),
            gate: wr_nn::Linear::new(dim, dim, true, rng),
        }
    }
}

impl ItemTower for GatedIdTower {
    fn all_items(&self, sess: &mut Session) -> Var {
        let g = sess.graph;
        let t = self.inner.all_items(sess);
        let i = sess.bind(&self.id.table);
        let gate = g.sigmoid(self.gate.forward(sess, t));
        g.add(t, g.mul(gate, i))
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.inner.params();
        ps.extend(self.id.params());
        ps.extend(self.gate.params());
        ps
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }
}

/// The Table III roster, in paper column order.
pub const WARM_ROSTER: [&str; 13] = [
    "GRCN",
    "BM3",
    "SASRec(ID)",
    "CL4SRec",
    "SASRec(T)",
    "SASRec(T+ID)",
    "S3Rec",
    "FDSA",
    "UniSRec(T)",
    "UniSRec(T+ID)",
    "VQRec",
    "WhitenRec",
    "WhitenRec+",
];

/// ZCA-whiten embeddings fully (`G = 1`).
pub fn whiten_full(embeddings: &Tensor) -> Tensor {
    WhiteningTransform::fit(embeddings, WhiteningMethod::Zca, DEFAULT_EPS).apply(embeddings)
}

/// Relaxed whitening with `groups` groups.
pub fn whiten_relaxed(embeddings: &Tensor, groups: usize) -> Tensor {
    group_whiten(embeddings, groups, WhiteningMethod::Zca, DEFAULT_EPS)
}

/// Build a model by its Table III name. Panics on unknown names — the
/// roster is a closed set.
pub fn build(name: &str, inputs: &ZooInputs, config: ModelConfig, rng: &mut Rng64) -> Box<dyn SeqRecModel> {
    let emb = inputs.embeddings;
    let n_items = emb.rows();
    match name {
        "GRCN" => Box::new(GrcnLite::new(
            emb.clone(),
            inputs.train_sequences,
            6,
            config,
            rng,
        )),
        "BM3" => Box::new(Bm3Lite::new(emb.clone(), config, rng)),
        "SASRec(ID)" => Box::new(SasRec::new(
            name,
            Box::new(IdTower::new(n_items, config.dim, rng)),
            LossKind::Softmax,
            config,
            rng,
        )),
        "CL4SRec" => Box::new(Cl4SRec::new(n_items, config, rng)),
        "SASRec(T)" => Box::new(SasRec::new(
            name,
            Box::new(TextTower::new(emb.clone(), config.dim, config.proj_layers, rng)),
            LossKind::Softmax,
            config,
            rng,
        )),
        "SASRec(T+ID)" => Box::new(SasRec::new(
            name,
            Box::new(TextIdTower::new(emb.clone(), config.dim, config.proj_layers, rng)),
            LossKind::Softmax,
            config,
            rng,
        )),
        "S3Rec" => Box::new(S3Rec::new(inputs.item_categories.to_vec(), config, rng)),
        "DIF-SR" => Box::new(crate::DifSr::new(inputs.item_categories.to_vec(), config, rng)),
        "FDSA" => Box::new(Fdsa::new(emb.clone(), config, rng)),
        "UniSRec(T)" => Box::new(SasRec::new(
            name,
            Box::new(MoeTower::new(emb.clone(), config.dim, 4, rng)),
            LossKind::CosineSoftmax { tau: 0.07 },
            config,
            rng,
        )),
        "UniSRec(T+ID)" => Box::new(SasRec::new(
            name,
            Box::new(PlusIdTower {
                inner: Box::new(MoeTower::new(emb.clone(), config.dim, 4, rng)),
                id: Embedding::new(n_items, config.dim, rng),
            }),
            LossKind::CosineSoftmax { tau: 0.07 },
            config,
            rng,
        )),
        "VQRec" => {
            let m = if emb.cols() % 8 == 0 { 8 } else { 4 };
            let k = 32.min(n_items.max(2) - 1).max(2);
            Box::new(SasRec::new(
                name,
                Box::new(VqTower::new(emb, m, k, config.dim, rng)),
                LossKind::Softmax,
                config,
                rng,
            ))
        }
        "WhitenRec" => Box::new(SasRec::new(
            name,
            Box::new(TextTower::new(
                whiten_full(emb),
                config.dim,
                config.proj_layers,
                rng,
            )),
            LossKind::Softmax,
            config,
            rng,
        )),
        "WhitenRec+" => Box::new(SasRec::new(
            name,
            Box::new(EnsembleTower::new(
                whiten_full(emb),
                whiten_relaxed(emb, inputs.relaxed_groups),
                config.dim,
                config.proj_layers,
                EnsembleMode::Sum,
                rng,
            )),
            LossKind::Softmax,
            config,
            rng,
        )),
        "GRU4Rec" => Box::new(Gru4Rec::new(n_items, config, rng)),
        "BERT4Rec" => Box::new(crate::Bert4Rec::new(n_items, config, rng)),
        "Pop" => Box::new(crate::Popularity::new(inputs.train_sequences, n_items)),
        "WhitenRec(T+ID)" => Box::new(SasRec::new(
            name,
            Box::new(PlusIdTower {
                inner: Box::new(TextTower::new(
                    whiten_full(emb),
                    config.dim,
                    config.proj_layers,
                    rng,
                )),
                id: Embedding::new(n_items, config.dim, rng),
            }),
            LossKind::Softmax,
            config,
            rng,
        )),
        "WhitenRec+(T+ID)" => Box::new(SasRec::new(
            name,
            Box::new(PlusIdTower {
                inner: Box::new(EnsembleTower::new(
                    whiten_full(emb),
                    whiten_relaxed(emb, inputs.relaxed_groups),
                    config.dim,
                    config.proj_layers,
                    EnsembleMode::Sum,
                    rng,
                )),
                id: Embedding::new(n_items, config.dim, rng),
            }),
            LossKind::Softmax,
            config,
            rng,
        )),
        other => {
            // Parameterized names: "WhitenRec@G=8" (relaxed-only, Fig. 5) and
            // "WhitenRec+@G=8" (ensemble with that relaxed view, Fig. 8),
            // "WhitenRec+@Concat" / "WhitenRec+@Attn" (Table VII).
            if let Some(gs) = other.strip_prefix("WhitenRec@G=") {
                let g: usize = gs.parse().expect("group count");
                return Box::new(SasRec::new(
                    other,
                    Box::new(TextTower::new(
                        whiten_relaxed(emb, g),
                        config.dim,
                        config.proj_layers,
                        rng,
                    )),
                    LossKind::Softmax,
                    config,
                    rng,
                ));
            }
            if let Some(gs) = other.strip_prefix("WhitenRec+@G=") {
                let g: usize = gs.parse().expect("group count");
                return Box::new(SasRec::new(
                    other,
                    Box::new(EnsembleTower::new(
                        whiten_full(emb),
                        whiten_relaxed(emb, g),
                        config.dim,
                        config.proj_layers,
                        EnsembleMode::Sum,
                        rng,
                    )),
                    LossKind::Softmax,
                    config,
                    rng,
                ));
            }
            if other == "WhitenRec+(GatedID)" {
                return Box::new(SasRec::new(
                    other,
                    Box::new(GatedIdTower::new(
                        Box::new(EnsembleTower::new(
                            whiten_full(emb),
                            whiten_relaxed(emb, inputs.relaxed_groups),
                            config.dim,
                            config.proj_layers,
                            EnsembleMode::Sum,
                            rng,
                        )),
                        n_items,
                        config.dim,
                        rng,
                    )),
                    LossKind::Softmax,
                    config,
                    rng,
                ));
            }
            if let Some(mode_name) = other.strip_prefix("WhitenRec+@") {
                let mode = match mode_name {
                    "Sum" => EnsembleMode::Sum,
                    "Concat" => EnsembleMode::Concat,
                    "Attn" => EnsembleMode::Attn,
                    m => panic!("unknown ensemble mode {m}"),
                };
                return Box::new(SasRec::new(
                    other,
                    Box::new(EnsembleTower::new(
                        whiten_full(emb),
                        whiten_relaxed(emb, inputs.relaxed_groups),
                        config.dim,
                        config.proj_layers,
                        mode,
                        rng,
                    )),
                    LossKind::Softmax,
                    config,
                    rng,
                ));
            }
            panic!("unknown model name: {other}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_data::Batch;
    use wr_train::{Adam, AdamConfig};

    fn tiny_inputs() -> (Tensor, Vec<usize>, Vec<Vec<usize>>) {
        let mut rng = Rng64::seed_from(42);
        let emb = Tensor::randn(&[24, 16], &mut rng);
        let cats: Vec<usize> = (0..24).map(|i| i % 4).collect();
        let seqs: Vec<Vec<usize>> = (0..20).map(|u| (0..6).map(|t| (u + t) % 24).collect()).collect();
        (emb, cats, seqs)
    }

    #[test]
    fn every_roster_model_builds_and_steps() {
        let (emb, cats, seqs) = tiny_inputs();
        let inputs = ZooInputs {
            embeddings: &emb,
            item_categories: &cats,
            train_sequences: &seqs,
            relaxed_groups: 4,
        };
        let config = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 6,
            dropout: 0.1,
            proj_layers: 2,
            ..ModelConfig::default()
        };
        let refs: Vec<&[usize]> = seqs[..8].iter().map(|s| s.as_slice()).collect();
        let batch = Batch::from_sequences(&refs, config.max_seq);
        for name in WARM_ROSTER {
            let mut rng = Rng64::seed_from(7);
            let mut model = build(name, &inputs, config, &mut rng);
            assert_eq!(model.name(), name);
            let mut opt = Adam::new(AdamConfig::default());
            let loss = model.train_step(&batch, &mut opt, &mut rng);
            assert!(loss.is_finite(), "{name}: loss {loss}");
            let scores = model.score(&[&[1, 2, 3][..]]);
            assert_eq!(scores.dims(), &[1, 24], "{name}");
            assert_eq!(scores.non_finite_count(), 0, "{name}");
        }
    }

    #[test]
    fn parameterized_names() {
        let (emb, cats, seqs) = tiny_inputs();
        let inputs = ZooInputs {
            embeddings: &emb,
            item_categories: &cats,
            train_sequences: &seqs,
            relaxed_groups: 4,
        };
        let config = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        };
        for name in [
            "WhitenRec@G=8",
            "WhitenRec+@G=8",
            "WhitenRec+@Concat",
            "WhitenRec+@Attn",
            "WhitenRec(T+ID)",
            "WhitenRec+(T+ID)",
            "GRU4Rec",
        ] {
            let mut rng = Rng64::seed_from(8);
            let model = build(name, &inputs, config, &mut rng);
            assert!(model.param_count() > 0, "{name}");
        }
    }

    #[test]
    fn gated_id_extension_builds_and_gates() {
        let (emb, cats, seqs) = tiny_inputs();
        let inputs = ZooInputs {
            embeddings: &emb,
            item_categories: &cats,
            train_sequences: &seqs,
            relaxed_groups: 4,
        };
        let config = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let mut rng = Rng64::seed_from(21);
        let mut model = build("WhitenRec+(GatedID)", &inputs, config, &mut rng);
        // Carries the ID table + gate on top of the ensemble head.
        let plain = build("WhitenRec+", &inputs, config, &mut rng);
        assert_eq!(
            model.param_count(),
            plain.param_count() + 24 * 16 + (16 * 16 + 16)
        );
        let refs: Vec<&[usize]> = seqs[..4].iter().map(|s| s.as_slice()).collect();
        let batch = wr_data::Batch::from_sequences(&refs, config.max_seq);
        let mut opt = wr_train::Adam::new(wr_train::AdamConfig::default());
        let loss = model.train_step(&batch, &mut opt, &mut rng);
        assert!(loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "unknown model name")]
    fn unknown_name_panics() {
        let (emb, cats, seqs) = tiny_inputs();
        let inputs = ZooInputs {
            embeddings: &emb,
            item_categories: &cats,
            train_sequences: &seqs,
            relaxed_groups: 4,
        };
        let mut rng = Rng64::seed_from(9);
        build("NotAModel", &inputs, ModelConfig::default(), &mut rng);
    }

    #[test]
    fn whitenrec_has_fewer_params_than_id_variants() {
        let (emb, cats, seqs) = tiny_inputs();
        let inputs = ZooInputs {
            embeddings: &emb,
            item_categories: &cats,
            train_sequences: &seqs,
            relaxed_groups: 4,
        };
        let config = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let mut rng = Rng64::seed_from(10);
        let wr = build("WhitenRec", &inputs, config, &mut rng);
        let wrid = build("WhitenRec(T+ID)", &inputs, config, &mut rng);
        // Table IX: the +ID variant carries the n_items×d embedding matrix.
        assert_eq!(wrid.param_count(), wr.param_count() + 24 * 16);
    }
}
