//! FDSA: feature-level deeper self-attention.
//!
//! Two parallel self-attention branches — one over item (ID) embeddings,
//! one over item *feature* (text) projections — whose final states are
//! concatenated and mapped back to `d` for prediction.

use wr_autograd::{Graph, Var};
use wr_data::Batch;
use wr_nn::{Linear, Module, Param, Session, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, SeqRecModel};

use crate::{IdTower, ItemTower, ModelConfig, TextTower};

/// FDSA model.
pub struct Fdsa {
    pub id_tower: IdTower,
    pub text_tower: TextTower,
    pub item_encoder: TransformerEncoder,
    pub feature_encoder: TransformerEncoder,
    pub merge: Linear,
    pub config: ModelConfig,
}

impl Fdsa {
    pub fn new(text_embeddings: Tensor, config: ModelConfig, rng: &mut Rng64) -> Self {
        let n_items = text_embeddings.rows();
        Fdsa {
            id_tower: IdTower::new(n_items, config.dim, rng),
            text_tower: TextTower::new(text_embeddings, config.dim, 1, rng),
            item_encoder: TransformerEncoder::new(config.transformer(), rng),
            feature_encoder: TransformerEncoder::new(config.transformer(), rng),
            merge: Linear::new(2 * config.dim, config.dim, true, rng),
            config,
        }
    }

    /// `(V_id, users)` where users come from both branches merged.
    fn forward(&self, sess: &mut Session, batch: &Batch) -> (Var, Var) {
        let g = sess.graph;
        let v_id = self.id_tower.all_items(sess);
        let v_text = self.text_tower.all_items(sess);

        let id_seq = g.gather_rows(v_id, &batch.items);
        let text_seq = g.gather_rows(v_text, &batch.items);

        let h_item =
            self.item_encoder
                .forward_hidden(sess, id_seq, batch.batch, batch.seq, &batch.lengths);
        let h_feat = self.feature_encoder.forward_hidden(
            sess,
            text_seq,
            batch.batch,
            batch.seq,
            &batch.lengths,
        );
        let last: Vec<usize> = (0..batch.batch)
            .map(|b| b * batch.seq + batch.seq - 1)
            .collect();
        let u_item = g.gather_rows(h_item, &last);
        let u_feat = g.gather_rows(h_feat, &last);
        let merged = self.merge.forward(sess, g.concat_cols(&[u_item, u_feat]));
        (v_id, merged)
    }

    /// Same merge at every loss position (training path).
    fn forward_positions(&self, sess: &mut Session, batch: &Batch) -> (Var, Var) {
        let g = sess.graph;
        let v_id = self.id_tower.all_items(sess);
        let v_text = self.text_tower.all_items(sess);
        let id_seq = g.gather_rows(v_id, &batch.items);
        let text_seq = g.gather_rows(v_text, &batch.items);
        let h_item =
            self.item_encoder
                .forward_hidden(sess, id_seq, batch.batch, batch.seq, &batch.lengths);
        let h_feat = self.feature_encoder.forward_hidden(
            sess,
            text_seq,
            batch.batch,
            batch.seq,
            &batch.lengths,
        );
        let hi = g.gather_rows(h_item, &batch.loss_positions);
        let hf = g.gather_rows(h_feat, &batch.loss_positions);
        let merged = self.merge.forward(sess, g.concat_cols(&[hi, hf]));
        (v_id, merged)
    }
}

impl SeqRecModel for Fdsa {
    fn name(&self) -> String {
        "FDSA".into()
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.id_tower.params();
        ps.extend(self.text_tower.params());
        ps.extend(self.item_encoder.params());
        ps.extend(self.feature_encoder.params());
        ps.extend(self.merge.params());
        ps
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let g = Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let (v, users) = self.forward_positions(&mut sess, batch);
        let logits = g.matmul(users, g.transpose(v));
        let loss = g.cross_entropy(logits, &batch.targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (v, users) = self.forward(&mut sess, &batch);
        let logits = g.matmul(users, g.transpose(v));
        g.value(logits)
    }

    fn item_representations(&self) -> Tensor {
        self.id_tower.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let batch = Batch::inference(contexts, self.config.max_seq);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let (_, users) = self.forward(&mut sess, &batch);
        g.value(users)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_train::AdamConfig;

    #[test]
    fn fdsa_trains_and_scores() {
        let mut rng = Rng64::seed_from(1);
        let cfg = ModelConfig {
            dim: 12,
            blocks: 1,
            max_seq: 6,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let emb = Tensor::randn(&[9, 16], &mut rng);
        let mut model = Fdsa::new(emb, cfg, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        });
        let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..5).map(|t| (u + t) % 9).collect()).collect();
        let batches: Vec<Batch> = seqs
            .chunks(8)
            .map(|c| {
                let refs: Vec<&[usize]> = c.iter().map(|s| s.as_slice()).collect();
                Batch::from_sequences(&refs, cfg.max_seq)
            })
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..12 {
            let mut sum = 0.0;
            for b in &batches {
                sum += model.train_step(b, &mut opt, &mut rng);
            }
            if e == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < first, "loss {first} -> {last}");
        let s = model.score(&[&[1, 2, 3][..]]);
        assert_eq!(s.dims(), &[1, 9]);
        assert_eq!(s.non_finite_count(), 0);
    }

    #[test]
    fn has_two_encoders_worth_of_params() {
        let mut rng = Rng64::seed_from(2);
        let cfg = ModelConfig {
            dim: 8,
            blocks: 1,
            max_seq: 6,
            ..ModelConfig::default()
        };
        let model = Fdsa::new(Tensor::randn(&[5, 8], &mut rng), cfg, &mut rng);
        // More params than a single-branch SASRec^ID of the same size.
        let id_only = {
            let mut rng = Rng64::seed_from(3);
            let t = crate::IdTower::new(5, cfg.dim, &mut rng);
            let e = TransformerEncoder::new(cfg.transformer(), &mut rng);
            t.params().iter().map(|p| p.numel()).sum::<usize>()
                + e.params().iter().map(|p| p.numel()).sum::<usize>()
        };
        assert!(model.param_count() > id_only);
    }
}
