//! End-to-end crash drill for `whitenrec train --fault-seed`: the CLI is
//! crashed mid-training by an armed wr-fault panic, restarted with the
//! same `--resume-dir`, and the recovered run's saved parameters must be
//! **byte-identical** to a run that was never interrupted.
//!
//! This drives the real binary (`CARGO_BIN_EXE_whitenrec`) three times:
//!
//! 1. fresh dir + `--fault-seed` → FAILURE exit, induced-crash message,
//!    WRTS generations left behind;
//! 2. same command again → the drill sees the generations, disarms,
//!    resumes, SUCCESS, saves a checkpoint;
//! 3. a clean run (fresh dir, no fault) saves the reference checkpoint.

use std::path::PathBuf;
use std::process::Command;

const ARGS: &[&str] = &[
    "train",
    "--model",
    "WhitenRec+",
    "--dataset",
    "Arts",
    "--scale",
    "0.05",
    "--epochs",
    "3",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wr-fault-drill-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn whitenrec(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_whitenrec"))
        .args(ARGS)
        .args(extra)
        .output()
        .expect("spawn whitenrec")
}

#[test]
fn induced_crash_then_resume_is_bit_identical_to_uninterrupted() {
    let dir = scratch("crash");
    let resume_dir = dir.join("gens");
    let crashed_ckpt = dir.join("resumed.wrck");
    let clean_ckpt = dir.join("clean.wrck");
    let resume_dir_s = resume_dir.to_string_lossy().into_owned();
    let crashed_ckpt_s = crashed_ckpt.to_string_lossy().into_owned();
    let clean_ckpt_s = clean_ckpt.to_string_lossy().into_owned();

    // Run 1: fresh dir, armed — must crash with the typed drill message.
    let run1 = whitenrec(&[
        "--resume-dir",
        &resume_dir_s,
        "--fault-seed",
        "7",
        "--save",
        &crashed_ckpt_s,
    ]);
    let stderr1 = String::from_utf8_lossy(&run1.stderr);
    assert!(
        !run1.status.success(),
        "armed run must exit FAILURE, stderr: {stderr1}"
    );
    assert!(
        stderr1.contains("induced crash at train.epoch"),
        "stderr must name the induced crash, got: {stderr1}"
    );
    assert!(
        !crashed_ckpt.exists(),
        "the crashed run must not have reached --save"
    );
    let generations = std::fs::read_dir(&resume_dir)
        .expect("resume dir exists after crash")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "wrts"))
        .count();
    assert!(
        generations >= 1,
        "the crash lands after at least one checkpointed epoch"
    );

    // Run 2: identical command — generations present, drill disarms,
    // training resumes and completes.
    let run2 = whitenrec(&[
        "--resume-dir",
        &resume_dir_s,
        "--fault-seed",
        "7",
        "--save",
        &crashed_ckpt_s,
    ]);
    let stdout2 = String::from_utf8_lossy(&run2.stdout);
    assert!(
        run2.status.success(),
        "resumed run must succeed, stderr: {}",
        String::from_utf8_lossy(&run2.stderr)
    );
    assert!(
        stdout2.contains("disarmed, resuming"),
        "the drill must report disarming, got: {stdout2}"
    );

    // Run 3: never-interrupted reference on a fresh dir.
    let fresh = scratch("clean").join("gens");
    let run3 = whitenrec(&[
        "--resume-dir",
        &fresh.to_string_lossy(),
        "--save",
        &clean_ckpt_s,
    ]);
    assert!(
        run3.status.success(),
        "clean run must succeed, stderr: {}",
        String::from_utf8_lossy(&run3.stderr)
    );

    // The acceptance bit: crash + resume converges to the exact bytes of
    // the uninterrupted run.
    let resumed = std::fs::read(&crashed_ckpt).expect("resumed checkpoint");
    let clean = std::fs::read(&clean_ckpt).expect("clean checkpoint");
    assert_eq!(
        resumed, clean,
        "resumed parameters must be byte-identical to the uninterrupted run"
    );
}
