//! Shared context for the per-table/figure experiment binaries.

use wr_data::{cold_split, warm_split, ColdSplit, DatasetKind, DatasetSpec, ReadyDataset, WarmSplit};
use wr_eval::MetricSet;
use wr_models::{zoo, ModelConfig};
use wr_obs::Telemetry;
use wr_tensor::Rng64;
use wr_train::{
    fit_observed, fit_resumable, Adam, AdamConfig, CheckpointPolicy, EpochRecord, SeqRecModel,
    TrainConfig, TrainReport,
};
use wr_nn::CheckpointError;
use wr_whiten::{observed_group_whiten, WhiteningMethod, DEFAULT_EPS};

/// A materialized dataset with its warm and cold splits, plus the shared
/// model/training configuration — one per (dataset, scale) pair.
pub struct ExperimentContext {
    pub dataset: ReadyDataset,
    pub warm: WarmSplit,
    pub cold: ColdSplit,
    pub model_config: ModelConfig,
    pub train_config: TrainConfig,
    /// Default relaxed-group count for WhitenRec+ (the paper uses small G).
    pub relaxed_groups: usize,
    /// Cap on evaluation cases (keeps single-core runs tractable; 0 = all).
    pub eval_cap: usize,
    /// Write-only run telemetry. When set, training records `train.*`
    /// metrics/spans into it and [`Self::record_whitening_health`] can
    /// snapshot the paper's anisotropy diagnostics. Never read back into
    /// results — attaching it changes nothing the context computes.
    pub telemetry: Option<Telemetry>,
}

impl ExperimentContext {
    /// Build a context at `scale` × the ~1/10-of-paper preset.
    ///
    /// `scale = 1.0` is the largest the harness defaults to on one core;
    /// tests use ≤ 0.3.
    pub fn prepare(kind: DatasetKind, scale: f32) -> Self {
        let spec = DatasetSpec::preset(kind).scaled(scale);
        Self::from_spec(spec)
    }

    pub fn from_spec(spec: DatasetSpec) -> Self {
        let dataset = spec.build();
        let warm = warm_split(&dataset.sequences);
        let cold = cold_split(&dataset.sequences, dataset.n_items(), 0.15, spec.catalog.seed ^ 0xC01D);
        ExperimentContext {
            dataset,
            warm,
            cold,
            model_config: ModelConfig::default(),
            train_config: TrainConfig {
                max_epochs: 30,
                patience: 5,
                batch_size: 256,
                max_seq: ModelConfig::default().max_seq,
                eval_batch: 256,
                seed: 77,
                eval_every: 1,
                lr_schedule: None,
            },
            relaxed_groups: 4,
            eval_cap: 2000,
            telemetry: None,
        }
    }

    /// The context's telemetry, or a fresh throwaway bundle nobody reads.
    /// Keeps the training path single: `fit_observed` always gets one.
    fn telemetry_or_default(&self) -> Telemetry {
        self.telemetry.clone().unwrap_or_default()
    }

    /// Re-run the preprocessing whitening (ZCA, the context's relaxed
    /// group count) purely to record the paper's embedding-health
    /// diagnostics — `whiten.pre.*` / `whiten.post.*` gauges (mean
    /// pairwise cosine, condition number, top-k singular mass, uniformity)
    /// plus fit/apply spans — into the attached telemetry. No-op without
    /// telemetry; the whitened output is discarded (models re-whiten
    /// inside `zoo::build`, which stays uninstrumented and bit-identical).
    pub fn record_whitening_health(&self) {
        if let Some(tel) = &self.telemetry {
            let _ = observed_group_whiten(
                &self.dataset.embeddings,
                self.relaxed_groups,
                WhiteningMethod::Zca,
                DEFAULT_EPS,
                tel,
                "whiten",
            );
        }
    }

    /// Category id per (dense) item — the attribute table for S³-Rec.
    pub fn item_categories(&self) -> Vec<usize> {
        (0..self.dataset.n_items())
            .map(|i| self.dataset.category_of(i))
            .collect()
    }

    /// Instantiate a zoo model by name against this dataset.
    pub fn build_model(&self, name: &str) -> Box<dyn SeqRecModel> {
        let cats = self.item_categories();
        let inputs = zoo::ZooInputs {
            embeddings: &self.dataset.embeddings,
            item_categories: &cats,
            train_sequences: &self.warm.train,
            relaxed_groups: self.relaxed_groups,
        };
        let mut rng = Rng64::seed_from(self.model_config.seed);
        zoo::build(name, &inputs, self.model_config, &mut rng)
    }

    /// Train `name` on the warm split and evaluate on the warm test set.
    pub fn run_warm(&self, name: &str) -> TrainedModel {
        self.run_warm_with_hook(name, |_, _| {})
    }

    /// As [`Self::run_warm`], with a per-epoch hook (Fig. 6/7 trackers).
    pub fn run_warm_with_hook(
        &self,
        name: &str,
        hook: impl FnMut(&Box<dyn SeqRecModel>, &EpochRecord),
    ) -> TrainedModel {
        let mut model = self.build_model(name);
        let mut optimizer = Adam::new(AdamConfig {
            lr: 1e-3,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        });
        let valid = cap(&self.warm.validation, self.eval_cap);
        let report = fit_observed(
            &mut model,
            &mut optimizer,
            self.warm.train.clone(),
            &valid,
            self.train_config,
            &self.telemetry_or_default(),
            hook,
        );
        let test = cap(&self.warm.test, self.eval_cap);
        let metrics = self.evaluate(model.as_ref(), &test);
        TrainedModel {
            model,
            report,
            test_metrics: metrics,
        }
    }

    /// As [`Self::run_warm`], through the crash-safe resumable loop
    /// (DESIGN.md §9): training state is checkpointed to `policy.dir` at
    /// epoch boundaries and, when a valid `WRTS` generation already lives
    /// there, the run resumes from it bit-identically to an
    /// uninterrupted run. This is the path `whitenrec train
    /// --resume-dir` exercises.
    pub fn run_warm_resumable(
        &self,
        name: &str,
        policy: &CheckpointPolicy,
    ) -> Result<TrainedModel, CheckpointError> {
        self.run_warm_resumable_hooked(name, policy, |_, _| {})
    }

    /// As [`Self::run_warm_resumable`], with a per-epoch hook. The hook
    /// runs at every epoch boundary *before* that epoch's checkpoint is
    /// persisted — which is exactly where `whitenrec train --fault-seed`
    /// injects its scheduled crash, so a crash at epoch `e` leaves
    /// generations `1..e` on disk and the restart replays epoch `e`
    /// bit-identically.
    pub fn run_warm_resumable_hooked(
        &self,
        name: &str,
        policy: &CheckpointPolicy,
        hook: impl FnMut(&Box<dyn SeqRecModel>, &EpochRecord),
    ) -> Result<TrainedModel, CheckpointError> {
        let mut model = self.build_model(name);
        let mut optimizer = Adam::new(AdamConfig {
            lr: 1e-3,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        });
        let valid = cap(&self.warm.validation, self.eval_cap);
        let report = fit_resumable(
            &mut model,
            &mut optimizer,
            self.warm.train.clone(),
            &valid,
            self.train_config,
            &self.telemetry_or_default(),
            policy,
            hook,
        )?;
        let test = cap(&self.warm.test, self.eval_cap);
        let metrics = self.evaluate(model.as_ref(), &test);
        Ok(TrainedModel {
            model,
            report,
            test_metrics: metrics,
        })
    }

    /// Train on the cold split's warm-only sequences; evaluate on cold
    /// targets (Table IV's protocol).
    pub fn run_cold(&self, name: &str) -> TrainedModel {
        let mut model = self.build_model(name);
        // Cold items are outside the training catalog: keep them out of the
        // training softmax so they aren't suppressed as perpetual
        // negatives (scoring still spans the full catalog).
        let warm: Vec<usize> = (0..self.dataset.n_items())
            .filter(|&i| !self.cold.is_cold[i])
            .collect();
        model.set_train_candidates(Some(warm));
        let mut optimizer = Adam::new(AdamConfig {
            lr: 1e-3,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        });
        let valid = cap(&self.cold.validation, self.eval_cap);
        let report = fit_observed(
            &mut model,
            &mut optimizer,
            self.cold.train.clone(),
            &valid,
            self.train_config,
            &self.telemetry_or_default(),
            |_, _| {},
        );
        let test = cap(&self.cold.test, self.eval_cap);
        let metrics = self.evaluate(model.as_ref(), &test);
        TrainedModel {
            model,
            report,
            test_metrics: metrics,
        }
    }

    /// Full-ranking evaluation with history exclusion at K ∈ {20, 50}.
    pub fn evaluate(&self, model: &dyn SeqRecModel, cases: &[wr_data::EvalCase]) -> MetricSet {
        wr_eval::evaluate_cases(cases, &[20, 50], self.train_config.eval_batch, true, |ctx| {
            model.score(ctx)
        })
    }
}

fn cap(cases: &[wr_data::EvalCase], limit: usize) -> Vec<wr_data::EvalCase> {
    if limit == 0 || cases.len() <= limit {
        cases.to_vec()
    } else {
        // Deterministic spread over users rather than a prefix.
        let stride = cases.len() as f64 / limit as f64;
        (0..limit)
            .map(|i| cases[(i as f64 * stride) as usize].clone())
            .collect()
    }
}

/// A model after training, with its training curve and test metrics.
pub struct TrainedModel {
    pub model: Box<dyn SeqRecModel>,
    pub report: TrainReport,
    pub test_metrics: MetricSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_context() -> ExperimentContext {
        let spec = DatasetSpec::tiny(DatasetKind::Arts);
        let mut ctx = ExperimentContext::from_spec(spec);
        ctx.model_config = ModelConfig {
            dim: 16,
            blocks: 1,
            max_seq: 10,
            dropout: 0.1,
            ..ModelConfig::default()
        };
        ctx.train_config.max_epochs = 2;
        ctx.train_config.max_seq = 10;
        ctx.eval_cap = 100;
        ctx
    }

    #[test]
    fn warm_pipeline_end_to_end() {
        let ctx = tiny_context();
        let trained = ctx.run_warm("WhitenRec");
        assert!(trained.test_metrics.n_cases > 0);
        assert!(trained.report.epochs.len() <= 2);
        assert!(trained.test_metrics.recall_at(50) >= trained.test_metrics.recall_at(20));
    }

    #[test]
    fn cold_pipeline_end_to_end() {
        let ctx = tiny_context();
        let trained = ctx.run_cold("WhitenRec+");
        assert!(trained.test_metrics.n_cases > 0);
    }

    #[test]
    fn telemetry_snapshot_carries_training_and_whitening_diagnostics() {
        let mut ctx = tiny_context();
        let tel = Telemetry::new();
        ctx.telemetry = Some(tel.clone());
        ctx.record_whitening_health();
        let trained = ctx.run_warm("WhitenRec");
        assert!(trained.test_metrics.n_cases > 0);

        let snap = tel.registry.snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        // The paper's direction, visible in one snapshot: whitening lowers
        // the mean pairwise cosine and the covariance condition number.
        assert!(gauge("whiten.post.mean_pairwise_cosine") < gauge("whiten.pre.mean_pairwise_cosine"));
        assert!(gauge("whiten.post.condition_number") < gauge("whiten.pre.condition_number"));
        // And training telemetry landed beside it.
        assert!(gauge("train.loss").is_finite());
        assert!(snap.histograms.iter().any(|(n, h)| n == "train.step_ms" && h.count > 0));
        assert!(tel.tracer.events().iter().any(|e| e.cat == "whiten"));
        assert!(tel.tracer.events().iter().any(|e| e.cat == "train"));
    }

    #[test]
    fn attached_telemetry_does_not_change_training() {
        let ctx_plain = tiny_context();
        let mut ctx_obs = tiny_context();
        ctx_obs.telemetry = Some(Telemetry::new());
        let a = ctx_plain.run_warm("SASRec(T)");
        let b = ctx_obs.run_warm("SASRec(T)");
        let la: Vec<u32> = a.report.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
        let lb: Vec<u32> = b.report.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
        assert_eq!(la, lb, "telemetry must be write-only");
        assert_eq!(
            a.test_metrics.recall_at(20).to_bits(),
            b.test_metrics.recall_at(20).to_bits()
        );
    }

    #[test]
    fn cap_spreads_cases() {
        let cases: Vec<wr_data::EvalCase> = (0..100)
            .map(|u| wr_data::EvalCase {
                user: u,
                context: vec![0, 1],
                target: 2,
            })
            .collect();
        let capped = cap(&cases, 10);
        assert_eq!(capped.len(), 10);
        assert_eq!(capped[0].user, 0);
        assert!(capped[9].user >= 80);
        assert_eq!(cap(&cases, 0).len(), 100);
    }
}
