//! Plain-text table rendering for the experiment harness.

/// Accumulates rows and prints an aligned ASCII table — the harness
/// binaries use this to emit each paper table/figure as text.
#[derive(Debug, Clone, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl TableWriter {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TableWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Render as an aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableWriter::new("Demo", &["Model", "R@20"]);
        t.row_strs(&["WhitenRec+", "0.1688"]);
        t.row_strs(&["SASRec", "0.1410"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("WhitenRec+  0.1688"));
        // header padded to the widest cell
        assert!(s.contains("Model     "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TableWriter::new("x", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }
}
