//! One-call pipeline: dataset → whitening → model → training → metrics.

use crate::{ExperimentContext, TrainedModel};
use wr_data::{DatasetKind, DatasetSpec};
use wr_eval::MetricSet;
use wr_models::ModelConfig;
use wr_train::TrainReport;

/// Everything [`Pipeline::run`] needs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub dataset: DatasetKind,
    /// Multiplier on the ~1/10-of-paper dataset preset.
    pub scale: f32,
    /// Zoo model name ("WhitenRec", "WhitenRec+", "SASRec(ID)", …).
    pub model: String,
    pub model_config: ModelConfig,
    pub max_epochs: usize,
    pub patience: usize,
    /// Evaluate on the cold split instead of the warm one.
    pub cold: bool,
    /// Relaxed-whitening group count for WhitenRec+.
    pub relaxed_groups: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dataset: DatasetKind::Arts,
            scale: 0.3,
            model: "WhitenRec+".into(),
            model_config: ModelConfig::default(),
            max_epochs: 30,
            patience: 5,
            cold: false,
            relaxed_groups: 4,
        }
    }
}

/// Output of a pipeline run.
pub struct PipelineResult {
    pub test_metrics: MetricSet,
    pub report: TrainReport,
    pub trained: TrainedModel,
}

/// High-level entry point used by the examples and the quickstart.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Build the dataset, train the model, evaluate, and return everything.
    pub fn run(self) -> PipelineResult {
        let spec = DatasetSpec::preset(self.config.dataset).scaled(self.config.scale);
        let mut ctx = ExperimentContext::from_spec(spec);
        ctx.model_config = self.config.model_config;
        ctx.train_config.max_epochs = self.config.max_epochs;
        ctx.train_config.patience = self.config.patience;
        ctx.train_config.max_seq = self.config.model_config.max_seq;
        ctx.relaxed_groups = self.config.relaxed_groups;
        let trained = if self.config.cold {
            ctx.run_cold(&self.config.model)
        } else {
            ctx.run_warm(&self.config.model)
        };
        PipelineResult {
            test_metrics: trained.test_metrics.clone(),
            report: trained.report.clone(),
            trained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_tiny() {
        let result = Pipeline::new(PipelineConfig {
            scale: 0.04,
            model: "SASRec(ID)".into(),
            model_config: ModelConfig {
                dim: 16,
                blocks: 1,
                max_seq: 10,
                ..ModelConfig::default()
            },
            max_epochs: 1,
            ..PipelineConfig::default()
        })
        .run();
        assert!(result.test_metrics.n_cases > 0);
        assert_eq!(result.report.model_name, "SASRec(ID)");
    }
}
