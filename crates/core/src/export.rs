//! JSON export of experiment outcomes.

use std::io::Write;
use std::path::Path;

use crate::TrainedModel;
use wr_eval::MetricSet;
use wr_tensor::{json, Json};

/// A flat, diff-friendly record of one (model, dataset, protocol) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    pub model: String,
    pub dataset: String,
    /// "warm" or "cold".
    pub protocol: String,
    pub recall_at_20: f32,
    pub recall_at_50: f32,
    pub ndcg_at_20: f32,
    pub ndcg_at_50: f32,
    pub n_eval_cases: usize,
    pub param_count: usize,
    pub epochs_trained: usize,
    pub best_epoch: usize,
    pub best_valid_ndcg: f32,
    pub seconds_per_epoch: f64,
}

impl ExperimentRecord {
    pub fn from_trained(
        trained: &TrainedModel,
        dataset: impl Into<String>,
        protocol: impl Into<String>,
    ) -> Self {
        let m: &MetricSet = &trained.test_metrics;
        ExperimentRecord {
            model: trained.report.model_name.clone(),
            dataset: dataset.into(),
            protocol: protocol.into(),
            recall_at_20: m.recall_at(20),
            recall_at_50: m.recall_at(50),
            ndcg_at_20: m.ndcg_at(20),
            ndcg_at_50: m.ndcg_at(50),
            n_eval_cases: m.n_cases,
            param_count: trained.report.param_count,
            epochs_trained: trained.report.epochs.len(),
            best_epoch: trained.report.best_epoch,
            best_valid_ndcg: trained.report.best_valid_ndcg,
            seconds_per_epoch: trained.report.seconds_per_epoch(),
        }
    }

    /// Serialize as a single-line JSON object with a stable field order.
    pub fn to_json_string(&self) -> String {
        fn str_field(out: &mut String, key: &str, value: &str) {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            Json::Str(value.to_string()).write(out);
            out.push(',');
        }
        fn num_field(out: &mut String, key: &str, value: f64) {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            json::write_f64(out, value);
            out.push(',');
        }
        let mut out = String::with_capacity(256);
        out.push('{');
        str_field(&mut out, "model", &self.model);
        str_field(&mut out, "dataset", &self.dataset);
        str_field(&mut out, "protocol", &self.protocol);
        num_field(&mut out, "recall_at_20", self.recall_at_20 as f64);
        num_field(&mut out, "recall_at_50", self.recall_at_50 as f64);
        num_field(&mut out, "ndcg_at_20", self.ndcg_at_20 as f64);
        num_field(&mut out, "ndcg_at_50", self.ndcg_at_50 as f64);
        num_field(&mut out, "n_eval_cases", self.n_eval_cases as f64);
        num_field(&mut out, "param_count", self.param_count as f64);
        num_field(&mut out, "epochs_trained", self.epochs_trained as f64);
        num_field(&mut out, "best_epoch", self.best_epoch as f64);
        num_field(&mut out, "best_valid_ndcg", self.best_valid_ndcg as f64);
        num_field(&mut out, "seconds_per_epoch", self.seconds_per_epoch);
        out.pop(); // trailing comma
        out.push('}');
        out
    }

    /// Parse a record written by [`to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let string = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("record field {key:?} missing or not a string"))
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(|f| f.as_f64())
                .ok_or_else(|| format!("record field {key:?} missing or not a number"))
        };
        let count = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(|f| f.as_usize())
                .ok_or_else(|| format!("record field {key:?} missing or not a count"))
        };
        Ok(ExperimentRecord {
            model: string("model")?,
            dataset: string("dataset")?,
            protocol: string("protocol")?,
            recall_at_20: num("recall_at_20")? as f32,
            recall_at_50: num("recall_at_50")? as f32,
            ndcg_at_20: num("ndcg_at_20")? as f32,
            ndcg_at_50: num("ndcg_at_50")? as f32,
            n_eval_cases: count("n_eval_cases")?,
            param_count: count("param_count")?,
            epochs_trained: count("epochs_trained")?,
            best_epoch: count("best_epoch")?,
            best_valid_ndcg: num("best_valid_ndcg")? as f32,
            seconds_per_epoch: num("seconds_per_epoch")?,
        })
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Append-or-create a JSON-lines results file (one record per line — easy
/// to `grep`, `jq`, or load incrementally).
pub fn append_records(
    path: impl AsRef<Path>,
    records: &[ExperimentRecord],
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for r in records {
        writeln!(file, "{}", r.to_json_string())?;
    }
    Ok(())
}

/// Load every record from a JSON-lines results file.
pub fn load_records(path: impl AsRef<Path>) -> std::io::Result<Vec<ExperimentRecord>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| ExperimentRecord::from_json_str(l).map_err(bad_data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(model: &str) -> ExperimentRecord {
        ExperimentRecord {
            model: model.into(),
            dataset: "Arts".into(),
            protocol: "warm".into(),
            recall_at_20: 0.16,
            recall_at_50: 0.24,
            ndcg_at_20: 0.08,
            ndcg_at_50: 0.09,
            n_eval_cases: 1000,
            param_count: 27072,
            epochs_trained: 10,
            best_epoch: 7,
            best_valid_ndcg: 0.081,
            seconds_per_epoch: 1.4,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let path = std::env::temp_dir().join(format!("wr_records_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        append_records(&path, &[record("WhitenRec"), record("WhitenRec+")]).unwrap();
        append_records(&path, &[record("SASRec(ID)")]).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0].model, "WhitenRec");
        assert_eq!(loaded[2].model, "SASRec(ID)");
        assert_eq!(loaded[1], record("WhitenRec+"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn record_json_is_stable_and_escaped() {
        let mut r = record("A \"quoted\" model\\name");
        r.dataset = "Office\nProducts".into();
        let line = r.to_json_string();
        assert!(!line.contains('\n'));
        let back = ExperimentRecord::from_json_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let path = std::env::temp_dir().join(format!("wr_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{not json}\n").unwrap();
        assert!(load_records(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
