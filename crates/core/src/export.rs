//! JSON export of experiment outcomes.

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::TrainedModel;
use wr_eval::MetricSet;

/// A flat, diff-friendly record of one (model, dataset, protocol) run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    pub model: String,
    pub dataset: String,
    /// "warm" or "cold".
    pub protocol: String,
    pub recall_at_20: f32,
    pub recall_at_50: f32,
    pub ndcg_at_20: f32,
    pub ndcg_at_50: f32,
    pub n_eval_cases: usize,
    pub param_count: usize,
    pub epochs_trained: usize,
    pub best_epoch: usize,
    pub best_valid_ndcg: f32,
    pub seconds_per_epoch: f64,
}

impl ExperimentRecord {
    pub fn from_trained(
        trained: &TrainedModel,
        dataset: impl Into<String>,
        protocol: impl Into<String>,
    ) -> Self {
        let m: &MetricSet = &trained.test_metrics;
        ExperimentRecord {
            model: trained.report.model_name.clone(),
            dataset: dataset.into(),
            protocol: protocol.into(),
            recall_at_20: m.recall_at(20),
            recall_at_50: m.recall_at(50),
            ndcg_at_20: m.ndcg_at(20),
            ndcg_at_50: m.ndcg_at(50),
            n_eval_cases: m.n_cases,
            param_count: trained.report.param_count,
            epochs_trained: trained.report.epochs.len(),
            best_epoch: trained.report.best_epoch,
            best_valid_ndcg: trained.report.best_valid_ndcg,
            seconds_per_epoch: trained.report.seconds_per_epoch(),
        }
    }
}

/// Append-or-create a JSON-lines results file (one record per line — easy
/// to `grep`, `jq`, or load incrementally).
pub fn append_records(
    path: impl AsRef<Path>,
    records: &[ExperimentRecord],
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for r in records {
        let line = serde_json::to_string(r)?;
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// Load every record from a JSON-lines results file.
pub fn load_records(path: impl AsRef<Path>) -> std::io::Result<Vec<ExperimentRecord>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(std::io::Error::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(model: &str) -> ExperimentRecord {
        ExperimentRecord {
            model: model.into(),
            dataset: "Arts".into(),
            protocol: "warm".into(),
            recall_at_20: 0.16,
            recall_at_50: 0.24,
            ndcg_at_20: 0.08,
            ndcg_at_50: 0.09,
            n_eval_cases: 1000,
            param_count: 27072,
            epochs_trained: 10,
            best_epoch: 7,
            best_valid_ndcg: 0.081,
            seconds_per_epoch: 1.4,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let path = std::env::temp_dir().join(format!("wr_records_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        append_records(&path, &[record("WhitenRec"), record("WhitenRec+")]).unwrap();
        append_records(&path, &[record("SASRec(ID)")]).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0].model, "WhitenRec");
        assert_eq!(loaded[2].model, "SASRec(ID)");
        assert_eq!(loaded[1], record("WhitenRec+"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_line_is_an_error() {
        let path = std::env::temp_dir().join(format!("wr_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{not json}\n").unwrap();
        assert!(load_records(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
