//! Writing a run's telemetry to disk: Chrome trace + metrics snapshot.
//!
//! Both experiment binaries (`whitenrec`, `serve-bench`) accept
//! `--trace-out` / `--metrics-out`; this is the shared exit path. Every
//! export is self-validated before it is written — the JSON is parsed back
//! with `wr_tensor::Json` and shape-checked, so a malformed trace is a
//! binary failure, not a surprise in Perfetto.

use std::path::Path;

use wr_obs::Telemetry;
use wr_tensor::Json;

/// Write `telemetry`'s trace (Chrome `trace_event` JSON, load it in
/// Perfetto / `chrome://tracing`) and/or metrics snapshot (`wr-obs/v1`
/// JSON) to the given paths. `None` paths are skipped. Each document is
/// validated before writing; any I/O or shape problem is returned as a
/// message suitable for the binary's stderr.
pub fn export_telemetry(
    telemetry: &Telemetry,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        let doc = telemetry.tracer.to_chrome_json();
        validate_trace(&doc)?;
        std::fs::write(path, doc + "\n")
            .map_err(|e| format!("writing trace {}: {e}", path.display()))?;
    }
    if let Some(path) = metrics_out {
        let doc = telemetry.registry.to_json();
        validate_metrics(&doc)?;
        std::fs::write(path, doc + "\n")
            .map_err(|e| format!("writing metrics {}: {e}", path.display()))?;
    }
    Ok(())
}

/// The trace must parse and carry a `traceEvents` array whose entries have
/// the complete-event shape (`ph:"X"`, name, microsecond ts/dur).
fn validate_trace(doc: &str) -> Result<(), String> {
    let parsed = Json::parse(doc).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("trace lacks a traceEvents array")?;
    for ev in events {
        let ok = ev.get("ph").and_then(|v| v.as_str()) == Some("X")
            && ev.get("name").and_then(|v| v.as_str()).is_some()
            && ev.get("ts").and_then(|v| v.as_f64()).is_some()
            && ev.get("dur").and_then(|v| v.as_f64()).is_some();
        if !ok {
            return Err("trace event missing ph/name/ts/dur".to_string());
        }
    }
    Ok(())
}

/// The metrics snapshot must parse and identify itself as `wr-obs/v1`
/// with the three metric sections present.
fn validate_metrics(doc: &str) -> Result<(), String> {
    let parsed = Json::parse(doc).map_err(|e| format!("metrics are not valid JSON: {e}"))?;
    if parsed.get("format").and_then(|v| v.as_str()) != Some("wr-obs/v1") {
        return Err("metrics snapshot is not wr-obs/v1".to_string());
    }
    for section in ["counters", "gauges", "histograms"] {
        if parsed.get(section).is_none() {
            return Err(format!("metrics snapshot lacks the {section} section"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wr_obs::MockClock;

    #[test]
    fn exports_parse_and_land_on_disk() {
        let tel = Telemetry::with_clock(Arc::new(MockClock::with_tick(1_000)));
        tel.registry.counter("n").inc();
        tel.registry.gauge("g").set(2.5);
        drop(tel.tracer.span("work", "test"));

        let dir = std::env::temp_dir().join(format!("wr-telemetry-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        export_telemetry(&tel, Some(&trace), Some(&metrics)).unwrap();

        let trace_doc = std::fs::read_to_string(&trace).unwrap();
        let parsed = Json::parse(&trace_doc).unwrap();
        assert_eq!(parsed.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
        let metrics_doc = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_doc.contains("\"wr-obs/v1\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_tolerance_counters_appear_in_the_metrics_export() {
        // The binaries register the recovery surface eagerly, so a clean
        // run's export carries every fault counter at zero — the chaos
        // smoke in scripts/check.sh greps these names.
        let tel = Telemetry::new();
        tel.registry.register_fault_counters();

        let dir = std::env::temp_dir().join(format!("wr-telemetry-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        export_telemetry(&tel, None, Some(&metrics)).unwrap();

        let doc = std::fs::read_to_string(&metrics).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        let counters = parsed.get("counters").expect("counters section");
        for name in wr_obs::FAULT_COUNTERS {
            assert!(
                counters.get(name).and_then(|v| v.as_f64()).is_some(),
                "metrics export must carry the {name} counter (found doc: {doc})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_telemetry_still_exports_valid_documents() {
        let tel = Telemetry::new();
        let dir = std::env::temp_dir().join(format!("wr-telemetry-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        export_telemetry(&tel, Some(&trace), None).unwrap();
        assert!(Json::parse(&std::fs::read_to_string(&trace).unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
