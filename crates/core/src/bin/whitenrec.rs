//! `whitenrec` — command-line interface to the reproduction.
//!
//! ```text
//! whitenrec analyze --dataset Arts [--scale 0.2]
//!     Anisotropy report + per-method whiteness of the dataset's embeddings.
//!
//! whitenrec train --model WhitenRec+ --dataset Arts [--scale 0.2]
//!     [--epochs 15] [--cold] [--save model.wrck] [--records out.jsonl]
//!     [--metrics-out metrics.json] [--trace-out trace.json]
//!     [--resume-dir DIR] [--checkpoint-every N] [--fault-seed S]
//!     Train one zoo model, print metrics, optionally checkpoint + export.
//!     `--resume-dir` routes the warm loop through the crash-safe
//!     resumable trainer: full training state (parameters, Adam moments,
//!     RNG position, early-stopping bookkeeping) is checkpointed to DIR
//!     every N epochs (default 1), and a re-run against the same DIR
//!     resumes from the newest valid generation, bit-identically to an
//!     uninterrupted run.
//!     `--fault-seed` arms wr-fault's chaos drill against that loop: on a
//!     *fresh* resume dir the run crashes (typed `InducedPanic`, FAILURE
//!     exit) at a mid-training epoch derived purely from the seed; the
//!     same command run again finds the surviving WRTS generations,
//!     disarms, resumes, and must finish bit-identically to a run that
//!     was never interrupted.
//!     The metrics snapshot carries per-epoch `train.*` telemetry, the
//!     runtime pool's utilization gauges, and the paper's embedding-health
//!     diagnostics for the dataset's table before and after whitening
//!     (`whiten.pre.*` / `whiten.post.*`); the trace is Chrome
//!     `trace_event` JSON — open it in Perfetto or `chrome://tracing`.
//!
//! whitenrec list-models
//!     Print every model name the zoo accepts.
//! ```
//!
//! Arguments are deliberately parsed by hand — the CLI has three verbs and
//! a flat flag set; a dependency would be heavier than the code.

use std::path::Path;
use std::process::ExitCode;

use whitenrec::data::{DatasetKind, DatasetSpec};
use whitenrec::models::zoo::WARM_ROSTER;
use whitenrec::nn::save_params;
use whitenrec::obs::Telemetry;
use whitenrec::textsim::EmbeddingReport;
use whitenrec::train::SeqRecModel;
use whitenrec::whiten::{whiteness_error, WhiteningMethod, WhiteningTransform, DEFAULT_EPS};
use whitenrec::{append_records, ExperimentContext, ExperimentRecord};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("train") => train(&args[1..]),
        Some("list-models") => {
            for name in WARM_ROSTER {
                println!("{name}");
            }
            for extra in ["GRU4Rec", "BERT4Rec", "Pop", "DIF-SR", "WhitenRec(T+ID)", "WhitenRec+(T+ID)", "WhitenRec+(GatedID)"] {
                println!("{extra}");
            }
            println!("WhitenRec@G=<n>  WhitenRec+@G=<n>  WhitenRec+@<Sum|Concat|Attn>");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: whitenrec <analyze|train|list-models> [flags]\n(see crate docs)");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Does the resume dir already hold WRTS checkpoint generations? (An
/// unreadable or missing dir counts as fresh — the trainer creates it.)
fn dir_has_generations(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.flatten().any(|e| {
                e.path()
                    .extension()
                    .is_some_and(|ext| ext == "wrts")
            })
        })
        .unwrap_or(false)
}

fn parse_dataset(args: &[String]) -> Result<DatasetKind, String> {
    match flag(args, "--dataset").as_deref() {
        Some("Arts") | None => Ok(DatasetKind::Arts),
        Some("Toys") => Ok(DatasetKind::Toys),
        Some("Tools") => Ok(DatasetKind::Tools),
        Some("Food") => Ok(DatasetKind::Food),
        Some(other) => Err(format!("unknown dataset {other} (Arts|Toys|Tools|Food)")),
    }
}

fn build_context(args: &[String]) -> Result<ExperimentContext, String> {
    let kind = parse_dataset(args)?;
    let scale: f32 = flag(args, "--scale")
        .map(|s| s.parse().map_err(|_| format!("bad --scale {s}")))
        .transpose()?
        .unwrap_or(0.2);
    let spec = DatasetSpec::preset(kind).scaled(scale).scaled_items(2.0);
    let mut ctx = ExperimentContext::from_spec(spec);
    if let Some(e) = flag(args, "--epochs") {
        ctx.train_config.max_epochs = e.parse().map_err(|_| format!("bad --epochs {e}"))?;
    }
    Ok(ctx)
}

fn analyze(args: &[String]) -> ExitCode {
    let ctx = match build_context(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let emb = &ctx.dataset.embeddings;
    println!(
        "dataset: {} | {} users, {} items, {}-dim embeddings",
        ctx.dataset.spec.kind.name(),
        ctx.dataset.n_users(),
        ctx.dataset.n_items(),
        emb.cols()
    );
    match EmbeddingReport::compute(emb, 2000, 7) {
        Ok(r) => println!("raw embeddings: {r}"),
        Err(e) => eprintln!("report failed: {e}"),
    }
    println!("\nwhiteness error after each transform (0 = perfectly white):");
    for method in WhiteningMethod::ALL {
        let z = WhiteningTransform::fit(emb, method, DEFAULT_EPS).apply(emb);
        println!("  {:<4} {:.4}", method.name(), whiteness_error(&z));
    }
    ExitCode::SUCCESS
}

fn train(args: &[String]) -> ExitCode {
    let model_name = flag(args, "--model").unwrap_or_else(|| "WhitenRec+".into());
    let mut ctx = match build_context(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let trace_out = flag(args, "--trace-out");
    let metrics_out = flag(args, "--metrics-out");
    let telemetry = if trace_out.is_some() || metrics_out.is_some() {
        let tel = Telemetry::new();
        ctx.telemetry = Some(tel.clone());
        // The paper's diagnostics: embedding health before/after whitening.
        ctx.record_whitening_health();
        Some(tel)
    } else {
        None
    };
    let cold = has_flag(args, "--cold");
    println!(
        "training {model_name} on {} ({}; {} items, {} users)…",
        ctx.dataset.spec.kind.name(),
        if cold { "cold-start" } else { "warm-start" },
        ctx.dataset.n_items(),
        ctx.dataset.n_users(),
    );
    let resume_dir = flag(args, "--resume-dir");
    if resume_dir.is_some() && cold {
        eprintln!("--resume-dir is a warm-loop feature (the cold protocol retrains from scratch)");
        return ExitCode::FAILURE;
    }
    let fault_seed = match flag(args, "--fault-seed") {
        Some(s) => match s.parse::<u64>() {
            Ok(seed) => Some(seed),
            Err(_) => {
                eprintln!("bad --fault-seed {s}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if fault_seed.is_some() && resume_dir.is_none() {
        eprintln!("--fault-seed needs --resume-dir: the drill is crash *and recover*");
        return ExitCode::FAILURE;
    }
    let trained = if cold {
        ctx.run_cold(&model_name)
    } else if let Some(dir) = resume_dir {
        let every = match flag(args, "--checkpoint-every") {
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("bad --checkpoint-every {s}");
                    return ExitCode::FAILURE;
                }
            },
            None => 1,
        };
        let policy = whitenrec::train::CheckpointPolicy {
            dir: std::path::PathBuf::from(&dir),
            every,
        };
        println!("resumable: WRTS generations in {dir} (every {every} epoch(s))");
        // The crash drill arms only on a *fresh* dir: epoch boundaries
        // persist generations before the crash fires, so the re-run sees
        // them, disarms, and recovers instead of crash-looping.
        let crash_epoch = match fault_seed {
            Some(seed) => {
                if ctx.train_config.max_epochs < 2 {
                    eprintln!("--fault-seed needs --epochs >= 2 (the crash lands mid-training)");
                    return ExitCode::FAILURE;
                }
                if dir_has_generations(&policy.dir) {
                    println!("fault drill: generations found in {dir}; disarmed, resuming");
                    None
                } else {
                    // Pure in the seed: epoch in [2, max_epochs], so at
                    // least one generation exists when the crash fires.
                    let epoch = 2 + (seed % (ctx.train_config.max_epochs as u64 - 1)) as usize;
                    println!("fault drill: armed with seed {seed}, crash at epoch {epoch}");
                    Some(epoch)
                }
            }
            None => None,
        };
        let run = || match crash_epoch {
            Some(crash_epoch) => ctx.run_warm_resumable_hooked(&model_name, &policy, |_, rec| {
                if rec.epoch + 1 == crash_epoch {
                    std::panic::panic_any(whitenrec::fault::InducedPanic {
                        site: "train.epoch".to_string(),
                        index: rec.epoch as u64,
                        attempt: 0,
                    });
                }
            }),
            None => ctx.run_warm_resumable(&model_name, &policy),
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
            Ok(Ok(t)) => t,
            Ok(Err(e)) => {
                eprintln!("resumable training failed: {e}");
                return ExitCode::FAILURE;
            }
            Err(payload) => {
                match payload.downcast::<whitenrec::fault::InducedPanic>() {
                    Ok(p) => eprintln!(
                        "induced crash at {} epoch {} — run the same command again to resume",
                        p.site,
                        p.index + 1
                    ),
                    Err(_) => eprintln!("training panicked"),
                }
                return ExitCode::FAILURE;
            }
        }
    } else {
        ctx.run_warm(&model_name)
    };
    println!(
        "done: {} epochs (best {}), {:.1}s total, {} params",
        trained.report.epochs.len(),
        trained.report.best_epoch,
        trained.report.total_seconds,
        trained.report.param_count
    );
    println!("test: {}", trained.test_metrics);

    if let Some(path) = flag(args, "--save") {
        match save_params(&path, &trained.model.params()) {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(e) => {
                eprintln!("checkpoint failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = flag(args, "--records") {
        let record = ExperimentRecord::from_trained(
            &trained,
            ctx.dataset.spec.kind.name(),
            if cold { "cold" } else { "warm" },
        );
        if let Err(e) = append_records(&path, &[record]) {
            eprintln!("record export failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("record appended to {path}");
    }
    if let Some(tel) = &telemetry {
        whitenrec::runtime::record_metrics(&tel.registry);
        let trace = trace_out.as_ref().map(Path::new);
        let metrics = metrics_out.as_ref().map(Path::new);
        match whitenrec::export_telemetry(tel, trace, metrics) {
            Ok(()) => {
                if let Some(p) = &trace_out {
                    println!("trace -> {p}");
                }
                if let Some(p) = &metrics_out {
                    println!("metrics -> {p}");
                }
            }
            Err(e) => {
                eprintln!("telemetry export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
