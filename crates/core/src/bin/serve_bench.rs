//! `serve-bench` — replay a query log through the batched serving engine.
//!
//! ```text
//! serve-bench [--model WhitenRec+] [--dataset Arts] [--scale 0.2]
//!             [--epochs 3] [--checkpoint model.wrck]
//!             [--queries 2048] [--max-len 20] [--log trace.jsonl]
//!             [--save-log trace.jsonl] [--batch 64] [--k 10]
//!             [--no-filter-seen] [--seed 17] [--out report.json]
//!             [--check-naive N] [--trace-out trace.json]
//!             [--metrics-out metrics.json] [--obs-listen 127.0.0.1:0]
//!             [--ann-nlist N] [--ann-nprobe N] [--ann-index index.wriv]
//!             [--ann-seed N]
//! ```
//!
//! The model comes from a trained checkpoint when `--checkpoint` names an
//! existing file (the architecture is rebuilt from the same dataset
//! context, then the saved parameters are restored into it). Otherwise the
//! model is trained here on the warm split — pass `--checkpoint` with a
//! fresh path to also save the result as a reusable fixture.
//!
//! The query log comes from `--log` when that file exists; otherwise a
//! seeded synthetic trace over the dataset's catalog is generated (and
//! written back to `--save-log`, or to `--log` itself, so the exact trace
//! that was replayed is always recoverable).
//!
//! The latency report — p50/p95/p99/mean latency, QPS, and a determinism
//! checksum over the served top-1 items — is printed to stdout as JSON in
//! the `wr_bench::harness` export shape, and optionally written to
//! `--out`. `--check-naive N` additionally re-serves the first `N` queries
//! through the naive one-user-at-a-time scorer and fails unless the
//! batched responses match bit-for-bit.
//!
//! `--trace-out` / `--metrics-out` attach write-only telemetry to the
//! replay: per-micro-batch spans (Chrome `trace_event` JSON — open in
//! Perfetto), `serve.*` counters and the queue-depth gauge, the
//! `serve.latency_ms` histogram, runtime pool utilization, and the
//! dataset table's pre/post-whitening embedding health
//! (`whiten.pre.*` / `whiten.post.*`). Both documents are shape-validated
//! before they are written.
//!
//! `--obs-listen ADDR` (e.g. `127.0.0.1:0`) starts the live read-only
//! telemetry endpoint (`/metrics`, `/traces/recent`, `/flight`,
//! `/health`) for the duration of the replay and prints the bound address
//! to stderr; it implies telemetry even without
//! `--trace-out`/`--metrics-out`.
//!
//! `--ann-nlist N` (nonzero) switches the engine to IVF-flat retrieval:
//! an index with `N` inverted lists is built over the frozen item table
//! (deterministic `--ann-seed`), or loaded from `--ann-index` when that
//! file exists (and saved there after a build, like `--checkpoint`).
//! `--ann-nprobe` sets the exactness dial — it defaults to `N`, the
//! full-probe setting that is bit-identical to the exact gemm scorer, so
//! `--check-naive` doubles as the ANN differential gate; dial it down
//! for sublinear scans. Probe accounting lands in the metrics export as
//! `serve.ann.lists_probed` / `serve.ann.rows_scanned`.
//!
//! Setting `WR_FAULT_SEED` to a nonzero value arms deterministic chaos:
//! a seeded `wr_fault::FaultPlan` poisons cache rows and score rows with
//! NaN and induces micro-batch panics, and the replay must finish anyway
//! via the engine's quarantine/retry/isolation machinery. The injected
//! total is bridged into the `fault.injected` counter of the metrics
//! export (`--check-naive` is skipped under chaos — degraded answers
//! intentionally differ from the fault-free reference).

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use whitenrec::data::{DatasetKind, DatasetSpec};
use whitenrec::fault::{FaultKind, FaultPlan, SharedInjector, WR_FAULT_SEED_ENV};
use whitenrec::nn::save_params;
use whitenrec::obs::Telemetry;
use whitenrec::ExperimentContext;
use wr_serve::{replay, replay_observed, QueryLog, ServeConfig, ServeEngine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: serve-bench [--model NAME] [--dataset Arts|Toys|Tools|Food]");
        eprintln!("  [--scale F] [--epochs N] [--checkpoint PATH] [--queries N]");
        eprintln!("  [--max-len N] [--log PATH] [--save-log PATH] [--batch N] [--k N]");
        eprintln!("  [--no-filter-seen] [--seed N] [--out PATH] [--check-naive N]");
        eprintln!("  [--trace-out PATH] [--metrics-out PATH] [--obs-listen ADDR]");
        eprintln!("  [--ann-nlist N] [--ann-nprobe N] [--ann-index PATH] [--ann-seed N]");
        eprintln!("  env: WR_FAULT_SEED=N  arm deterministic fault injection (0/unset = off)");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(s) => s.parse().map_err(|_| format!("bad {name} {s}")),
        None => Ok(default),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let model_name = flag(args, "--model").unwrap_or_else(|| "WhitenRec+".into());
    let kind = match flag(args, "--dataset").as_deref() {
        Some("Arts") | None => DatasetKind::Arts,
        Some("Toys") => DatasetKind::Toys,
        Some("Tools") => DatasetKind::Tools,
        Some("Food") => DatasetKind::Food,
        Some(other) => return Err(format!("unknown dataset {other} (Arts|Toys|Tools|Food)")),
    };
    let scale: f32 = parse_num(args, "--scale", 0.2)?;
    let epochs: usize = parse_num(args, "--epochs", 3)?;
    let n_queries: usize = parse_num(args, "--queries", 2048)?;
    let seed: u64 = parse_num(args, "--seed", 17)?;
    let batch: usize = parse_num(args, "--batch", 64)?;
    let k: usize = parse_num(args, "--k", 10)?;

    let spec = DatasetSpec::preset(kind).scaled(scale).scaled_items(2.0);
    let mut ctx = ExperimentContext::from_spec(spec);
    ctx.train_config.max_epochs = epochs;
    let trace_out = flag(args, "--trace-out");
    let metrics_out = flag(args, "--metrics-out");
    let obs_listen = flag(args, "--obs-listen");
    let telemetry = if trace_out.is_some() || metrics_out.is_some() || obs_listen.is_some() {
        let tel = Telemetry::new();
        // The full fault-tolerance surface is present (at zero) in every
        // export, so a clean run and a chaos run have the same shape.
        tel.registry.register_fault_counters();
        ctx.telemetry = Some(tel.clone());
        // Embedding health of the dataset table, raw vs whitened — the
        // paper's diagnostics, exported beside the serving metrics.
        ctx.record_whitening_health();
        Some(tel)
    } else {
        None
    };
    let obs_server = match (&obs_listen, &telemetry) {
        (Some(addr), Some(tel)) => {
            let server = whitenrec::obs::serve_http(addr, tel).map_err(|e| e.to_string())?;
            eprintln!("obs: live telemetry endpoint on http://{}", server.addr());
            Some(server)
        }
        _ => None,
    };
    // Chaos mode: a nonzero WR_FAULT_SEED arms a deterministic fault
    // schedule over the serving path (cache poison, score poison, induced
    // batch panics). The replay must survive it; the injected/recovered
    // totals land in the metrics export.
    let fault_plan: Option<Arc<FaultPlan>> = FaultPlan::from_env().map(Arc::new);
    if let Some(plan) = &fault_plan {
        eprintln!(
            "chaos: fault injection armed ({WR_FAULT_SEED_ENV}={}, rates {:?})",
            plan.seed(),
            plan.rates()
        );
    }
    let max_len: usize = parse_num(args, "--max-len", ctx.model_config.max_seq)?;

    let cfg = ServeConfig {
        k,
        max_batch: batch,
        max_seq: ctx.model_config.max_seq,
        filter_seen: !has_flag(args, "--no-filter-seen"),
    };

    // Model: restore the checkpoint fixture when it exists, else train one
    // here (and save it when a checkpoint path was named).
    let checkpoint = flag(args, "--checkpoint");
    let restorable = checkpoint
        .as_deref()
        .is_some_and(|p| std::path::Path::new(p).is_file());
    let engine = if restorable {
        let path = checkpoint.clone().unwrap_or_default();
        eprintln!("restoring {model_name} from {path}…");
        let model = ctx.build_model(&model_name);
        ServeEngine::from_checkpoint(model, &path, cfg).map_err(|e| e.to_string())?
    } else {
        eprintln!(
            "training {model_name} on {} (scale {scale}, {} epochs)…",
            ctx.dataset.spec.kind.name(),
            ctx.train_config.max_epochs
        );
        let trained = ctx.run_warm(&model_name);
        eprintln!("trained: test {}", trained.test_metrics);
        if let Some(path) = &checkpoint {
            save_params(path, &trained.model.params()).map_err(|e| e.to_string())?;
            eprintln!("checkpoint fixture written to {path}");
        }
        ServeEngine::new(trained.model, cfg)
    };
    let engine = match &telemetry {
        Some(tel) => engine.with_telemetry(tel.clone()),
        None => engine,
    };
    let engine = match &fault_plan {
        Some(plan) => engine.with_faults(plan.clone() as SharedInjector),
        None => engine,
    };

    // IVF retrieval: --ann-nlist arms it; the index is loaded from
    // --ann-index when that file exists, else built here (deterministic
    // seed) and saved there so later runs replay against the same index.
    let ann_nlist: usize = parse_num(args, "--ann-nlist", 0)?;
    let engine = if ann_nlist > 0 {
        let nprobe: usize = parse_num(args, "--ann-nprobe", ann_nlist)?;
        let ann_seed: u64 = parse_num(args, "--ann-seed", 7)?;
        let index_path = flag(args, "--ann-index");
        let index = match &index_path {
            Some(p) if std::path::Path::new(p).is_file() => {
                let loaded = wr_serve::IvfIndex::load(p, engine.cache().items())
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "ann: loaded WRIV index from {p} ({} lists, seed {})",
                    loaded.nlist(),
                    loaded.build_seed()
                );
                loaded
            }
            _ => {
                let built = engine
                    .cache()
                    .build_ivf(ann_nlist, ann_seed)
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "ann: built {} lists over {} items (seed {ann_seed}, max list {})",
                    built.nlist(),
                    built.n_items(),
                    built.max_list_len()
                );
                if let Some(p) = &index_path {
                    built.save(p).map_err(|e| e.to_string())?;
                    eprintln!("ann: index written to {p}");
                }
                built
            }
        };
        eprintln!(
            "ann: scoring via IVF, nprobe {} / {} lists",
            nprobe.clamp(1, index.nlist()),
            index.nlist()
        );
        engine.with_ann(Arc::new(index), nprobe)
    } else {
        engine
    };
    if !engine.quarantined_items().is_empty() {
        eprintln!(
            "chaos: {} poisoned cache rows quarantined at load",
            engine.quarantined_items().len()
        );
    }

    // Query log: load a recorded trace when it exists, else generate a
    // seeded synthetic one over this catalog.
    let log_path = flag(args, "--log");
    let log = match &log_path {
        Some(p) if std::path::Path::new(p).is_file() => {
            let loaded = QueryLog::load(p).map_err(|e| e.to_string())?;
            eprintln!("replaying {} recorded queries from {p}", loaded.len());
            loaded
        }
        _ => {
            let synth = QueryLog::synthetic(n_queries, engine.n_items(), max_len, seed);
            eprintln!("generated {} synthetic queries (seed {seed})", synth.len());
            synth
        }
    };
    if let Some(p) = flag(args, "--save-log").or(log_path) {
        if !std::path::Path::new(&p).is_file() {
            log.save(&p).map_err(|e| e.to_string())?;
            eprintln!("query log written to {p}");
        }
    }

    let (responses, report) = match &telemetry {
        Some(tel) => replay_observed(&engine, &log, tel),
        None => replay(&engine, &log),
    };

    let check_n: usize = parse_num(args, "--check-naive", 0)?;
    if check_n > 0 && fault_plan.is_some() {
        // The naive scorer is a fault-free reference; under an armed
        // schedule the batched path intentionally degrades, so the
        // differential would report injected faults as bugs.
        eprintln!("chaos: skipping --check-naive (fault injection is armed)");
    } else if check_n > 0 {
        let n = check_n.min(log.len());
        let naive = engine.serve_naive(&log.queries[..n]);
        if naive != responses[..n] {
            return Err(format!(
                "differential check failed: batched and naive top-k disagree within the first {n} queries"
            ));
        }
        eprintln!("differential check: batched == naive on {n} queries");
    }

    eprintln!(
        "{} queries in {} batches | {:.1} qps | p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  mean {:.3} ms | top1 checksum {:016x}",
        report.n_queries,
        report.n_batches,
        report.qps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.mean_ms,
        report.top1_checksum
    );
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, json + "\n").map_err(|e| e.to_string())?;
        eprintln!("report -> {path}");
    }
    if let Some(plan) = &fault_plan {
        eprintln!(
            "chaos: {} faults injected (io {}, truncation {}, bit_flip {}, nan {}, panic {})",
            plan.injected_total(),
            plan.injected(FaultKind::IoError),
            plan.injected(FaultKind::Truncation),
            plan.injected(FaultKind::BitFlip),
            plan.injected(FaultKind::NanPoison),
            plan.injected(FaultKind::Panic),
        );
        if let Some(tel) = &telemetry {
            tel.registry
                .counter("fault.injected")
                .add(plan.injected_total());
        }
        if let Some(path) = flag(args, "--fault-log-out") {
            // The schedule as a replayable artifact: CRC-sealed
            // `wr-faultlog/v1` JSONL, written atomically.
            whitenrec::fault::save_fault_log(Path::new(&path), plan.seed(), &plan.records())
                .map_err(|e| format!("fault log export failed: {e}"))?;
            eprintln!("fault log -> {path} ({} records)", plan.records().len());
        }
    }
    if let Some(tel) = &telemetry {
        whitenrec::runtime::record_metrics(&tel.registry);
        whitenrec::export_telemetry(
            tel,
            trace_out.as_ref().map(Path::new),
            metrics_out.as_ref().map(Path::new),
        )?;
        if let Some(p) = &trace_out {
            eprintln!("trace -> {p}");
        }
        if let Some(p) = &metrics_out {
            eprintln!("metrics -> {p}");
        }
    }
    drop(obs_server);
    Ok(())
}
