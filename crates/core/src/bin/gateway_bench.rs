//! `gateway-bench` — replay a Zipf-skewed query trace through the sharded
//! serving gateway.
//!
//! ```text
//! gateway-bench [--model WhitenRec+] [--dataset Arts] [--scale 0.2]
//!               [--epochs 3] [--checkpoint model.wrck]
//!               [--shards 2] [--mode partitioned|replicated]
//!               [--queries 2048] [--users 1000000] [--zipf-alpha 1.1]
//!               [--max-len 20] [--log trace.jsonl] [--save-log trace.jsonl]
//!               [--batch 64] [--k 10] [--no-filter-seen] [--seed 17]
//!               [--out report.json] [--check-single N]
//!               [--poison-shard IDX] [--trace-out trace.json]
//!               [--metrics-out metrics.json]
//!               [--obs-listen 127.0.0.1:0] [--obs-dump-dir DIR]
//!               [--ann-nlist N] [--ann-nprobe N] [--ann-seed N]
//! ```
//!
//! The model fixture follows `serve-bench`: restored from `--checkpoint`
//! when that file exists, trained here otherwise (and saved back when a
//! path was named), so the two binaries can share one checkpoint and be
//! compared checksum-to-checksum by `scripts/check.sh`.
//!
//! The trace is Zipf user-skewed: `--users` distinct users (default one
//! million) with request frequency ∝ rank^(-alpha), each user replaying a
//! deterministic session history — the head of the distribution hits the
//! gateway over and over, the tail is visited once. `--zipf-alpha 0` is a
//! typed error (the generator rejects degenerate exponents). A recorded
//! `--log` takes precedence, as in `serve-bench`.
//!
//! `--check-single N` re-serves the first `N` queries through a plain
//! single-`ServeEngine` over a parameter-copied twin of the same model
//! and fails unless the sharded responses match bit for bit — the
//! in-binary differential gate. It is skipped under chaos (degraded
//! answers intentionally differ) and under reduced-probe ANN (sublinear
//! retrieval is allowed to differ; at full probe it must not).
//!
//! `--ann-nlist N` switches every shard to IVF retrieval over its own
//! window (one index per shard, same `(nlist, seed)`); `--ann-nprobe`
//! defaults to `N`, the full-probe setting that keeps the gateway
//! bit-identical to the exact scorer.
//!
//! Setting `WR_FAULT_SEED` to a nonzero value arms deterministic chaos on
//! **one** shard (`--poison-shard`, default 0): cache rows poisoned at
//! load, score rows poisoned, micro-batches panicked. The replay must
//! finish anyway — the victim shard degrades the responses it loses while
//! the surviving shards keep answering bit-identically, and the degraded
//! count lands in the report.
//!
//! `--trace-out` / `--metrics-out` attach write-only telemetry: per-batch
//! and per-shard spans, `gateway.*` + `serve.*` counters, the
//! `gateway.latency_ms` histogram, pool utilization, and whitening health.
//!
//! `--obs-listen ADDR` (e.g. `127.0.0.1:0`) additionally starts the live
//! read-only telemetry endpoint (`/metrics`, `/traces/recent`, `/flight`,
//! `/health`) for the duration of the replay; the bound address is printed
//! to stderr. `--obs-dump-dir DIR` arms the flight recorder's incident
//! dump into `DIR/flight.dump.jsonl` and — when the endpoint is up —
//! self-scrapes `/metrics` and `/flight` into `DIR/metrics.scrape.json` /
//! `DIR/flight.scrape.jsonl` after the replay, which is how the
//! `scripts/check.sh` smoke asserts the live surface end to end. Either
//! flag implies telemetry even without `--trace-out`/`--metrics-out`.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use whitenrec::data::{DatasetKind, DatasetSpec};
use whitenrec::fault::{FaultKind, FaultPlan, KillAfter, SharedInjector, WR_FAULT_SEED_ENV};
use whitenrec::nn::save_params;
use whitenrec::obs::Telemetry;
use whitenrec::ExperimentContext;
use wr_gateway::{replay_gateway, Gateway, GatewayConfig};
use wr_serve::{QueryLog, ServeConfig, ServeEngine};
use wr_train::SeqRecModel;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: gateway-bench [--model NAME] [--dataset Arts|Toys|Tools|Food]");
        eprintln!("  [--scale F] [--epochs N] [--checkpoint PATH]");
        eprintln!("  [--shards N] [--replicas R] [--mode partitioned|replicated]");
        eprintln!("  [--queries N] [--users N] [--zipf-alpha F] [--max-len N]");
        eprintln!("  [--log PATH] [--save-log PATH] [--batch N] [--k N]");
        eprintln!("  [--no-filter-seen] [--seed N] [--out PATH] [--check-single N]");
        eprintln!("  [--poison-shard IDX] [--poison-replica IDX]");
        eprintln!("  [--hedge-ns N] [--deadline-ns N] [--router-seed N]");
        eprintln!("  [--trace-out PATH] [--metrics-out PATH] [--fault-log-out PATH]");
        eprintln!("  [--obs-listen ADDR] [--obs-dump-dir DIR]");
        eprintln!("  [--ann-nlist N] [--ann-nprobe N] [--ann-seed N]");
        eprintln!("  env: WR_FAULT_SEED=N  arm deterministic chaos on one shard (0/unset = off)");
        eprintln!("  --poison-replica kills that replica of EVERY set (KillAfter, permanent);");
        eprintln!("  with --replicas >= 2 the breakers route around it: zero degraded answers,");
        eprintln!("  checksum identical to the healthy run, failovers counted.");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gateway-bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(s) => s.parse().map_err(|_| format!("bad {name} {s}")),
        None => Ok(default),
    }
}

/// Copy `src`'s trainable parameters into a freshly built twin. The twin
/// shares no storage with `src` but is bit-identical: same architecture
/// (built from the same dataset context), same parameter order, values
/// copied tensor by tensor.
fn twin_model(
    ctx: &ExperimentContext,
    name: &str,
    src: &dyn SeqRecModel,
) -> Result<Box<dyn SeqRecModel>, String> {
    let dst = ctx.build_model(name);
    let (sp, dp) = (src.params(), dst.params());
    if sp.len() != dp.len() {
        return Err(format!(
            "twin model parameter count mismatch: {} vs {}",
            sp.len(),
            dp.len()
        ));
    }
    for (d, s) in dp.iter().zip(&sp) {
        d.set(s.get());
    }
    Ok(dst)
}

fn run(args: &[String]) -> Result<(), String> {
    let model_name = flag(args, "--model").unwrap_or_else(|| "WhitenRec+".into());
    let kind = match flag(args, "--dataset").as_deref() {
        Some("Arts") | None => DatasetKind::Arts,
        Some("Toys") => DatasetKind::Toys,
        Some("Tools") => DatasetKind::Tools,
        Some("Food") => DatasetKind::Food,
        Some(other) => return Err(format!("unknown dataset {other} (Arts|Toys|Tools|Food)")),
    };
    let scale: f32 = parse_num(args, "--scale", 0.2)?;
    let epochs: usize = parse_num(args, "--epochs", 3)?;
    let n_queries: usize = parse_num(args, "--queries", 2048)?;
    let n_users: usize = parse_num(args, "--users", 1_000_000)?;
    let zipf_alpha: f64 = parse_num(args, "--zipf-alpha", 1.1)?;
    let seed: u64 = parse_num(args, "--seed", 17)?;
    let batch: usize = parse_num(args, "--batch", 64)?;
    let k: usize = parse_num(args, "--k", 10)?;
    let n_shards: usize = parse_num(args, "--shards", 2)?;
    let n_replicas: usize = parse_num(args, "--replicas", 1)?;
    if n_replicas == 0 {
        return Err("--replicas must be >= 1".into());
    }
    let hedge_ns: u64 = parse_num(args, "--hedge-ns", 0)?;
    let deadline_ns: u64 = parse_num(args, "--deadline-ns", 0)?;
    let router_seed: u64 = parse_num(args, "--router-seed", GatewayConfig::default().router_seed)?;
    let poison_replica: Option<usize> = match flag(args, "--poison-replica") {
        Some(s) => Some(s.parse().map_err(|_| format!("bad --poison-replica {s}"))?),
        None => None,
    };
    if let Some(r) = poison_replica {
        if n_replicas < 2 {
            return Err(
                "--poison-replica needs --replicas >= 2 (a lone replica has no failover target)"
                    .into(),
            );
        }
        if r >= n_replicas {
            return Err(format!(
                "--poison-replica {r} out of range for {n_replicas} replicas"
            ));
        }
    }
    let replicated = match flag(args, "--mode").as_deref() {
        Some("partitioned") | None => false,
        Some("replicated") => true,
        Some(other) => return Err(format!("unknown mode {other} (partitioned|replicated)")),
    };

    let spec = DatasetSpec::preset(kind).scaled(scale).scaled_items(2.0);
    let mut ctx = ExperimentContext::from_spec(spec);
    ctx.train_config.max_epochs = epochs;
    let trace_out = flag(args, "--trace-out");
    let metrics_out = flag(args, "--metrics-out");
    let obs_listen = flag(args, "--obs-listen");
    let obs_dump_dir = flag(args, "--obs-dump-dir");
    let telemetry = if trace_out.is_some()
        || metrics_out.is_some()
        || obs_listen.is_some()
        || obs_dump_dir.is_some()
    {
        let tel = Telemetry::new();
        tel.registry.register_fault_counters();
        ctx.telemetry = Some(tel.clone());
        ctx.record_whitening_health();
        Some(tel)
    } else {
        None
    };
    if let (Some(dir), Some(tel)) = (&obs_dump_dir, &telemetry) {
        std::fs::create_dir_all(dir).map_err(|e| format!("--obs-dump-dir {dir}: {e}"))?;
        let dump = Path::new(dir).join("flight.dump.jsonl");
        tel.flight.arm_dump(&dump);
        eprintln!("obs: flight recorder armed -> {}", dump.display());
    }
    let obs_server = match (&obs_listen, &telemetry) {
        (Some(addr), Some(tel)) => {
            let server = whitenrec::obs::serve_http(addr, tel).map_err(|e| e.to_string())?;
            eprintln!("obs: live telemetry endpoint on http://{}", server.addr());
            Some(server)
        }
        _ => None,
    };
    let fault_plan: Option<Arc<FaultPlan>> = FaultPlan::from_env().map(Arc::new);
    let poison_shard: usize = parse_num(args, "--poison-shard", 0)?;
    if let Some(plan) = &fault_plan {
        eprintln!(
            "chaos: fault injection armed on shard {poison_shard} ({WR_FAULT_SEED_ENV}={}, rates {:?})",
            plan.seed(),
            plan.rates()
        );
        if poison_shard >= n_shards {
            return Err(format!(
                "--poison-shard {poison_shard} out of range for {n_shards} shards"
            ));
        }
    }
    let max_len: usize = parse_num(args, "--max-len", ctx.model_config.max_seq)?;

    let serve_cfg = ServeConfig {
        k,
        max_batch: batch,
        max_seq: ctx.model_config.max_seq,
        filter_seen: !has_flag(args, "--no-filter-seen"),
    };
    let gateway_cfg = GatewayConfig {
        serve: serve_cfg,
        replicas: n_replicas,
        hedge_threshold_ns: hedge_ns,
        deadline_ns,
        router_seed,
        ..GatewayConfig::default()
    };

    // Model fixture, shared with serve-bench: restore when the checkpoint
    // exists, train (and save) otherwise.
    let checkpoint = flag(args, "--checkpoint");
    let restorable = checkpoint
        .as_deref()
        .is_some_and(|p| std::path::Path::new(p).is_file());
    let model: Box<dyn SeqRecModel> = if restorable {
        let path = checkpoint.clone().unwrap_or_default();
        eprintln!("restoring {model_name} from {path}…");
        let m = ctx.build_model(&model_name);
        let loaded = whitenrec::nn::load_params(&path).map_err(|e| e.to_string())?;
        whitenrec::nn::restore_params(&m.params(), &loaded).map_err(|e| e.to_string())?;
        m
    } else {
        eprintln!(
            "training {model_name} on {} (scale {scale}, {} epochs)…",
            ctx.dataset.spec.kind.name(),
            ctx.train_config.max_epochs
        );
        let trained = ctx.run_warm(&model_name);
        eprintln!("trained: test {}", trained.test_metrics);
        if let Some(path) = &checkpoint {
            save_params(path, &trained.model.params()).map_err(|e| e.to_string())?;
            eprintln!("checkpoint fixture written to {path}");
        }
        trained.model
    };

    // The differential twin must be cloned before the gateway consumes the
    // model.
    let check_n: usize = parse_num(args, "--check-single", 0)?;
    let reference_model = if check_n > 0 {
        Some(twin_model(&ctx, &model_name, model.as_ref())?)
    } else {
        None
    };

    let gateway = if replicated {
        Gateway::replicated(model, n_shards, gateway_cfg)
    } else {
        Gateway::partitioned(model, n_shards, gateway_cfg)
    }
    .map_err(|e| e.to_string())?;
    eprintln!(
        "gateway: {} shards x {} replica(s) ({}), windows {:?}",
        gateway.plan().n_shards(),
        n_replicas,
        if replicated { "replicated" } else { "partitioned" },
        gateway.plan().ranges()
    );
    let gateway = match &telemetry {
        Some(tel) => gateway.with_telemetry(tel.clone()),
        None => gateway,
    };
    let gateway = match &fault_plan {
        Some(plan) => gateway.with_shard_faults(poison_shard, plan.clone() as SharedInjector),
        None => gateway,
    };
    let gateway = match poison_replica {
        Some(r) => {
            eprintln!(
                "chaos: replica {r} of every set permanently killed (KillAfter on serve.row)"
            );
            let mut gw = gateway;
            for s in 0..gw.plan().n_shards() {
                gw = gw.with_replica_faults(s, r, Arc::new(KillAfter::serve_rows()));
            }
            gw
        }
        None => gateway,
    };
    let ann_nlist: usize = parse_num(args, "--ann-nlist", 0)?;
    let mut ann_full_probe = true;
    let gateway = if ann_nlist > 0 {
        let nprobe: usize = parse_num(args, "--ann-nprobe", ann_nlist)?;
        let ann_seed: u64 = parse_num(args, "--ann-seed", 7)?;
        ann_full_probe = nprobe >= ann_nlist;
        eprintln!(
            "ann: per-shard IVF, {ann_nlist} lists each, nprobe {} (seed {ann_seed})",
            nprobe.clamp(1, ann_nlist)
        );
        gateway
            .with_ann(ann_nlist, nprobe, ann_seed)
            .map_err(|e| e.to_string())?
    } else {
        gateway
    };
    let quarantined: usize = gateway
        .shards()
        .iter()
        .map(|s| s.quarantined_items().len())
        .sum();
    if quarantined > 0 {
        eprintln!("chaos: {quarantined} poisoned cache rows quarantined at load");
    }

    // Trace: recorded log when present, else the seeded Zipf generator —
    // a million-user head-heavy distribution by default.
    let log_path = flag(args, "--log");
    let log = match &log_path {
        Some(p) if std::path::Path::new(p).is_file() => {
            let loaded = QueryLog::load(p).map_err(|e| e.to_string())?;
            eprintln!("replaying {} recorded queries from {p}", loaded.len());
            loaded
        }
        _ => {
            let synth = QueryLog::synthetic_zipf(
                n_queries,
                n_users,
                gateway.n_items(),
                max_len,
                zipf_alpha,
                seed,
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "generated {} Zipf queries over {n_users} users (alpha {zipf_alpha}, seed {seed})",
                synth.len()
            );
            synth
        }
    };
    if let Some(p) = flag(args, "--save-log").or(log_path) {
        if !std::path::Path::new(&p).is_file() {
            log.save(&p).map_err(|e| e.to_string())?;
            eprintln!("query log written to {p}");
        }
    }

    let own_tel;
    let replay_tel = match &telemetry {
        Some(tel) => tel,
        None => {
            own_tel = Telemetry::new();
            &own_tel
        }
    };
    let (responses, report) = replay_gateway(&gateway, &log, replay_tel);

    if check_n > 0 && fault_plan.is_some() {
        eprintln!("chaos: skipping --check-single (fault injection is armed)");
    } else if check_n > 0 && !ann_full_probe {
        eprintln!("ann: skipping --check-single (reduced probe is allowed to differ)");
    } else if let Some(reference) = reference_model {
        let n = check_n.min(log.len());
        let engine = ServeEngine::new(reference, serve_cfg);
        let single = engine.serve(&log.queries[..n]);
        for (i, (g, s)) in responses.iter().zip(&single).enumerate() {
            let same = g.id == s.id
                && g.items.len() == s.items.len()
                && g
                    .items
                    .iter()
                    .zip(&s.items)
                    .all(|(a, b)| a.item == b.item && a.score.to_bits() == b.score.to_bits());
            if !same {
                return Err(format!(
                    "differential check failed: sharded and single-engine top-k disagree at query {i}"
                ));
            }
        }
        eprintln!("differential check: sharded == single-engine on {n} queries");
    }

    eprintln!(
        "{} queries in {} batches over {} shards | {:.1} qps | p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms | {} degraded | top1 checksum {:016x}",
        report.n_queries,
        report.n_batches,
        report.n_shards,
        report.qps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.n_degraded,
        report.top1_checksum
    );
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, json + "\n").map_err(|e| e.to_string())?;
        eprintln!("report -> {path}");
    }
    if let Some(plan) = &fault_plan {
        eprintln!(
            "chaos: {} faults injected (io {}, truncation {}, bit_flip {}, nan {}, panic {})",
            plan.injected_total(),
            plan.injected(FaultKind::IoError),
            plan.injected(FaultKind::Truncation),
            plan.injected(FaultKind::BitFlip),
            plan.injected(FaultKind::NanPoison),
            plan.injected(FaultKind::Panic),
        );
        if let Some(tel) = &telemetry {
            tel.registry
                .counter("fault.injected")
                .add(plan.injected_total());
        }
        if let Some(path) = flag(args, "--fault-log-out") {
            // The schedule as a replayable artifact: CRC-sealed
            // `wr-faultlog/v1` JSONL, written atomically.
            whitenrec::fault::save_fault_log(Path::new(&path), plan.seed(), &plan.records())
                .map_err(|e| format!("fault log export failed: {e}"))?;
            eprintln!("fault log -> {path} ({} records)", plan.records().len());
        }
    }
    if n_replicas > 1 {
        // The breaker trajectory snapshot: one state label per replica,
        // per set. Under --poison-replica the victims must read "open".
        eprintln!("replicas: breaker states {:?}", gateway.breaker_states());
        if let Some(tel) = &telemetry {
            let snap = tel.registry.snapshot();
            let counter = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(n, _)| n.as_str() == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            eprintln!(
                "replicas: {} failovers, {} breakers opened, {} hedges ({} mismatches)",
                counter("gateway.failovers"),
                counter("gateway.breaker_open"),
                counter("gateway.hedges"),
                counter("gateway.hedge_mismatches"),
            );
        }
    }
    if let Some(tel) = &telemetry {
        whitenrec::runtime::record_metrics(&tel.registry);
        whitenrec::export_telemetry(
            tel,
            trace_out.as_ref().map(Path::new),
            metrics_out.as_ref().map(Path::new),
        )?;
        if let Some(p) = &trace_out {
            eprintln!("trace -> {p}");
        }
        if let Some(p) = &metrics_out {
            eprintln!("metrics -> {p}");
        }
    }
    // Self-scrape the live endpoint after the replay so the smoke gate
    // exercises the exact HTTP surface an external scraper would see.
    if let Some(server) = &obs_server {
        if let Some(dir) = &obs_dump_dir {
            let addr = server.addr().to_string();
            for (route, file) in [
                ("/metrics", "metrics.scrape.json"),
                ("/flight", "flight.scrape.jsonl"),
            ] {
                let body = whitenrec::obs::http_get(&addr, route)
                    .map_err(|e| format!("scrape {route}: {e}"))?;
                let path = Path::new(dir).join(file);
                std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
            }
            eprintln!("obs: scraped /metrics and /flight into {dir}");
        }
    }
    drop(obs_server);
    Ok(())
}
