//! # WhitenRec — whitening pre-trained text embeddings for sequential recommendation
//!
//! Rust reproduction of *"Are ID Embeddings Necessary? Whitening
//! Pre-trained Text Embeddings for Effective Sequential Recommendation"*
//! (ICDE 2024), built from scratch: dense tensors, reverse-mode autodiff, a
//! Transformer/GRU model zoo, whitening transforms, a synthetic
//! text-embedding + behaviour simulator, and a full evaluation harness.
//!
//! ## Quick start
//!
//! ```no_run
//! use whitenrec::{Pipeline, PipelineConfig};
//! use whitenrec::data::DatasetKind;
//!
//! let result = Pipeline::new(PipelineConfig {
//!     dataset: DatasetKind::Arts,
//!     scale: 0.1,
//!     model: "WhitenRec+".into(),
//!     ..PipelineConfig::default()
//! })
//! .run();
//! println!("test: {}", result.test_metrics);
//! ```
//!
//! ## Crate map
//!
//! | module | re-exports | role |
//! |---|---|---|
//! | [`tensor`] | `wr-tensor` | dense f32 tensors, matmul, RNG |
//! | [`autograd`] | `wr-autograd` | tape-based reverse-mode AD |
//! | [`linalg`] | `wr-linalg` | eigen/Cholesky/SVD/pinv |
//! | [`nn`] | `wr-nn` | layers: attention, Transformer, GRU, MoE |
//! | [`whiten`] | `wr-whiten` | ZCA/PCA/CD/BN, group whitening, flow |
//! | [`textsim`] | `wr-textsim` | simulated pre-trained text encoder |
//! | [`data`] | `wr-data` | behaviour simulator, splits, batching |
//! | [`models`] | `wr-models` | the Table III model zoo |
//! | [`train`] | `wr-train` | Adam, training loop, early stopping |
//! | [`eval`] | `wr-eval` | Recall/NDCG, uniformity, conditioning |
//! | [`obs`] | `wr-obs` | metrics registry, spans, embedding health |

pub use wr_autograd as autograd;
pub use wr_data as data;
pub use wr_eval as eval;
pub use wr_fault as fault;
pub use wr_linalg as linalg;
pub use wr_models as models;
pub use wr_nn as nn;
pub use wr_obs as obs;
pub use wr_runtime as runtime;
pub use wr_tensor as tensor;
pub use wr_textsim as textsim;
pub use wr_train as train;
pub use wr_whiten as whiten;

mod experiment;
mod export;
mod pipeline;
mod table;
mod telemetry_export;

pub use experiment::{ExperimentContext, TrainedModel};
pub use export::{append_records, load_records, ExperimentRecord};
pub use pipeline::{Pipeline, PipelineConfig, PipelineResult};
pub use table::TableWriter;
pub use telemetry_export::export_telemetry;
