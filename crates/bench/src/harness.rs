//! Minimal wall-clock benchmark harness.
//!
//! The offline workspace carries no criterion; this keeps the same shape —
//! named benches, auto-calibrated iteration counts, mean/min reporting —
//! in ~100 lines, plus JSON export so runs can be checked in and diffed
//! (`BENCH_pr1.json` at the repo root is produced this way).
//!
//! Timing methodology: one warm-up call sizes the iteration count so each
//! bench runs for roughly [`target_time`]; every iteration is timed
//! individually and the *minimum* is the headline number (least-noise
//! estimator on a shared machine), with the mean reported alongside.

use std::time::{Duration, Instant};

/// Re-export so benches can guard dead-code elimination without a dep.
pub use std::hint::black_box;

/// One measured bench.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    pub mean_ns: f64,
    pub min_ns: f64,
    /// Extra numeric fields appended to this bench's JSON object
    /// (utilization counters, configuration) — see [`Harness::annotate`].
    pub extra: Vec<(String, f64)>,
}

impl BenchResult {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        wr_tensor::Json::Str(self.name.clone()).write(out);
        out.push_str(",\"iters\":");
        wr_tensor::json::write_f64(out, self.iters as f64);
        out.push_str(",\"mean_ns\":");
        wr_tensor::json::write_f64(out, self.mean_ns);
        out.push_str(",\"min_ns\":");
        wr_tensor::json::write_f64(out, self.min_ns);
        for (key, val) in &self.extra {
            out.push_str(",");
            wr_tensor::Json::Str(key.clone()).write(out);
            out.push(':');
            wr_tensor::json::write_f64(out, *val);
        }
        out.push('}');
    }
}

/// Collects [`BenchResult`]s for one suite (one `benches/*.rs` binary).
pub struct Harness {
    suite: String,
    results: Vec<BenchResult>,
    meta: Vec<(String, f64)>,
}

/// Per-bench time budget: `WR_BENCH_MS` milliseconds (default 200).
fn target_time() -> Duration {
    let ms = std::env::var("WR_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl Harness {
    pub fn new(suite: impl Into<String>) -> Self {
        let suite = suite.into();
        eprintln!("== {suite} ==");
        let mut h = Harness {
            suite,
            results: Vec::new(),
            meta: Vec::new(),
        };
        // Machine shape is recorded on every suite so checked-in reports
        // are self-describing: `single_cpu_caveat` flags runs where thread
        // sweeps and QPS numbers collapse to serial behaviour and should
        // not be compared against multi-core reports.
        let cores = wr_runtime::pool_stats().available_parallelism;
        h.meta("available_parallelism", cores as f64);
        h.meta("single_cpu_caveat", if cores <= 1 { 1.0 } else { 0.0 });
        h
    }

    /// Time `f`, auto-calibrating the iteration count from one warm-up call.
    pub fn bench(&mut self, name: impl Into<String>, mut f: impl FnMut()) -> &BenchResult {
        let name = name.into();
        let warmup = Instant::now();
        f();
        let est = warmup.elapsed().max(Duration::from_nanos(1));
        let budget = target_time();
        let iters = (budget.as_nanos() / est.as_nanos()).clamp(3, 10_000) as u64;

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos() as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
        }
        let result = BenchResult {
            name,
            iters,
            mean_ns: total_ns / iters as f64,
            min_ns,
            extra: Vec::new(),
        };
        eprintln!(
            "  {:<44} min {:>12}  mean {:>12}  ({} iters)",
            result.name,
            fmt_ns(result.min_ns),
            fmt_ns(result.mean_ns),
            result.iters
        );
        self.results.push(result);
        self.results.last().unwrap()
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Attach an extra numeric field to the most recent bench's JSON
    /// object (e.g. pool-utilization counter deltas measured around it).
    /// No-op before the first bench.
    pub fn annotate(&mut self, key: impl Into<String>, value: f64) {
        if let Some(last) = self.results.last_mut() {
            last.extra.push((key.into(), value));
        }
    }

    /// Record a suite-level fact (machine shape, configuration), exported
    /// once under the report's `"meta"` object. Re-recording a key
    /// replaces its value, so suites can override the auto-recorded
    /// machine facts without emitting duplicate JSON keys.
    pub fn meta(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key, value));
        }
    }

    /// `{"suite": ..., "meta": {...}, "benches": [...]}`, compact. The
    /// `meta` object always carries at least the auto-recorded machine
    /// shape from [`Harness::new`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":");
        wr_tensor::Json::Str(self.suite.clone()).write(&mut out);
        if !self.meta.is_empty() {
            out.push_str(",\"meta\":{");
            for (i, (key, val)) in self.meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                wr_tensor::Json::Str(key.clone()).write(&mut out);
                out.push(':');
                wr_tensor::json::write_f64(&mut out, *val);
            }
            out.push('}');
        }
        out.push_str(",\"benches\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON report to `WR_BENCH_OUT` if set.
    pub fn finish(self) {
        if let Ok(path) = std::env::var("WR_BENCH_OUT") {
            std::fs::write(&path, self.to_json() + "\n").expect("write bench report");
            eprintln!("  report -> {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_serializes() {
        // Tiny budget so the test stays fast.
        std::env::set_var("WR_BENCH_MS", "5");
        let mut h = Harness::new("selftest");
        let r = h.bench("spin", || {
            black_box((0..100).sum::<u64>());
        });
        assert!(r.iters >= 3);
        assert!(r.min_ns > 0.0 && r.min_ns <= r.mean_ns);
        let json = h.to_json();
        let parsed = wr_tensor::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("suite").unwrap().as_str().unwrap(), "selftest");
        assert_eq!(parsed.get("benches").unwrap().as_arr().unwrap().len(), 1);
        std::env::remove_var("WR_BENCH_MS");
    }

    #[test]
    fn annotations_and_meta_reach_the_json() {
        std::env::set_var("WR_BENCH_MS", "2");
        let mut h = Harness::new("annotated");
        // meta() upserts: overriding the auto-recorded machine fact must
        // replace it, not emit a duplicate JSON key.
        h.meta("available_parallelism", 8.0);
        h.bench("spin", || {
            black_box((0..10).sum::<u64>());
        });
        h.annotate("jobs_by_workers", 12.0);
        h.annotate("threads", 4.0);
        let parsed = wr_tensor::Json::parse(&h.to_json()).unwrap();
        let meta = parsed.get("meta").unwrap();
        assert_eq!(meta.get("available_parallelism").unwrap().as_f64(), Some(8.0));
        let b = &parsed.get("benches").unwrap().as_arr().unwrap()[0];
        assert_eq!(b.get("jobs_by_workers").unwrap().as_f64(), Some(12.0));
        assert_eq!(b.get("threads").unwrap().as_f64(), Some(4.0));
        std::env::remove_var("WR_BENCH_MS");
    }

    #[test]
    fn machine_shape_is_auto_recorded() {
        let h = Harness::new("auto-meta");
        let parsed = wr_tensor::Json::parse(&h.to_json()).unwrap();
        let meta = parsed.get("meta").unwrap();
        let cores = meta.get("available_parallelism").unwrap().as_f64().unwrap();
        assert!(cores >= 1.0);
        let caveat = meta.get("single_cpu_caveat").unwrap().as_f64().unwrap();
        assert_eq!(caveat, if cores <= 1.0 { 1.0 } else { 0.0 });
    }
}
