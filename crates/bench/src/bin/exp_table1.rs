//! Table I: SASRec^ID vs SASRec^T vs WhitenRec (R@20 / N@20, warm start).
//!
//! Paper reference:
//!   Arts : SASRec^ID 0.1410/0.0776 | SASRec^T 0.1476/0.0721 | WhitenRec 0.1625/0.0796
//!   Toys : SASRec^ID 0.1121/0.0467 | SASRec^T 0.0983/0.0429 | WhitenRec 0.1201/0.0521
//!   Tools: SASRec^ID 0.0712/0.0418 | SASRec^T 0.0739/0.0386 | WhitenRec 0.0861/0.0453
//! Shape: WhitenRec beats both on every dataset; SASRec^T is not reliably
//! better than SASRec^ID (anisotropy hurts).

use wr_bench::{context, m4};
use wr_data::DatasetKind;
use whitenrec::TableWriter;

fn main() {
    let mut t = TableWriter::new(
        "Table I: effect of whitening (R@20 / N@20)",
        &["Dataset", "SASRec(ID)", "SASRec(T)", "WhitenRec", "%Improv R@20"],
    );
    for kind in [DatasetKind::Arts, DatasetKind::Toys, DatasetKind::Tools] {
        let ctx = context(kind);
        let id = ctx.run_warm("SASRec(ID)");
        let text = ctx.run_warm("SASRec(T)");
        let white = ctx.run_warm("WhitenRec");
        let best_base = id
            .test_metrics
            .recall_at(20)
            .max(text.test_metrics.recall_at(20));
        let improv = (white.test_metrics.recall_at(20) - best_base) / best_base.max(1e-9) * 100.0;
        t.row(&[
            kind.name().to_string(),
            format!("{}/{}", m4(id.test_metrics.recall_at(20)), m4(id.test_metrics.ndcg_at(20))),
            format!("{}/{}", m4(text.test_metrics.recall_at(20)), m4(text.test_metrics.ndcg_at(20))),
            format!("{}/{}", m4(white.test_metrics.recall_at(20)), m4(white.test_metrics.ndcg_at(20))),
            format!("{improv:+.1}%"),
        ]);
    }
    t.print();
    println!("Shape check: WhitenRec first on every row (paper: +10.1%/+7.1%/+16.5% R@20).");
}
