//! Fig. 2 + §III-B: singular-value spectrum and average pairwise cosine of
//! the pre-trained text embeddings, per dataset.
//!
//! Paper reference: normalized singular values decay rapidly (one dominant
//! direction); average pairwise cosine ≈ 0.85 / 0.84 / 0.85 for
//! Arts / Toys / Tools.

use wr_bench::{context, datasets, m4};
use wr_textsim::{normalized_singular_values, EmbeddingReport};
use whitenrec::TableWriter;

fn main() {
    let mut cos_table = TableWriter::new(
        "SIII-B: average pairwise cosine (paper: Arts 0.85, Toys 0.84, Tools 0.85)",
        &["Dataset", "avg cos", "whiteness err", "top-1 energy", "eff. dirs"],
    );
    let mut spec_table = TableWriter::new(
        "Fig 2: normalized singular values (first 12, per dataset)",
        &["Dataset", "sigma_k / sigma_0 for k = 0..11"],
    );

    for kind in datasets() {
        let ctx = context(kind);
        let emb = &ctx.dataset.embeddings;
        let report = EmbeddingReport::compute(emb, 2000, 7).expect("embedding report");
        cos_table.row(&[
            kind.name().to_string(),
            format!("{:.3}", report.average_cosine),
            format!("{:.3}", report.whiteness_error),
            format!("{:.1}%", report.top1_energy * 100.0),
            report.effective_directions.to_string(),
        ]);

        let sv = normalized_singular_values(emb).expect("spectrum");
        let head: Vec<String> = sv.iter().take(12).map(|s| m4(*s)).collect();
        spec_table.row(&[kind.name().to_string(), head.join(" ")]);
    }

    cos_table.print();
    spec_table.print();
    println!(
        "Shape check: the spectrum should collapse within ~10 directions and\n\
         the average cosine should sit near the paper's 0.85 anisotropy level."
    );
}
