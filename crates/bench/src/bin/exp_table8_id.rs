//! Table VIII: does adding ID embeddings help WhitenRec / WhitenRec+?
//!
//! Paper reference (shape): no — on all four datasets the (T+ID) variants
//! fall below the text-only versions on R@20.

use wr_bench::{context, datasets, m4};
use whitenrec::TableWriter;

fn main() {
    let variants = [
        "WhitenRec",
        "WhitenRec(T+ID)",
        "WhitenRec+",
        "WhitenRec+(T+ID)",
    ];
    let mut rows: Vec<Vec<String>> = variants.iter().map(|v| vec![v.to_string()]).collect();
    for kind in datasets() {
        let ctx = context(kind);
        for (i, name) in variants.iter().enumerate() {
            eprintln!("  training {name} on {}", kind.name());
            let trained = ctx.run_warm(name);
            rows[i].push(format!(
                "{}/{}",
                m4(trained.test_metrics.recall_at(20)),
                m4(trained.test_metrics.ndcg_at(20))
            ));
        }
    }
    let kinds = wr_bench::datasets();
    let mut header = vec!["Model".to_string()];
    header.extend(kinds.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new("Table VIII: text vs text+ID (R@20 / N@20)", &header_refs);
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("Shape check: each (T+ID) row should trail its text-only sibling on R@20.");
}
