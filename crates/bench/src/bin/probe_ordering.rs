//! Calibration probe: the four models whose ordering defines the paper's
//! headline (Tables I/III). Not part of the paper's tables.

use wr_bench::{context, datasets, m4};

fn main() {
    for kind in datasets() {
        let ctx = context(kind);
        println!("-- {} --", kind.name());
        for name in ["SASRec(ID)", "SASRec(T+ID)", "WhitenRec", "WhitenRec+"] {
            let t = ctx.run_warm(name);
            println!(
                "{:<14} R@20 {}  N@20 {}  (best epoch {}, {:.1}s/epoch)",
                name,
                m4(t.test_metrics.recall_at(20)),
                m4(t.test_metrics.ndcg_at(20)),
                t.report.best_epoch,
                t.report.seconds_per_epoch(),
            );
        }
    }
}
