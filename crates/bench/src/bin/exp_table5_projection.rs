//! Table V: projection-head ablation for WhitenRec+ — Linear, MLP-1/2/3,
//! and a Mixture-of-Experts head.
//!
//! Paper reference (shape): Linear worst on most datasets (non-linearity
//! matters); MLP-2/MLP-3 best; MoE ≈ MLP-1.

use wr_bench::{context, datasets, m4};
use wr_models::{zoo, EnsembleTower, LossKind, ModelConfig, MoeTower, SasRec};
use wr_tensor::Rng64;
use wr_train::{fit, Adam, AdamConfig, SeqRecModel};
use wr_whiten::EnsembleMode;
use whitenrec::TableWriter;

fn main() {
    let kinds_for_header = wr_bench::datasets();
    let mut header = vec!["Head".to_string()];
    header.extend(kinds_for_header.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new("Table V: projection head for WhitenRec+ (R@20 / N@20)", &header_refs);
    let heads = ["Linear", "MLP-1", "MLP-2", "MLP-3", "MoE"];
    let mut rows: Vec<Vec<String>> = heads.iter().map(|h| vec![h.to_string()]).collect();

    for kind in datasets() {
        let ctx = context(kind);
        let emb = &ctx.dataset.embeddings;
        let z_full = zoo::whiten_full(emb);
        let z_relaxed = zoo::whiten_relaxed(emb, ctx.relaxed_groups);

        for (i, head) in heads.iter().enumerate() {
            eprintln!("  head {head} on {}", kind.name());
            let cfg = ModelConfig::default();
            let mut rng = Rng64::seed_from(cfg.seed);
            let mut model: Box<dyn SeqRecModel> = match *head {
                // proj_layers 0 → pure linear head inside the ensemble.
                "Linear" => ensemble(z_full.clone(), z_relaxed.clone(), 0, cfg, &mut rng),
                "MLP-1" => ensemble(z_full.clone(), z_relaxed.clone(), 1, cfg, &mut rng),
                "MLP-2" => ensemble(z_full.clone(), z_relaxed.clone(), 2, cfg, &mut rng),
                "MLP-3" => ensemble(z_full.clone(), z_relaxed.clone(), 3, cfg, &mut rng),
                // MoE adaptor over the fully whitened view (UniSRec-style
                // head transplanted into WhitenRec+'s input).
                "MoE" => Box::new(SasRec::new(
                    "WhitenRec+@MoE-head",
                    Box::new(MoeTower::new(z_full.clone(), cfg.dim, 4, &mut rng)),
                    LossKind::Softmax,
                    cfg,
                    &mut rng,
                )),
                _ => unreachable!(),
            };
            let mut opt = Adam::new(AdamConfig {
                lr: 1e-3,
                weight_decay: 1e-6,
                ..AdamConfig::default()
            });
            let report = fit(
                &mut model,
                &mut opt,
                ctx.warm.train.clone(),
                &ctx.warm.validation[..ctx.warm.validation.len().min(1200)],
                ctx.train_config,
                |_, _| {},
            );
            let _ = report;
            let metrics = ctx.evaluate(
                model.as_ref(),
                &ctx.warm.test[..ctx.warm.test.len().min(1200)],
            );
            rows[i].push(format!("{}/{}", m4(metrics.recall_at(20)), m4(metrics.ndcg_at(20))));
        }
    }
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("Shape check: Linear should trail the MLP heads; MLP-2/3 lead.");
}

fn ensemble(
    z_full: wr_tensor::Tensor,
    z_relaxed: wr_tensor::Tensor,
    layers: usize,
    cfg: ModelConfig,
    rng: &mut Rng64,
) -> Box<dyn SeqRecModel> {
    Box::new(SasRec::new(
        format!("WhitenRec+@head{layers}"),
        Box::new(EnsembleTower::new(
            z_full,
            z_relaxed,
            cfg.dim,
            layers,
            EnsembleMode::Sum,
            rng,
        )),
        LossKind::Softmax,
        cfg,
        rng,
    ))
}
