//! Ablation of our own design choice: the covariance regularizer ε in
//! `Σ = cov + εI` (the paper fixes one ε implicitly; DESIGN.md calls this
//! out as a knob worth sweeping).
//!
//! Small ε lets whitening amplify near-null noise directions
//! (1/√λ explodes); large ε under-whitens (residual anisotropy). The sweep
//! shows the plateau in between — and reports the resulting whiteness
//! error alongside recommendation quality.

use wr_bench::{context, m4};
use wr_data::DatasetKind;
use wr_models::{LossKind, ModelConfig, SasRec, TextTower};
use wr_tensor::Rng64;
use wr_train::{fit, Adam, AdamConfig};
use wr_whiten::{whiteness_error, WhiteningMethod, WhiteningTransform};
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Arts);
    let emb = &ctx.dataset.embeddings;
    let mut t = TableWriter::new(
        "Ablation: covariance regularizer eps for ZCA whitening (Arts)",
        &["eps", "whiteness err", "R@20", "N@20"],
    );
    for eps in [1e-2f32, 1e-3, 1e-4, 1e-5, 1e-7] {
        eprintln!("  eps = {eps:.0e}");
        let z = WhiteningTransform::fit(emb, WhiteningMethod::Zca, eps).apply(emb);
        let werr = whiteness_error(&z);
        let cfg = ModelConfig::default();
        let mut rng = Rng64::seed_from(cfg.seed);
        let mut model = SasRec::new(
            format!("WhitenRec@eps={eps:.0e}"),
            Box::new(TextTower::new(z, cfg.dim, cfg.proj_layers, &mut rng)),
            LossKind::Softmax,
            cfg,
            &mut rng,
        );
        let mut opt = Adam::new(AdamConfig {
            lr: 1e-3,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        });
        fit(
            &mut model,
            &mut opt,
            ctx.warm.train.clone(),
            &ctx.warm.validation[..ctx.warm.validation.len().min(1000)],
            ctx.train_config,
            |_, _| {},
        );
        let metrics = ctx.evaluate(&model, &ctx.warm.test[..ctx.warm.test.len().min(1000)]);
        t.row(&[
            format!("{eps:.0e}"),
            format!("{werr:.4}"),
            m4(metrics.recall_at(20)),
            m4(metrics.ndcg_at(20)),
        ]);
    }
    t.print();
    println!("Expected: a quality plateau at moderate eps, degradation at the extremes.");
}
