//! Fig. 5: WhitenRec performance vs whitening group count G.
//!
//! Paper reference: best performance at small G (strong decorrelation);
//! performance degrades as G grows on Arts/Toys/Tools.

use wr_bench::{context, datasets, m4};
use wr_data::DatasetKind;
use whitenrec::TableWriter;

fn main() {
    let kinds: Vec<DatasetKind> = datasets();
    let mut t = TableWriter::new(
        "Fig 5: WhitenRec with relaxed whitening, by G (R@20 / N@20)",
        &["Dataset", "G=1", "G=4", "G=8", "G=16", "G=32"],
    );
    for kind in kinds {
        let ctx = context(kind);
        let mut cells = vec![kind.name().to_string()];
        for g in [1usize, 4, 8, 16, 32] {
            if ctx.dataset.embeddings.cols() % g != 0 {
                cells.push("n/a".into());
                continue;
            }
            let name = if g == 1 {
                "WhitenRec".to_string()
            } else {
                format!("WhitenRec@G={g}")
            };
            let trained = ctx.run_warm(&name);
            cells.push(format!(
                "{}/{}",
                m4(trained.test_metrics.recall_at(20)),
                m4(trained.test_metrics.ndcg_at(20))
            ));
        }
        t.row(&cells);
    }
    t.print();
    println!("Shape check: the G=1 column should dominate; quality decays with G.");
}
