//! Proposition IV.1 (numeric verification): WhitenRec+ preserves at least
//! `(1 − 1/G)·d²` more information than WhitenRec.
//!
//! The proof counts the free real values needed to reconstruct the Gram
//! matrix `K_Z = Z⁺Z`: full whitening leaves `(n−d)·d` values, while `G`
//! groups leave `(n−d/G)·d`. We verify the two load-bearing identities on
//! real whitened matrices: (i) `K_Z = Z⁺Z` (Eq. 8); (ii) `K_Z` is invariant
//! under any invertible row transform `Q` (Eq. 9), so only the stated
//! number of values is free.

use wr_bench::context;
use wr_data::DatasetKind;
use wr_linalg::pinv;
use wr_tensor::{Rng64, Tensor};
use wr_whiten::{group_whiten, WhiteningMethod, DEFAULT_EPS};
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Arts);
    // Keep the Gram matrices small: sample n items, take d dims.
    let emb = &ctx.dataset.embeddings;
    let n = emb.rows().min(160);
    let d = 32.min(emb.cols());
    let idx: Vec<usize> = (0..n).map(|i| i * emb.rows() / n).collect();
    let x = emb.gather_rows(&idx).slice_cols(0, d);

    let mut t = TableWriter::new(
        "Prop IV.1: information accounting (values available to reconstruct K)",
        &["Setting", "free values (n-d/G)*d", "K = Z+Z rel. err", "K invariance under Q rel. err"],
    );

    for g in [1usize, 2, 4, 8] {
        if d % g != 0 {
            continue;
        }
        let z = group_whiten(&x, g, WhiteningMethod::Zca, DEFAULT_EPS);
        // z is [n, d]; the paper's Z is d×n — transpose for the identities.
        let zt = z.transpose(); // [d, n]
        let zp = pinv(&zt).expect("pinv"); // [n, d]
        // Eq. 8: K_Z = Z⁺Z. For whitened Z this is the orthogonal projector
        // onto Z's row space, so we verify the projector identities.
        let k = zp.matmul(&zt); // Z⁺Z : [n, n]
        let err_proj = projection_error(&k);

        // Invariance: Q Z for random invertible Q keeps Z⁺Z unchanged.
        let mut rng = Rng64::seed_from(5 + g as u64);
        let mut q = Tensor::randn(&[d, d], &mut rng).scale(0.3);
        for i in 0..d {
            *q.at2_mut(i, i) += 1.5;
        }
        let qz = q.matmul(&zt);
        let kq = pinv(&qz).expect("pinv qz").matmul(&qz);
        let inv_err = kq.sub(&k).frob_norm() / k.frob_norm();

        let free = (n - d / g) * d;
        t.row(&[
            format!("G={g}"),
            free.to_string(),
            format!("{err_proj:.2e}"),
            format!("{inv_err:.2e}"),
        ]);
    }

    t.print();
    let gain = |g: usize| (1.0 - 1.0 / g as f32) * (d * d) as f32;
    println!(
        "Extra values preserved by WhitenRec+ over WhitenRec (theory (1-1/G)d², d={d}):\n\
         G=2: {}  G=4: {}  G=8: {}\n\
         Both identity checks should sit at ≈1e-3 or below (f32 SVD).",
        gain(2),
        gain(4),
        gain(8)
    );
}

/// `Z⁺Z` must be an orthogonal projection: `P² = P`, `Pᵀ = P`.
fn projection_error(p: &Tensor) -> f32 {
    let pp = p.matmul(p);
    let idem = pp.sub(p).frob_norm() / p.frob_norm();
    let sym = p.sub(&p.transpose()).frob_norm() / p.frob_norm();
    idem.max(sym)
}
