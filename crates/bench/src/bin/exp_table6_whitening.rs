//! Table VI: whitening-method ablation for WhitenRec+ — parametric (PW,
//! BERT-flow) vs non-parametric (PCA, BN, CD, ZCA).
//!
//! Paper reference (shape): PW worst (a linear layer can't guarantee
//! whitened outputs); PCA hurt by stochastic axis swapping; CD and ZCA
//! consistently best; on Food (short texts) the gaps shrink.

use wr_bench::{context, datasets, m4};
use wr_models::{EnsembleTower, LossKind, ModelConfig, PwTower, SasRec};
use wr_tensor::{Rng64, Tensor};
use wr_train::{fit, Adam, AdamConfig, SeqRecModel};
use wr_whiten::{group_whiten, EnsembleMode, FlowWhitening, WhiteningMethod, DEFAULT_EPS};
use whitenrec::TableWriter;

fn main() {
    let methods = ["PW", "BERT-flow", "PCA", "BN", "CD", "ZCA"];
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.to_string()]).collect();

    for kind in datasets() {
        let ctx = context(kind);
        let emb = &ctx.dataset.embeddings;
        for (i, method) in methods.iter().enumerate() {
            eprintln!("  whitening {method} on {}", kind.name());
            let cfg = ModelConfig::default();
            let mut rng = Rng64::seed_from(cfg.seed);
            let mut model: Box<dyn SeqRecModel> = match *method {
                "PW" => Box::new(SasRec::new(
                    "PW",
                    Box::new(PwTower::new(emb.clone(), cfg.dim, cfg.proj_layers, &mut rng)),
                    LossKind::Softmax,
                    cfg,
                    &mut rng,
                )),
                "BERT-flow" => {
                    let flow = FlowWhitening::fit(emb, Default::default(), 17);
                    let z = flow.apply(emb);
                    ensemble_of(z.clone(), z, cfg, &mut rng)
                }
                name => {
                    let m = match name {
                        "PCA" => WhiteningMethod::Pca,
                        "BN" => WhiteningMethod::BatchNorm,
                        "CD" => WhiteningMethod::Cholesky,
                        "ZCA" => WhiteningMethod::Zca,
                        other => unreachable!("{other}"),
                    };
                    let z1 = group_whiten(emb, 1, m, DEFAULT_EPS);
                    let z2 = group_whiten(emb, ctx.relaxed_groups, m, DEFAULT_EPS);
                    ensemble_of(z1, z2, cfg, &mut rng)
                }
            };
            let mut opt = Adam::new(AdamConfig {
                lr: 1e-3,
                weight_decay: 1e-6,
                ..AdamConfig::default()
            });
            fit(
                &mut model,
                &mut opt,
                ctx.warm.train.clone(),
                &ctx.warm.validation[..ctx.warm.validation.len().min(1200)],
                ctx.train_config,
                |_, _| {},
            );
            let metrics = ctx.evaluate(
                model.as_ref(),
                &ctx.warm.test[..ctx.warm.test.len().min(1200)],
            );
            rows[i].push(format!("{}/{}", m4(metrics.recall_at(20)), m4(metrics.ndcg_at(20))));
        }
    }

    let kinds = wr_bench::datasets();
    let mut header = vec!["Method".to_string()];
    header.extend(kinds.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new(
        "Table VI: whitening methods for WhitenRec+ (R@20 / N@20)",
        &header_refs,
    );
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("Shape check: ZCA/CD on top, PW at the bottom, BN/PCA between.");
}

fn ensemble_of(
    z1: Tensor,
    z2: Tensor,
    cfg: ModelConfig,
    rng: &mut Rng64,
) -> Box<dyn SeqRecModel> {
    Box::new(SasRec::new(
        "WhitenRec+",
        Box::new(EnsembleTower::new(
            z1,
            z2,
            cfg.dim,
            cfg.proj_layers,
            EnsembleMode::Sum,
            rng,
        )),
        LossKind::Softmax,
        cfg,
        rng,
    ))
}
