//! Fig. 4: CDF of item-pair cosine similarity under different whitening
//! strengths G on Arts.
//!
//! Paper reference: full whitening (G=1) concentrates the CDF around
//! cos ≈ 0; weaker whitening (larger G) and raw embeddings spread toward
//! high similarity, with Raw concentrated near 0.85.

use wr_bench::context;
use wr_data::DatasetKind;
use wr_whiten::{group_whiten, pairwise_cosine_cdf, WhiteningMethod, DEFAULT_EPS};
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Arts);
    let emb = &ctx.dataset.embeddings;

    let grid_header = ["Setting", "cos=-0.5", "-0.25", "0.0", "0.25", "0.5", "0.75", "1.0"];
    let mut t = TableWriter::new("Fig 4: CDF of pairwise cosine (Arts)", &grid_header);

    let mut push = |name: &str, x: &wr_tensor::Tensor| {
        let (grid, cdf) = pairwise_cosine_cdf(x, 4000, 81, 13);
        let probe = [-0.5f32, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0];
        let mut cells = vec![name.to_string()];
        for p in probe {
            let idx = grid.iter().position(|&g| g >= p).unwrap_or(grid.len() - 1);
            cells.push(format!("{:.3}", cdf[idx]));
        }
        t.row(&cells);
    };

    for g in [1usize, 4, 8, 32, 128] {
        if emb.cols() % g != 0 {
            continue;
        }
        let z = group_whiten(emb, g, WhiteningMethod::Zca, DEFAULT_EPS);
        push(&format!("G={g}"), &z);
    }
    push("Raw", emb);

    t.print();
    println!(
        "Shape check: G=1 reaches CDF ~1.0 well before cos=0.5 (tightly\n\
         concentrated near 0); Raw stays near 0 until large cosines (pairs\n\
         are all similar); intermediate G interpolates."
    );
}
