//! Fig. 7: condition number of the projected item-embedding covariance and
//! training loss, per epoch.
//!
//! Paper reference (shape): WhitenRec/WhitenRec+ keep κ low and stable
//! (best conditioning, fastest convergence among text-based models);
//! ID-based models' conditioning worsens over training (overfitting);
//! SASRec(T)/UniSRec(T) sit in between with higher κ.

use wr_bench::{context, datasets};
use wr_eval::item_condition_number;
use whitenrec::TableWriter;

const MODELS: [&str; 6] = [
    "SASRec(ID)",
    "UniSRec(T+ID)",
    "SASRec(T)",
    "UniSRec(T)",
    "WhitenRec",
    "WhitenRec+",
];

fn main() {
    for kind in datasets() {
        let ctx = context(kind);
        let mut t = TableWriter::new(
            format!("Fig 7 ({}): log10 cond. number + train loss per epoch", kind.name()),
            &["Model", "epoch trace: log10(kappa) | loss"],
        );
        for name in MODELS {
            eprintln!("  training {name} on {}", kind.name());
            let mut trace: Vec<String> = Vec::new();
            let _ = ctx.run_warm_with_hook(name, |model, rec| {
                let v = model.item_representations();
                let kappa = item_condition_number(&v).unwrap_or(f32::INFINITY);
                trace.push(format!("{:.1}|{:.2}", kappa.max(1.0).log10(), rec.train_loss));
            });
            t.row(&[name.to_string(), trace.join("  ")]);
        }
        t.print();
    }
    println!(
        "Shape check: WhitenRec/WhitenRec+ rows should show the smallest and\n\
         flattest log10(kappa); ID rows may drift upward over epochs."
    );
}
