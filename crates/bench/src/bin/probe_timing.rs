//! Timing probe: seconds/epoch at the current WR_SCALE, to calibrate the
//! harness for the available hardware. Not part of the paper's tables.

use wr_bench::{context, scale};
use wr_data::DatasetKind;

fn main() {
    let mut ctx = context(DatasetKind::Arts);
    ctx.train_config.max_epochs = 2;
    let t0 = std::time::Instant::now();
    let trained = ctx.run_warm("WhitenRec");
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "scale {} | {} epochs in {:.1}s ({:.2}s/epoch) | test {}",
        scale(),
        trained.report.epochs.len(),
        elapsed,
        trained.report.seconds_per_epoch(),
        trained.test_metrics
    );
}
