//! Extension experiment (the paper's Table VIII future work): does *gated*
//! ID fusion fix the degradation that plain `text + ID` summation causes?
//!
//! Compares WhitenRec+ (text only), WhitenRec+(T+ID) (plain sum, the
//! Table VIII loser), and WhitenRec+(GatedID) (our extension) on both warm
//! and cold protocols. Hypothesis: the gate recovers (or exceeds) text-only
//! warm performance while staying robust in the cold setting, because
//! untrained cold-item ID rows can be gated out.

use wr_bench::{context, datasets, m4};
use whitenrec::TableWriter;

const MODELS: [&str; 3] = ["WhitenRec+", "WhitenRec+(T+ID)", "WhitenRec+(GatedID)"];

fn main() {
    let kinds = datasets();
    let mut header = vec!["Model".to_string()];
    header.extend(kinds.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut warm = TableWriter::new(
        "Extension: gated ID fusion — warm start (R@20 / N@20)",
        &header_refs,
    );
    let mut cold = TableWriter::new(
        "Extension: gated ID fusion — cold start (R@20 / N@20)",
        &header_refs,
    );
    let mut warm_rows: Vec<Vec<String>> = MODELS.iter().map(|m| vec![m.to_string()]).collect();
    let mut cold_rows = warm_rows.clone();

    for kind in kinds.iter().copied() {
        let ctx = context(kind);
        for (i, name) in MODELS.iter().enumerate() {
            eprintln!("  {name} on {} (warm)", kind.name());
            let w = ctx.run_warm(name);
            warm_rows[i].push(format!(
                "{}/{}",
                m4(w.test_metrics.recall_at(20)),
                m4(w.test_metrics.ndcg_at(20))
            ));
            eprintln!("  {name} on {} (cold)", kind.name());
            let c = ctx.run_cold(name);
            cold_rows[i].push(format!(
                "{}/{}",
                m4(c.test_metrics.recall_at(20)),
                m4(c.test_metrics.ndcg_at(20))
            ));
        }
    }
    for row in &warm_rows {
        warm.row(row);
    }
    for row in &cold_rows {
        cold.row(row);
    }
    warm.print();
    cold.print();
    println!(
        "Hypothesis check: plain (T+ID) should trail text-only (Table VIII);\n\
         the gated variant should close that gap warm and avoid the cold\n\
         collapse that untrained ID rows cause."
    );
}
