//! Table IV: cold-start comparison (15 % of items unseen in training;
//! targets are cold items).
//!
//! Paper reference (shape): SASRec(T) weakest; UniSRec(T) strong;
//! relaxed whitening (WhitenRec G>1) beats full whitening (G=1) in the
//! cold setting; WhitenRec+ best everywhere.

use wr_bench::{context, datasets, m4};
use whitenrec::TableWriter;

const COLD_ROSTER: [&str; 5] = [
    "SASRec(T)",
    "UniSRec(T)",
    "WhitenRec",      // G = 1 (full whitening)
    "WhitenRec@G=4",  // relaxed whitening
    "WhitenRec+",
];

fn main() {
    let kinds = datasets();
    let mut header = vec!["Model".to_string()];
    header.extend(kinds.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new("Table IV: cold-start (R@20 / N@20)", &header_refs);
    let mut rows: Vec<Vec<String>> = COLD_ROSTER
        .iter()
        .map(|n| vec![n.to_string()])
        .collect();
    for kind in &kinds {
        let ctx = context(*kind);
        for (i, name) in COLD_ROSTER.iter().enumerate() {
            eprintln!("  cold-training {name} on {}", kind.name());
            let trained = ctx.run_cold(name);
            rows[i].push(format!(
                "{}/{}",
                m4(trained.test_metrics.recall_at(20)),
                m4(trained.test_metrics.ndcg_at(20))
            ));
        }
    }
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!(
        "Shape check: only text reaches cold items, so SASRec(T) floor,\n\
         relaxed whitening (G=4) > full whitening (G=1), WhitenRec+ on top\n\
         (paper: +8.5%/+17.9%/+64.5% N@50 over the best baseline)."
    );
}
