//! Table II: dataset statistics after five-core filtering.
//!
//! Paper reference (full scale):
//!   Arts  45,486 users 21,019 items 349,664 inter.  avg n 7.69  avg i 16.63
//!   Toys  85,694 users 40,483 items 618,738 inter.  avg n 7.22  avg i 15.28
//!   Tools 90,599 users 36,244 items 623,248 inter.  avg n 6.88  avg i 17.20
//!   Food  28,988 users 12,910 items 274,509 inter.  avg n 9.47  avg i 21.26
//! The harness regenerates the same *shape* at WR_SCALE of ~1/10 size.

use wr_bench::{context, datasets};
use wr_data::dataset_stats;
use whitenrec::TableWriter;

fn main() {
    let mut t = TableWriter::new(
        "Table II: dataset statistics (synthetic, five-core filtered)",
        &["Dataset", "#Users", "#Items", "#Inter.", "Avg. n", "Avg. i", "Avg. words"],
    );
    for kind in datasets() {
        let ctx = context(kind);
        let stats = dataset_stats(&ctx.dataset.sequences, ctx.dataset.n_items());
        t.row(&[
            kind.name().to_string(),
            stats.n_users.to_string(),
            stats.n_items.to_string(),
            stats.n_interactions.to_string(),
            format!("{:.2}", stats.avg_seq_len),
            format!("{:.2}", stats.avg_item_actions),
            format!("{:.1}", ctx.dataset.catalog.average_title_words()),
        ]);
    }
    t.print();
    println!(
        "Shape check: Food has the longest sequences and shortest texts;\n\
         Tools has the most users; Toys the most items; Avg. i >= 5 by\n\
         construction of the five-core filter."
    );
}
