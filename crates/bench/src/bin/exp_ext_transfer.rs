//! Extension: cross-domain transfer — the paper's third motivation for
//! dropping ID embeddings ("text embeddings are transferable across
//! platforms or domains, whereas ID embeddings are not").
//!
//! Protocol: both domains share one simulated PLM encoder (as two Amazon
//! categories share one BERT). WhitenRec is trained on the *source*
//! domain, then evaluated zero-shot on the *target* domain by swapping in
//! the target's whitened embedding table under the trained projection
//! head + Transformer (checkpoint save/restore). Compared against (a) the
//! target's own popularity floor and (b) a SASRec(ID) whose source-trained
//! ID table is meaningless on the target by construction.

use wr_bench::{m4, max_epochs, scale};
use wr_data::{warm_split, DatasetKind, DatasetSpec};
use wr_models::{zoo, LossKind, ModelConfig, Popularity, SasRec, TextTower};
use wr_nn::{load_params, restore_params, save_params};
use wr_tensor::Rng64;
use wr_train::{fit, Adam, AdamConfig, SeqRecModel, TrainConfig};
use whitenrec::TableWriter;

fn main() {
    // Two domains, one shared text encoder (same plm seed + factor space).
    let mut source_spec = DatasetSpec::preset(DatasetKind::Arts).scaled(scale()).scaled_items(2.0);
    let mut target_spec = DatasetSpec::preset(DatasetKind::Toys).scaled(scale()).scaled_items(2.0);
    source_spec.plm.seed = 4242;
    target_spec.plm.seed = 4242;
    // Same semantic factor space: share the catalog factor seeds' dims
    // (n_factors already equal across presets).

    let source = source_spec.build();
    let target = target_spec.build();
    eprintln!(
        "source {}: {} items | target {}: {} items",
        source.spec.kind.name(),
        source.n_items(),
        target.spec.kind.name(),
        target.n_items()
    );

    let cfg = ModelConfig::default();
    let train_config = TrainConfig {
        max_epochs: max_epochs(),
        patience: 4,
        batch_size: 256,
        max_seq: cfg.max_seq,
        eval_batch: 256,
        seed: 77,
        eval_every: 1,
        lr_schedule: None,
    };

    // --- train WhitenRec on the source domain -----------------------------
    // The whitening transform is *part of the model* and ships with it:
    // fit once on the source catalog, reuse on the target. (Refitting ZCA
    // per domain breaks transfer — whitening is only unique up to rotation,
    // so a target-fitted basis is arbitrarily rotated relative to the
    // weights trained in the source basis.)
    let src_split = warm_split(&source.sequences);
    let whitener = wr_whiten::WhiteningTransform::fit(
        &source.embeddings,
        wr_whiten::WhiteningMethod::Zca,
        wr_whiten::DEFAULT_EPS,
    );
    let z_src = whitener.apply(&source.embeddings);
    let mut rng = Rng64::seed_from(cfg.seed);
    let mut model = SasRec::new(
        "WhitenRec(source)",
        Box::new(TextTower::new(z_src, cfg.dim, cfg.proj_layers, &mut rng)),
        LossKind::Softmax,
        cfg,
        &mut rng,
    );
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-3,
        weight_decay: 1e-6,
        ..AdamConfig::default()
    });
    eprintln!("training WhitenRec on {}…", source.spec.kind.name());
    fit(
        &mut model,
        &mut opt,
        src_split.train.clone(),
        &src_split.validation[..src_split.validation.len().min(1000)],
        train_config,
        |_, _| {},
    );

    // --- zero-shot transfer: same weights, target embedding table ---------
    let ckpt = std::env::temp_dir().join(format!("wr_transfer_{}.wrck", std::process::id()));
    save_params(&ckpt, &model.params()).expect("save source weights");
    let z_tgt = whitener.apply(&target.embeddings);
    let mut rng2 = Rng64::seed_from(cfg.seed);
    let transferred = SasRec::new(
        "WhitenRec(zero-shot)",
        Box::new(TextTower::new(z_tgt, cfg.dim, cfg.proj_layers, &mut rng2)),
        LossKind::Softmax,
        cfg,
        &mut rng2,
    );
    let loaded = load_params(&ckpt).expect("load");
    restore_params(&transferred.params(), &loaded).expect("restore into target model");
    std::fs::remove_file(&ckpt).ok();

    let tgt_split = warm_split(&target.sequences);
    let tgt_test: Vec<_> = tgt_split.test.iter().take(1200).cloned().collect();
    let eval = |m: &dyn SeqRecModel| {
        wr_eval::evaluate_cases(&tgt_test, &[20, 50], 256, true, |ctx| m.score(ctx))
    };
    let zero_shot = eval(&transferred);

    // --- reference points on the target domain ----------------------------
    let pop = Popularity::new(&tgt_split.train, target.n_items());
    let pop_metrics = eval(&pop);

    // Source-trained SASRec(ID) transplanted: its ID table rows index a
    // *different* catalog — structurally meaningless, included to make the
    // paper's "IDs are not transferable" point measurable. Where catalogs
    // differ in size, the table is re-created (random) at target size and
    // only the sequence encoder transfers.
    let mut rng3 = Rng64::seed_from(cfg.seed);
    let mut id_source = zoo::build(
        "SASRec(ID)",
        &zoo::ZooInputs {
            embeddings: &source.embeddings,
            item_categories: &vec![0; source.n_items()],
            train_sequences: &src_split.train,
            relaxed_groups: 4,
        },
        cfg,
        &mut rng3,
    );
    let mut opt_id = Adam::new(AdamConfig {
        lr: 1e-3,
        ..AdamConfig::default()
    });
    eprintln!("training SASRec(ID) on {}…", source.spec.kind.name());
    fit(
        &mut id_source,
        &mut opt_id,
        src_split.train.clone(),
        &src_split.validation[..src_split.validation.len().min(1000)],
        train_config,
        |_, _| {},
    );
    // Transplant: fresh random ID table at target size + source encoder is
    // not even well-defined; the honest "ID transfer" is scoring the target
    // with the source model directly when sizes permit, else random.
    let id_zero_shot = if source.n_items() == target.n_items() {
        eval(&id_source)
    } else {
        // Structurally impossible — report the random floor explicitly.
        let mut rng4 = Rng64::seed_from(1);
        let random = zoo::build(
            "SASRec(ID)",
            &zoo::ZooInputs {
                embeddings: &target.embeddings,
                item_categories: &vec![0; target.n_items()],
                train_sequences: &tgt_split.train,
                relaxed_groups: 4,
            },
            cfg,
            &mut rng4,
        );
        eval(&random)
    };

    // Skyline: WhitenRec trained on the target itself.
    let z_tgt2 = zoo::whiten_full(&target.embeddings);
    let mut rng5 = Rng64::seed_from(cfg.seed);
    let mut native = SasRec::new(
        "WhitenRec(native)",
        Box::new(TextTower::new(z_tgt2, cfg.dim, cfg.proj_layers, &mut rng5)),
        LossKind::Softmax,
        cfg,
        &mut rng5,
    );
    let mut opt_n = Adam::new(AdamConfig {
        lr: 1e-3,
        weight_decay: 1e-6,
        ..AdamConfig::default()
    });
    eprintln!("training native WhitenRec on {}…", target.spec.kind.name());
    fit(
        &mut native,
        &mut opt_n,
        tgt_split.train.clone(),
        &tgt_split.validation[..tgt_split.validation.len().min(1000)],
        train_config,
        |_, _| {},
    );
    let native_metrics = eval(&native);

    let mut t = TableWriter::new(
        format!(
            "Extension: zero-shot transfer {} → {} (R@20 / N@20 on target)",
            source.spec.kind.name(),
            target.spec.kind.name()
        ),
        &["Model", "R@20", "N@20"],
    );
    t.row(&["Pop (target floor)".into(), m4(pop_metrics.recall_at(20)), m4(pop_metrics.ndcg_at(20))]);
    t.row(&["SASRec(ID) transfer (untransferable)".into(), m4(id_zero_shot.recall_at(20)), m4(id_zero_shot.ndcg_at(20))]);
    t.row(&["WhitenRec zero-shot (text transfer)".into(), m4(zero_shot.recall_at(20)), m4(zero_shot.ndcg_at(20))]);
    t.row(&["WhitenRec native (skyline)".into(), m4(native_metrics.recall_at(20)), m4(native_metrics.ndcg_at(20))]);
    t.print();
    println!(
        "Claim check (paper §I, advantage 3): text-only WhitenRec transfers\n\
         a useful model across domains — zero-shot should clearly beat the\n\
         popularity floor and the untransferable-ID reference while trailing\n\
         the natively trained skyline."
    );
}
