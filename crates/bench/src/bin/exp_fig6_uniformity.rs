//! Fig. 6: alignment–uniformity trajectories of user and item
//! representations during training.
//!
//! Paper reference (shape): WhitenRec/WhitenRec+ achieve the best (lowest)
//! *user* uniformity among text-based methods; ID-based methods reach low
//! uniformity too but worse accuracy — user uniformity tracks performance
//! within the text-based family.

use wr_bench::{context, datasets};
use wr_eval::UniformityReport;
use whitenrec::TableWriter;

const MODELS: [&str; 6] = [
    "SASRec(ID)",
    "UniSRec(T+ID)",
    "SASRec(T)",
    "UniSRec(T)",
    "WhitenRec",
    "WhitenRec+",
];

fn main() {
    for kind in datasets() {
        let ctx = context(kind);
        // Positive pairs for alignment: validation (context → target).
        let probes: Vec<_> = ctx.warm.validation.iter().take(400).cloned().collect();
        let contexts: Vec<&[usize]> = probes.iter().map(|c| c.context.as_slice()).collect();
        let targets: Vec<usize> = probes.iter().map(|c| c.target).collect();

        let mut t = TableWriter::new(
            format!("Fig 6 ({}): final-epoch alignment / uniformity", kind.name()),
            &["Model", "l_align", "l_uniform-user", "l_uniform-item", "test N@20"],
        );
        for name in MODELS {
            eprintln!("  training {name} on {}", kind.name());
            let mut last: Option<UniformityReport> = None;
            let trained = ctx.run_warm_with_hook(name, |model, _rec| {
                let users = model.user_representations(&contexts);
                let items = model.item_representations();
                let pos = items.gather_rows(&targets);
                last = Some(UniformityReport::compute(&users, &pos, &items, 1500, 31));
            });
            let r = last.expect("at least one epoch");
            t.row(&[
                name.to_string(),
                format!("{:.3}", r.align),
                format!("{:.3}", r.uniform_user),
                format!("{:.3}", r.uniform_item),
                format!("{:.4}", trained.test_metrics.ndcg_at(20)),
            ]);
        }
        t.print();
    }
    println!(
        "Shape check: WhitenRec/WhitenRec+ should post the lowest\n\
         l_uniform-user among the four text-based rows, and user uniformity\n\
         should correlate with N@20 within that family."
    );
}
