//! Table IX: efficiency on Tools — trainable parameters and seconds/epoch
//! for UniSRec / WhitenRec / WhitenRec+ with and without ID embeddings.
//!
//! Paper reference (shape): +ID variants carry a much larger parameter
//! count (the n_items × d table) and ~10 % longer epochs; WhitenRec(+) is
//! smaller and faster than UniSRec because the whitening is pre-computed
//! and the MoE adaptor is gone.

use wr_bench::{context, m4};
use wr_data::DatasetKind;
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Tools);
    let variants = [
        "UniSRec(T)",
        "UniSRec(T+ID)",
        "WhitenRec",
        "WhitenRec(T+ID)",
        "WhitenRec+",
        "WhitenRec+(T+ID)",
    ];
    let mut t = TableWriter::new(
        "Table IX: efficiency on Tools",
        &["Model", "#Params", "s/Epoch", "best N@20", "test R@20"],
    );
    for name in variants {
        eprintln!("  training {name}");
        let trained = ctx.run_warm(name);
        t.row(&[
            name.to_string(),
            format!("{}", trained.report.param_count),
            format!("{:.2}", trained.report.seconds_per_epoch()),
            format!("{:.4}", trained.report.best_valid_ndcg),
            m4(trained.test_metrics.recall_at(20)),
        ]);
    }
    t.print();
    println!(
        "Shape check: each (T+ID) variant adds n_items×d parameters and\n\
         slightly longer epochs; WhitenRec(+) < UniSRec in both columns\n\
         (paper: 1.4M vs 2.9M params, 63-64 vs 90 s/epoch)."
    );
}
