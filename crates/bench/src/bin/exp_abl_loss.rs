//! Ablation of our own design choice: the prediction-layer objective.
//!
//! The paper trains with the full-catalog softmax (Eq. 1), which is what
//! its whitening analysis assumes — logits against *every* item. This
//! ablation checks how much of WhitenRec's quality survives under the
//! production-scale approximations (sampled softmax, BPR), where most
//! items are never contrasted in a given step.

use wr_bench::{context, m4};
use wr_data::DatasetKind;
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_tensor::Rng64;
use wr_train::{fit, Adam, AdamConfig};
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Arts);
    let z = zoo::whiten_full(&ctx.dataset.embeddings);
    let mut t = TableWriter::new(
        "Ablation: prediction-layer objective for WhitenRec (Arts)",
        &["Loss", "R@20", "N@20", "s/epoch"],
    );
    let losses: [(&str, LossKind); 4] = [
        ("full softmax", LossKind::Softmax),
        ("sampled-64", LossKind::SampledSoftmax { negatives: 64 }),
        ("sampled-8", LossKind::SampledSoftmax { negatives: 8 }),
        ("BPR", LossKind::Bpr),
    ];
    for (name, loss) in losses {
        eprintln!("  loss = {name}");
        let cfg = ModelConfig::default();
        let mut rng = Rng64::seed_from(cfg.seed);
        let mut model = SasRec::new(
            format!("WhitenRec@{name}"),
            Box::new(TextTower::new(z.clone(), cfg.dim, cfg.proj_layers, &mut rng)),
            loss,
            cfg,
            &mut rng,
        );
        let mut opt = Adam::new(AdamConfig {
            lr: 1e-3,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        });
        let report = fit(
            &mut model,
            &mut opt,
            ctx.warm.train.clone(),
            &ctx.warm.validation[..ctx.warm.validation.len().min(1000)],
            ctx.train_config,
            |_, _| {},
        );
        let metrics = ctx.evaluate(&model, &ctx.warm.test[..ctx.warm.test.len().min(1000)]);
        t.row(&[
            name.to_string(),
            m4(metrics.recall_at(20)),
            m4(metrics.ndcg_at(20)),
            format!("{:.2}", report.seconds_per_epoch()),
        ]);
    }
    t.print();
    println!(
        "Expected: full softmax best (it is what the paper's analysis\n\
         assumes); sampled-64 close behind; BPR weakest but cheapest."
    );
}
