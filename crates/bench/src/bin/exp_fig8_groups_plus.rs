//! Fig. 8: WhitenRec+ performance by the relaxed view's group count G
//! (the full view stays at G=1).
//!
//! Paper reference: small G performs best; very large G (overly relaxed)
//! underperforms plain WhitenRec. On Food the optimum sits at larger G.

use wr_bench::{context, datasets, m4};
use whitenrec::TableWriter;

fn main() {
    let mut t = TableWriter::new(
        "Fig 8: WhitenRec+ by relaxed G (R@20 / N@20); WhitenRec shown for reference",
        &["Dataset", "WhitenRec", "G=4", "G=8", "G=32", "G=64"],
    );
    for kind in datasets() {
        let ctx = context(kind);
        let mut cells = vec![kind.name().to_string()];
        let reference = ctx.run_warm("WhitenRec");
        cells.push(format!(
            "{}/{}",
            m4(reference.test_metrics.recall_at(20)),
            m4(reference.test_metrics.ndcg_at(20))
        ));
        for g in [4usize, 8, 32, 64] {
            if ctx.dataset.embeddings.cols() % g != 0 {
                cells.push("n/a".into());
                continue;
            }
            let trained = ctx.run_warm(&format!("WhitenRec+@G={g}"));
            cells.push(format!(
                "{}/{}",
                m4(trained.test_metrics.recall_at(20)),
                m4(trained.test_metrics.ndcg_at(20))
            ));
        }
        t.row(&cells);
    }
    t.print();
    println!(
        "Shape check: small-G ensembles should match or beat WhitenRec;\n\
         large G should fall below it (overly relaxed view adds noise)."
    );
}
