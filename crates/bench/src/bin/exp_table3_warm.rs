//! Table III: warm-start comparison of the full 13-model roster across all
//! four datasets (R@20/R@50/N@20/N@50 + paired t-test vs the best
//! baseline).
//!
//! Paper reference (shape): WhitenRec+ best everywhere, WhitenRec second
//! among text-only models; text-based sequential models beat general
//! recommenders on the Amazon datasets; on Food the general model BM3 is
//! competitive.

use wr_bench::{context, datasets, m4};
use wr_eval::paired_t_test;
use wr_models::zoo::WARM_ROSTER;
use whitenrec::TableWriter;

fn main() {
    for kind in datasets() {
        let ctx = context(kind);
        let mut t = TableWriter::new(
            format!("Table III ({}, warm start)", kind.name()),
            &["Model", "R@20", "R@50", "N@20", "N@50", "sig vs best baseline"],
        );
        let mut results = Vec::new();
        for name in WARM_ROSTER {
            eprintln!("  training {name} on {}", kind.name());
            let trained = ctx.run_warm(name);
            results.push((name.to_string(), trained.test_metrics));
        }
        // Best baseline by N@20 among non-WhitenRec models.
        let best_baseline = results
            .iter()
            .filter(|(n, _)| !n.starts_with("WhitenRec"))
            .max_by(|a, b| a.1.ndcg_at(20).partial_cmp(&b.1.ndcg_at(20)).unwrap())
            .map(|(n, m)| (n.clone(), m.clone()))
            .expect("baselines present");

        for (name, metrics) in &results {
            let sig = if name.starts_with("WhitenRec") {
                match paired_t_test(&metrics.per_case_ndcg, &best_baseline.1.per_case_ndcg) {
                    Some(r) if r.significant(0.01) && r.mean_difference > 0.0 => "*".to_string(),
                    Some(r) => format!("p={:.3}", r.p_value),
                    None => "-".to_string(),
                }
            } else if *name == best_baseline.0 {
                "(best baseline)".to_string()
            } else {
                String::new()
            };
            t.row(&[
                name.clone(),
                m4(metrics.recall_at(20)),
                m4(metrics.recall_at(50)),
                m4(metrics.ndcg_at(20)),
                m4(metrics.ndcg_at(50)),
                sig,
            ]);
        }
        t.print();
    }
    println!(
        "Shape check: WhitenRec+ should top every dataset; WhitenRec close\n\
         behind; SASRec(T) not reliably above SASRec(ID); UniSRec the\n\
         strongest baseline (paper Table III)."
    );
}
