//! Fig. 3: t-SNE of item text embeddings — Raw vs whitened with
//! G ∈ {1, 4, 32} on Arts.
//!
//! The paper's claim is visual: raw embeddings clump (anisotropic cone),
//! G=1 spreads them uniformly/spherically, larger G re-clusters. We emit
//! both the 2-D coordinates (head) and a numeric *dispersion* statistic
//! (nearest-neighbour uniformity ratio: ≈1 uniform, ≪1 clustered) so the
//! claim is machine-checkable.

use wr_bench::context;
use wr_data::DatasetKind;
use wr_eval::{radial_dispersion, tsne_2d, TsneConfig};
use wr_tensor::Tensor;
use wr_whiten::{group_whiten, WhiteningMethod, DEFAULT_EPS};
use whitenrec::TableWriter;

fn main() {
    let ctx = context(DatasetKind::Arts);
    let emb = &ctx.dataset.embeddings;
    // Sample down for the O(n²) exact t-SNE.
    let n = emb.rows().min(300);
    let idx: Vec<usize> = (0..n).map(|i| i * emb.rows() / n).collect();
    let sample = emb.gather_rows(&idx);

    let mut t = TableWriter::new(
        "Fig 3: t-SNE dispersion of item embeddings (Arts sample)",
        &["Setting", "NN-uniformity (1=uniform, <<1=clustered)", "first 3 points (x,y)"],
    );

    let mut run = |name: &str, x: &Tensor| {
        let y = tsne_2d(
            x,
            TsneConfig {
                perplexity: 20.0,
                iterations: 220,
                ..TsneConfig::default()
            },
        );
        let disp = radial_dispersion(&y);
        let pts: Vec<String> = (0..3)
            .map(|r| format!("({:.1},{:.1})", y.at2(r, 0), y.at2(r, 1)))
            .collect();
        t.row(&[name.to_string(), format!("{disp:.3}"), pts.join(" ")]);
        disp
    };

    let raw = run("Raw", &sample);
    let g1 = run("G=1", &group_whiten(&sample, 1, WhiteningMethod::Zca, DEFAULT_EPS));
    let g4 = run("G=4", &group_whiten(&sample, 4, WhiteningMethod::Zca, DEFAULT_EPS));
    let g32 = run("G=32", &group_whiten(&sample, 32, WhiteningMethod::Zca, DEFAULT_EPS));

    t.print();
    println!(
        "Shape check: G=1 should score the highest uniformity; Raw and G=32\n\
         lower (clustered). Measured: Raw {raw:.3}, G=1 {g1:.3}, G=4 {g4:.3}, G=32 {g32:.3}"
    );
}
