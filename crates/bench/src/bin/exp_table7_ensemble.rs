//! Table VII: ensemble strategies for WhitenRec+ — Sum, Concat, Attn.
//!
//! Paper reference (shape): Sum and Attn comparable, both above Concat on
//! the Amazon datasets; all three close on Food.

use wr_bench::{context, datasets, m4};
use whitenrec::TableWriter;

fn main() {
    let modes = ["Sum", "Concat", "Attn"];
    let mut rows: Vec<Vec<String>> = modes.iter().map(|m| vec![m.to_string()]).collect();
    for kind in datasets() {
        let ctx = context(kind);
        for (i, mode) in modes.iter().enumerate() {
            eprintln!("  ensemble {mode} on {}", kind.name());
            let trained = ctx.run_warm(&format!("WhitenRec+@{mode}"));
            rows[i].push(format!(
                "{}/{}",
                m4(trained.test_metrics.recall_at(20)),
                m4(trained.test_metrics.ndcg_at(20))
            ));
        }
    }
    let kinds = wr_bench::datasets();
    let mut header = vec!["Ensemble".to_string()];
    header.extend(kinds.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new(
        "Table VII: ensemble methods for WhitenRec+ (R@20 / N@20)",
        &header_refs,
    );
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("Shape check: Sum ≥ Attn > Concat on the Amazon-style datasets.");
}
