//! Shared plumbing for the experiment binaries (`exp_*`).
//!
//! Every binary regenerates one table or figure of the paper as text. The
//! harness runs at a reduced scale sized for a single CPU core; set
//! `WR_SCALE` (default 0.25, multiplier on the ~1/10-of-paper presets) and
//! `WR_EPOCHS` (default 15) to trade fidelity for time.

use whitenrec::models::ModelConfig;
use whitenrec::ExperimentContext;
use wr_data::DatasetKind;

pub mod harness;

/// Harness-wide scale, from `WR_SCALE` (default 0.25).
pub fn scale() -> f32 {
    std::env::var("WR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Harness-wide epoch cap, from `WR_EPOCHS` (default 15).
pub fn max_epochs() -> usize {
    std::env::var("WR_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15)
}

/// Datasets to sweep, from `WR_DATASETS` (comma-separated names; default
/// all four).
pub fn datasets() -> Vec<DatasetKind> {
    match std::env::var("WR_DATASETS") {
        Ok(s) => s
            .split(',')
            .map(|name| match name.trim() {
                "Arts" => DatasetKind::Arts,
                "Toys" => DatasetKind::Toys,
                "Tools" => DatasetKind::Tools,
                "Food" => DatasetKind::Food,
                other => panic!("unknown dataset {other}"),
            })
            .collect(),
        Err(_) => DatasetKind::ALL.to_vec(),
    }
}

/// Catalog-size multiplier applied on top of `WR_SCALE`, from
/// `WR_ITEM_SCALE` (default 2.0). Growing the catalog at fixed users thins
/// interactions per item, reproducing the paper's overparameterized-ID
/// regime (its catalogs hold 18× more ID parameters than interactions).
pub fn item_scale() -> f32 {
    std::env::var("WR_ITEM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0)
}

/// Standard context the binaries share: preset scaled by [`scale`], epochs
/// capped by [`max_epochs`].
pub fn context(kind: DatasetKind) -> ExperimentContext {
    use whitenrec::data::DatasetSpec;
    let spec = DatasetSpec::preset(kind)
        .scaled(scale())
        .scaled_items(item_scale());
    let mut ctx = ExperimentContext::from_spec(spec);
    ctx.model_config = ModelConfig::default();
    ctx.train_config.max_epochs = max_epochs();
    ctx.train_config.patience = 4;
    ctx.eval_cap = 1200;
    eprintln!(
        "[{}] {} users, {} items, {} train seqs (scale {})",
        kind.name(),
        ctx.dataset.n_users(),
        ctx.dataset.n_items(),
        ctx.warm.train.len(),
        scale()
    );
    ctx
}

/// Format a metric to the paper's 4 decimal places.
pub fn m4(x: f32) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_formats() {
        assert_eq!(m4(0.16881), "0.1688");
        assert_eq!(m4(0.0), "0.0000");
    }

    #[test]
    fn env_defaults() {
        // Only meaningful when the harness env vars are unset.
        if std::env::var("WR_SCALE").is_err() {
            assert!((scale() - 0.25).abs() < 1e-6);
        }
        if std::env::var("WR_EPOCHS").is_err() {
            assert_eq!(max_epochs(), 15);
        }
        if std::env::var("WR_ITEM_SCALE").is_err() {
            assert!((item_scale() - 2.0).abs() < 1e-6);
        }
        if std::env::var("WR_DATASETS").is_err() {
            assert_eq!(datasets().len(), 4);
        }
    }
}
