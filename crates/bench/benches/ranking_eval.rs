//! Bench: full-catalog ranking evaluation — the leave-one-out protocol's
//! per-case cost (no sampled negatives, as in the paper).

use wr_bench::harness::{black_box, Harness};
use wr_eval::rank_of_target;
use wr_tensor::{Rng64, Tensor};

fn main() {
    let mut h = Harness::new("ranking_eval");
    let mut rng = Rng64::seed_from(1);
    for n_items in [1000usize, 10_000, 40_000] {
        let scores = Tensor::randn(&[1, n_items], &mut rng);
        let history: Vec<usize> = (0..50).map(|i| i * (n_items / 60)).collect();
        h.bench(format!("rank_of_target/{n_items}"), || {
            black_box(rank_of_target(scores.row(0), n_items / 2, &history));
        });
    }

    // The other half of evaluation cost: users × itemsᵀ.
    let mut rng = Rng64::seed_from(2);
    for &(users, items, d) in &[(256usize, 1000usize, 32usize), (256, 5000, 64)] {
        let u = Tensor::randn(&[users, d], &mut rng);
        let v = Tensor::randn(&[items, d], &mut rng);
        h.bench(format!("score_users_items/{users}x{items}x{d}"), || {
            black_box(u.matmul_nt(&v));
        });
    }
    h.finish();
}
