//! Criterion bench: full-catalog ranking evaluation — the leave-one-out
//! protocol's per-case cost (no sampled negatives, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wr_eval::rank_of_target;
use wr_tensor::{Rng64, Tensor};

fn bench_rank_of_target(c: &mut Criterion) {
    let mut rng = Rng64::seed_from(1);
    let mut group = c.benchmark_group("rank_of_target");
    for n_items in [1000usize, 10_000, 40_000] {
        let scores = Tensor::randn(&[1, n_items], &mut rng);
        let history: Vec<usize> = (0..50).map(|i| i * (n_items / 60)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_items), &(), |b, _| {
            b.iter(|| rank_of_target(scores.row(0), n_items / 2, &history));
        });
    }
    group.finish();
}

fn bench_score_matmul(c: &mut Criterion) {
    // The other half of evaluation cost: users × itemsᵀ.
    let mut rng = Rng64::seed_from(2);
    let mut group = c.benchmark_group("score_users_items");
    group.sample_size(20);
    for &(users, items, d) in &[(256usize, 1000usize, 32usize), (256, 5000, 64)] {
        let u = Tensor::randn(&[users, d], &mut rng);
        let v = Tensor::randn(&[items, d], &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{users}x{items}x{d}")),
            &(),
            |b, _| {
                b.iter(|| u.matmul_nt(&v));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rank_of_target, bench_score_matmul);
criterion_main!(benches);
