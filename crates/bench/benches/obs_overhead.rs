//! Bench: what the telemetry substrate costs on the serving hot path
//! (ISSUE 9).
//!
//! Replays the same 2048-query seeded Zipf trace through a 3-shard
//! gateway three ways:
//!
//! 1. `off` — no telemetry attached: the raw micro-batched serve loop.
//! 2. `on` — full instrumentation attached: per-shard fault counters,
//!    latency histograms, batch/shard spans with deterministic
//!    [`wr_obs::TraceContext`] ids, write-only flight-note branches.
//! 3. `on_tracing_recorder` — instrumentation *plus* the replay harness
//!    on top: the `gateway.latency_ms` histogram with per-bucket trace-id
//!    exemplars, the replay span export, and an **armed** flight recorder
//!    (dump path configured, ring live; a healthy replay never triggers,
//!    so this prices exactly the always-on cost the serving contract
//!    promises is write-only).
//!
//! The gate: all three configurations must produce the identical
//! `top1_checksum` — telemetry is strictly write-only, so attaching it
//! may cost time but can never move a result bit. The report records the
//! measured deltas (`overhead_on_pct`, `overhead_full_pct`, min-latency
//! estimator) next to the machine shape; the auto-recorded
//! `single_cpu_caveat` meta marks runs where QPS collapses to serial
//! behaviour and should not be compared against multi-core reports.
//!
//! `WR_BENCH_OUT=BENCH_pr9.json cargo bench --bench obs_overhead`
//! regenerates the checked-in report.

use wr_bench::harness::{black_box, Harness};
use wr_gateway::{replay_gateway, Gateway, GatewayConfig, GatewayResponse};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_obs::Telemetry;
use wr_serve::{top1_digest, QueryLog, Request, ServeConfig};
use wr_tensor::{Rng64, Tensor};

const N_ITEMS: usize = 512;
const MAX_SEQ: usize = 8;
const N_SHARDS: usize = 3;
const QUERIES: usize = 2048;
const MAX_BATCH: usize = 32;
const K: usize = 10;

/// The serving configuration under test: whitened text table →
/// projection tower → SASRec encoder, sharded across three catalogs.
fn whitenrec_model(seed: u64) -> Box<SasRec> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 1,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-obs-overhead",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn gateway() -> Gateway {
    Gateway::partitioned(
        whitenrec_model(31),
        N_SHARDS,
        GatewayConfig {
            serve: ServeConfig {
                k: K,
                max_batch: MAX_BATCH,
                max_seq: MAX_SEQ,
                filter_seen: true,
            },
            ..GatewayConfig::default()
        },
    )
    .expect("gateway construction")
}

/// The replay loop without the replay harness: micro-batch groups of
/// `MAX_BATCH`, exactly how `replay_gateway` packs them, but with no
/// clock reads, no histogram, no exemplars — so `off` and `on` time the
/// gateway itself and only the third row adds the harness.
fn serve_loop(gw: &Gateway, queries: &[Request]) -> Vec<GatewayResponse> {
    let mut responses = Vec::with_capacity(queries.len());
    for group in queries.chunks(MAX_BATCH) {
        responses.extend(gw.serve(group));
    }
    responses
}

fn checksum(responses: &[GatewayResponse]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

fn main() {
    let mut h = Harness::new("obs_overhead");
    h.meta("queries", QUERIES as f64);
    h.meta("n_items", N_ITEMS as f64);
    h.meta("shards", N_SHARDS as f64);
    h.meta("max_batch", MAX_BATCH as f64);
    h.meta("k", K as f64);

    let log = QueryLog::synthetic_zipf(QUERIES, 500, N_ITEMS, MAX_SEQ + 2, 1.1, 7)
        .expect("zipf parameters are valid");

    // ---- 1. telemetry off: the un-instrumented gateway ----
    let gw_off = gateway();
    let sum_off = checksum(&serve_loop(&gw_off, &log.queries));
    let off_ns = h
        .bench(format!("replay_{QUERIES}q/off"), || {
            black_box(serve_loop(&gw_off, &log.queries));
        })
        .min_ns;
    h.annotate("instrumented", 0.0);

    // ---- 2. telemetry on: counters, histograms, spans, flight notes ----
    let tel_on = Telemetry::new();
    let gw_on = gateway().with_telemetry(tel_on.clone());
    let sum_on = checksum(&serve_loop(&gw_on, &log.queries));
    assert_eq!(
        sum_on, sum_off,
        "attaching telemetry must not move a single result bit"
    );
    let on_ns = h
        .bench(format!("replay_{QUERIES}q/on"), || {
            black_box(serve_loop(&gw_on, &log.queries));
        })
        .min_ns;
    h.annotate("instrumented", 1.0);

    // ---- 3. on + tracing + armed recorder: the full replay harness ----
    let dump = std::env::temp_dir().join(format!("wr_obs_overhead_{}.jsonl", std::process::id()));
    let tel_full = Telemetry::new();
    tel_full.flight.arm_dump(&dump);
    let gw_full = gateway().with_telemetry(tel_full.clone());
    let (_, report) = replay_gateway(&gw_full, &log, &tel_full);
    assert_eq!(
        report.top1_checksum, sum_off,
        "the instrumented replay harness must not move a single result bit"
    );
    assert_eq!(
        tel_full.flight.dumps(),
        0,
        "a healthy replay must never trigger the flight recorder"
    );
    let full_ns = h
        .bench(format!("replay_{QUERIES}q/on_tracing_recorder"), || {
            black_box(replay_gateway(&gw_full, &log, &tel_full));
        })
        .min_ns;
    h.annotate("instrumented", 1.0);
    h.annotate("recorder_armed", 1.0);
    h.annotate("qps", report.qps);
    h.annotate("p50_ms", report.p50_ms);
    h.annotate("p99_ms", report.p99_ms);
    std::fs::remove_file(&dump).ok();

    // ---- headline deltas, from the min-latency estimator ----
    let overhead_on = (on_ns - off_ns) / off_ns * 100.0;
    let overhead_full = (full_ns - off_ns) / off_ns * 100.0;
    h.meta("overhead_on_pct", overhead_on);
    h.meta("overhead_full_pct", overhead_full);
    h.meta("top1_checksum_equal", 1.0);
    eprintln!(
        "  overhead: telemetry on {overhead_on:+.2}%  on+tracing+recorder {overhead_full:+.2}%  (checksums identical)"
    );
    h.finish();
}
