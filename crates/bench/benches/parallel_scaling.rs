//! Bench: thread-scaling of the pool-backed kernels — gemm, group
//! whitening, and full-ranking evaluation at `WR_THREADS` ∈ {1, 2, 4, 8}.
//!
//! The sweep drives `wr_runtime::set_threads` directly (same knob the env
//! var feeds) so one process measures every point. Speedups are reported
//! relative to the 1-thread run of the same kernel; on a single-core
//! machine all points collapse to ≈1×, which is itself the honest number.
//!
//! `WR_BENCH_OUT=BENCH_pr1.json cargo bench --bench parallel_scaling`
//! regenerates the checked-in report.

use wr_bench::harness::{black_box, Harness};
use wr_data::EvalCase;
use wr_eval::evaluate_cases;
use wr_tensor::{Rng64, Tensor};
use wr_whiten::{group_whiten, WhiteningMethod};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Run one bench point and annotate it with the pool-utilization counter
/// deltas it produced: dispatch counts and where queued jobs actually ran
/// (worker threads vs the dispatching caller — the worker-utilization
/// signal; on a saturated pool the caller drains a share of the queue).
fn bench_with_pool_stats(h: &mut Harness, name: String, f: impl FnMut()) {
    let before = wr_runtime::pool_stats();
    h.bench(name, f);
    let after = wr_runtime::pool_stats();
    h.annotate("threads", after.threads as f64);
    h.annotate("par_dispatches", (after.par_dispatches - before.par_dispatches) as f64);
    h.annotate("seq_dispatches", (after.seq_dispatches - before.seq_dispatches) as f64);
    h.annotate("jobs_by_workers", (after.jobs_by_workers - before.jobs_by_workers) as f64);
    h.annotate("jobs_by_caller", (after.jobs_by_caller - before.jobs_by_caller) as f64);
}

fn main() {
    // Machine shape (`available_parallelism`, `single_cpu_caveat`) is
    // auto-recorded into the report meta by `Harness::new`.
    let mut h = Harness::new("parallel_scaling");
    eprintln!(
        "  (machine reports {} available threads)",
        wr_runtime::pool_stats().available_parallelism
    );

    // gemm: 1024x512 · 512x512 — the shape class behind encoder layers.
    let mut rng = Rng64::seed_from(1);
    let a = Tensor::randn(&[1024, 512], &mut rng);
    let b = Tensor::randn(&[512, 512], &mut rng);
    for t in THREAD_SWEEP {
        wr_runtime::set_threads(t);
        bench_with_pool_stats(&mut h, format!("gemm_1024x512x512/threads{t}"), || {
            black_box(a.matmul(&b));
        });
    }

    // Group whitening: 16 independent ZCA solves over a 2000x128 matrix.
    let mut rng = Rng64::seed_from(2);
    let base = Tensor::randn(&[2000, 128], &mut rng);
    let mix = Tensor::randn(&[128, 128], &mut rng)
        .scale(0.5)
        .add(&Tensor::eye(128));
    let x = base.matmul(&mix);
    for t in THREAD_SWEEP {
        wr_runtime::set_threads(t);
        bench_with_pool_stats(&mut h, format!("group_whiten_2000x128_G16/threads{t}"), || {
            black_box(group_whiten(&x, 16, WhiteningMethod::Zca, 1e-5));
        });
    }

    // Full-ranking eval: 2048 users against a 4000-item catalog.
    let mut rng = Rng64::seed_from(3);
    let n_items = 4000;
    let cases: Vec<EvalCase> = (0..2048)
        .map(|u| {
            let len = 1 + rng.below(8);
            EvalCase {
                user: u,
                context: (0..len).map(|_| rng.below(n_items)).collect(),
                target: rng.below(n_items),
            }
        })
        .collect();
    let user_vecs = Tensor::randn(&[cases.len(), 64], &mut rng);
    let item_vecs = Tensor::randn(&[n_items, 64], &mut rng);
    for t in THREAD_SWEEP {
        wr_runtime::set_threads(t);
        bench_with_pool_stats(&mut h, format!("evaluate_cases_2048x4000/threads{t}"), || {
            let mut offset = 0usize;
            let m = evaluate_cases(&cases, &[20, 50], 256, true, |contexts| {
                let rows: Vec<usize> = (offset..offset + contexts.len()).collect();
                offset += contexts.len();
                user_vecs.gather_rows(&rows).matmul_nt(&item_vecs)
            });
            black_box(m);
        });
    }
    wr_runtime::set_threads(1);

    // Speedup table vs the 1-thread point of each kernel.
    let results = h.results().to_vec();
    eprintln!("  -- speedup vs 1 thread (min times) --");
    for base in results.iter().filter(|r| r.name.ends_with("/threads1")) {
        let kernel = base.name.trim_end_matches("/threads1");
        for t in &THREAD_SWEEP[1..] {
            if let Some(r) = results.iter().find(|r| r.name == format!("{kernel}/threads{t}")) {
                eprintln!("  {:<44} x{:.2} at {t} threads", kernel, base.min_ns / r.min_ns);
            }
        }
    }
    h.finish();
}
