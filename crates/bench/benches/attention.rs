//! Bench: Transformer attention forward and forward+backward — the
//! dominant per-step cost of every sequential model in the zoo.

use wr_autograd::Graph;
use wr_bench::harness::{black_box, Harness};
use wr_nn::{causal_padding_mask, MultiHeadSelfAttention, Session, TransformerConfig, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};

fn main() {
    let mut h = Harness::new("attention");
    let mut rng = Rng64::seed_from(1);
    for &(batch, seq, dim) in &[(64usize, 20usize, 32usize), (128, 30, 64)] {
        let attn = MultiHeadSelfAttention::new(dim, 2, 0.0, &mut rng);
        let x = Tensor::randn(&[batch * seq, dim], &mut rng);
        let mask = causal_padding_mask(batch, seq, &vec![seq; batch]);
        h.bench(format!("attention_forward/b{batch}_t{seq}_d{dim}"), || {
            let g = Graph::new();
            let mut sess = Session::eval(&g);
            let xv = g.constant(x.clone());
            let y = attn.forward(&mut sess, xv, batch, seq, &mask);
            black_box(g.value(y));
        });
    }

    let mut rng = Rng64::seed_from(2);
    let config = TransformerConfig {
        dim: 32,
        heads: 2,
        blocks: 2,
        ff_mult: 2,
        max_seq: 20,
        dropout: 0.0,
        bidirectional: false,
    };
    let encoder = TransformerEncoder::new(config, &mut rng);
    let (batch, seq) = (64usize, 20usize);
    let x = Tensor::randn(&[batch * seq, 32], &mut rng);
    let lengths = vec![seq; batch];
    h.bench("encoder_fwd_bwd/b64_t20_d32_2blocks", || {
        let g = Graph::new();
        let mut sess = Session::train(&g, Rng64::seed_from(3));
        let xv = g.constant(x.clone());
        let u = encoder.forward_user(&mut sess, xv, batch, seq, &lengths);
        let loss = g.mean_all(u);
        g.backward(loss);
        black_box(g.grad(sess.bindings()[0].1));
    });
    h.finish();
}
