//! Criterion bench: Transformer attention forward and forward+backward —
//! the dominant per-step cost of every sequential model in the zoo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wr_autograd::Graph;
use wr_nn::{causal_padding_mask, MultiHeadSelfAttention, Session, TransformerConfig, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};

fn bench_attention_forward(c: &mut Criterion) {
    let mut rng = Rng64::seed_from(1);
    let mut group = c.benchmark_group("attention_forward");
    group.sample_size(20);
    for &(batch, seq, dim) in &[(64usize, 20usize, 32usize), (128, 30, 64)] {
        let attn = MultiHeadSelfAttention::new(dim, 2, 0.0, &mut rng);
        let x = Tensor::randn(&[batch * seq, dim], &mut rng);
        let mask = causal_padding_mask(batch, seq, &vec![seq; batch]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_t{seq}_d{dim}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let g = Graph::new();
                    let mut sess = Session::eval(&g);
                    let xv = g.constant(x.clone());
                    let y = attn.forward(&mut sess, xv, batch, seq, &mask);
                    g.value(y)
                });
            },
        );
    }
    group.finish();
}

fn bench_encoder_train_step(c: &mut Criterion) {
    let mut rng = Rng64::seed_from(2);
    let config = TransformerConfig {
        dim: 32,
        heads: 2,
        blocks: 2,
        ff_mult: 2,
        max_seq: 20,
        dropout: 0.0,
        bidirectional: false,
    };
    let encoder = TransformerEncoder::new(config, &mut rng);
    let (batch, seq) = (64usize, 20usize);
    let x = Tensor::randn(&[batch * seq, 32], &mut rng);
    let lengths = vec![seq; batch];

    let mut group = c.benchmark_group("encoder_fwd_bwd");
    group.sample_size(10);
    group.bench_function("b64_t20_d32_2blocks", |b| {
        b.iter(|| {
            let g = Graph::new();
            let mut sess = Session::train(&g, Rng64::seed_from(3));
            let xv = g.constant(x.clone());
            let u = encoder.forward_user(&mut sess, xv, batch, seq, &lengths);
            let loss = g.mean_all(u);
            g.backward(loss);
            g.grad(sess.bindings()[0].1)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_attention_forward, bench_encoder_train_step);
criterion_main!(benches);
