//! Bench: one full training step per model family — the numbers behind
//! Table IX's `s/Epoch` column (epoch cost = steps × this).

use wr_bench::harness::{black_box, Harness};
use wr_data::Batch;
use wr_models::{zoo, ModelConfig};
use wr_tensor::{Rng64, Tensor};
use wr_train::{Adam, AdamConfig};

fn main() {
    let mut rng = Rng64::seed_from(5);
    let n_items = 500;
    let embeddings = Tensor::randn(&[n_items, 128], &mut rng);
    let categories: Vec<usize> = (0..n_items).map(|i| i % 12).collect();
    let sequences: Vec<Vec<usize>> = (0..64)
        .map(|u| (0..8).map(|t| (u * 13 + t * 7) % n_items).collect())
        .collect();
    let inputs = zoo::ZooInputs {
        embeddings: &embeddings,
        item_categories: &categories,
        train_sequences: &sequences,
        relaxed_groups: 4,
    };
    let config = ModelConfig::default();
    let refs: Vec<&[usize]> = sequences.iter().map(|s| s.as_slice()).collect();
    let batch = Batch::from_sequences(&refs, config.max_seq);

    let mut h = Harness::new("train_epoch");
    for name in [
        "SASRec(ID)",
        "SASRec(T)",
        "UniSRec(T)",
        "UniSRec(T+ID)",
        "WhitenRec",
        "WhitenRec+",
        "WhitenRec+(T+ID)",
    ] {
        let mut step_rng = Rng64::seed_from(6);
        let mut model = zoo::build(name, &inputs, config, &mut step_rng);
        let mut opt = Adam::new(AdamConfig::default());
        h.bench(format!("train_step/{name}"), || {
            black_box(model.train_step(&batch, &mut opt, &mut step_rng));
        });
    }
    h.finish();
}
