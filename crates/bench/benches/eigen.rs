//! Bench: symmetric eigendecomposition and Cholesky scaling — the numeric
//! kernels behind every whitening fit.

use wr_bench::harness::{black_box, Harness};
use wr_linalg::{cholesky, pinv, sym_eig};
use wr_tensor::{Rng64, Tensor};

fn spd(n: usize) -> Tensor {
    let mut rng = Rng64::seed_from(3);
    let b = Tensor::randn(&[n + 8, n], &mut rng);
    let mut a = b.matmul_tn(&b).scale(1.0 / (n + 8) as f32);
    for i in 0..n {
        *a.at2_mut(i, i) += 0.1;
    }
    a
}

fn main() {
    let mut h = Harness::new("eigen");
    for n in [32usize, 64, 128] {
        let a = spd(n);
        h.bench(format!("sym_eig/{n}"), || {
            black_box(sym_eig(&a).unwrap());
        });
    }
    for n in [32usize, 64, 128] {
        let a = spd(n);
        h.bench(format!("cholesky/{n}"), || {
            black_box(cholesky(&a).unwrap());
        });
    }
    let mut rng = Rng64::seed_from(4);
    let a = Tensor::randn(&[200, 48], &mut rng);
    h.bench("pinv/200x48", || {
        black_box(pinv(&a).unwrap());
    });
    h.finish();
}
