//! Criterion bench: symmetric eigendecomposition and Cholesky scaling —
//! the numeric kernels behind every whitening fit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wr_linalg::{cholesky, pinv, sym_eig};
use wr_tensor::{Rng64, Tensor};

fn spd(n: usize) -> Tensor {
    let mut rng = Rng64::seed_from(3);
    let b = Tensor::randn(&[n + 8, n], &mut rng);
    let mut a = b.matmul_tn(&b).scale(1.0 / (n + 8) as f32);
    for i in 0..n {
        *a.at2_mut(i, i) += 0.1;
    }
    a
}

fn bench_eig(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eig");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| sym_eig(a).unwrap());
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(20);
    for n in [32usize, 64, 128] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| cholesky(a).unwrap());
        });
    }
    group.finish();
}

fn bench_pinv(c: &mut Criterion) {
    let mut rng = Rng64::seed_from(4);
    let a = Tensor::randn(&[200, 48], &mut rng);
    let mut group = c.benchmark_group("pinv");
    group.sample_size(10);
    group.bench_function("200x48", |b| {
        b.iter(|| pinv(&a).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_eig, bench_cholesky, bench_pinv);
criterion_main!(benches);
