//! Criterion bench: whitening transform fit+apply across methods and
//! matrix sizes (backs the §IV-E claim that whitening is a cheap,
//! pre-computable step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wr_tensor::{Rng64, Tensor};
use wr_whiten::{group_whiten, WhiteningMethod, WhiteningTransform};

fn anisotropic(n: usize, d: usize) -> Tensor {
    let mut rng = Rng64::seed_from(1);
    let base = Tensor::randn(&[n, d], &mut rng);
    let mix = Tensor::randn(&[d, d], &mut rng).scale(0.5).add(&Tensor::eye(d));
    base.matmul(&mix)
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("whitening_fit_apply");
    group.sample_size(10);
    for &(n, d) in &[(1000usize, 64usize), (2000, 128)] {
        let x = anisotropic(n, d);
        for method in WhiteningMethod::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("{n}x{d}")),
                &x,
                |b, x| {
                    b.iter(|| WhiteningTransform::fit(x, method, 1e-5).apply(x));
                },
            );
        }
    }
    group.finish();
}

fn bench_group_whitening(c: &mut Criterion) {
    let x = anisotropic(1500, 128);
    let mut group = c.benchmark_group("group_whitening");
    group.sample_size(10);
    for g in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| group_whiten(&x, g, WhiteningMethod::Zca, 1e-5));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_group_whitening);
criterion_main!(benches);
