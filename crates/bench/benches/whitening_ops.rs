//! Bench: whitening transform fit+apply across methods and matrix sizes
//! (backs the §IV-E claim that whitening is a cheap, pre-computable step).

use wr_bench::harness::Harness;
use wr_tensor::{Rng64, Tensor};
use wr_whiten::{group_whiten, WhiteningMethod, WhiteningTransform};

fn anisotropic(n: usize, d: usize) -> Tensor {
    let mut rng = Rng64::seed_from(1);
    let base = Tensor::randn(&[n, d], &mut rng);
    let mix = Tensor::randn(&[d, d], &mut rng).scale(0.5).add(&Tensor::eye(d));
    base.matmul(&mix)
}

fn main() {
    let mut h = Harness::new("whitening_ops");
    for &(n, d) in &[(1000usize, 64usize), (2000, 128)] {
        let x = anisotropic(n, d);
        for method in WhiteningMethod::ALL {
            h.bench(format!("fit_apply/{}/{n}x{d}", method.name()), || {
                WhiteningTransform::fit(&x, method, 1e-5).apply(&x);
            });
        }
    }
    let x = anisotropic(1500, 128);
    for g in [1usize, 4, 16, 64] {
        h.bench(format!("group_whitening/G{g}"), || {
            group_whiten(&x, g, WhiteningMethod::Zca, 1e-5);
        });
    }
    h.finish();
}
