//! Bench: the IVF accuracy/throughput frontier (ISSUE 6).
//!
//! Sweeps `nprobe` over a fixed index and replays the same seeded query
//! trace at every point, recording QPS, latency percentiles, recall@20
//! against the exact dense scorer, and the telemetry-counted fraction of
//! catalog rows actually scanned. The endpoints anchor the curve:
//! `nprobe = nlist` is bit-identical to exact (same `top1_checksum`), and
//! small `nprobe` buys throughput with a measured recall cost.
//!
//! The suite *enforces* the PR's frontier gate, and records the winning
//! point in the report meta: some `nprobe < nlist/4` must reach
//! recall@20 ≥ 0.99 while scanning ≤ 1/4 of the catalog. The workload
//! mirrors `crates/serve/tests/ann_differential.rs` (whitened table →
//! projection tower → SASRec), where the same gate is pinned as a test.
//!
//! `WR_BENCH_OUT=BENCH_pr6.json cargo bench --bench ann_frontier`
//! regenerates the checked-in report.

use std::sync::Arc;

use wr_bench::harness::{black_box, Harness};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{replay, QueryLog, Response, Scorer, ServeConfig, ServeEngine};
use wr_tensor::{Rng64, Tensor};

const N_ITEMS: usize = 2048;
const MAX_SEQ: usize = 10;
const NLIST: usize = 128;
const K: usize = 20;
const QUERIES: usize = 256;
const NPROBE_SWEEP: [usize; 8] = [1, 2, 4, 8, 16, 31, 64, NLIST];

/// Same serving configuration as the differential suite: whitened text
/// table → projection tower → SASRec encoder.
fn whitenrec_model(seed: u64) -> Box<SasRec> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 1,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-ann-frontier",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn exact_engine() -> ServeEngine {
    ServeEngine::new(
        whitenrec_model(31),
        ServeConfig {
            k: K,
            max_batch: 32,
            max_seq: MAX_SEQ,
            filter_seen: true,
        },
    )
}

fn recall_vs(exact: &[Response], approx: &[Response]) -> f64 {
    let (mut hits, mut total) = (0usize, 0usize);
    for (e, a) in exact.iter().zip(approx) {
        total += e.items.len();
        for want in &e.items {
            if a.items.iter().any(|got| got.item == want.item) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

fn main() {
    let mut h = Harness::new("ann_frontier");
    h.meta("n_items", N_ITEMS as f64);
    h.meta("nlist", NLIST as f64);
    h.meta("queries", QUERIES as f64);
    h.meta("k", K as f64);

    let log = QueryLog::synthetic(QUERIES, N_ITEMS, MAX_SEQ + 3, 43);
    let exact = exact_engine();
    let index = Arc::new(exact.cache().build_ivf(NLIST, 7).unwrap());
    eprintln!(
        "  index: {} lists over {} items (max list {})",
        index.nlist(),
        index.n_items(),
        index.max_list_len()
    );

    let (exact_resp, exact_report) = replay(&exact, &log);

    // Frontier point: cheapest nprobe < nlist/4 clearing the recall gate
    // on a quarter-catalog scan budget.
    let mut frontier: Option<(usize, f64, f64)> = None;
    for nprobe in NPROBE_SWEEP {
        let tel = wr_obs::Telemetry::new();
        let engine = exact_engine()
            .with_ann(index.clone(), nprobe)
            .with_telemetry(tel.clone());
        assert_eq!(engine.scorer(), Scorer::Ivf { nprobe });

        // One stats replay: recall, scan budget, checksum, serve-side
        // latency percentiles. The counter delta is taken around this
        // replay only, so harness timing iterations don't pollute it.
        let before = tel.registry.counter("serve.ann.rows_scanned").get();
        let (resp, report) = replay(&engine, &log);
        let scanned = tel.registry.counter("serve.ann.rows_scanned").get() - before;
        let recall = recall_vs(&exact_resp, &resp);
        let scan_fraction = scanned as f64 / (QUERIES * N_ITEMS) as f64;
        if nprobe == NLIST {
            assert_eq!(
                report.top1_checksum, exact_report.top1_checksum,
                "full probe must be bit-identical to the exact scorer"
            );
        }
        if nprobe < NLIST / 4 && recall >= 0.99 && scan_fraction <= 0.25 && frontier.is_none() {
            frontier = Some((nprobe, recall, scan_fraction));
        }

        h.bench(format!("replay_{QUERIES}q/nprobe{nprobe}"), || {
            black_box(replay(&engine, &log));
        });
        h.annotate("nprobe", nprobe as f64);
        h.annotate("qps", report.qps);
        h.annotate("p50_ms", report.p50_ms);
        h.annotate("p95_ms", report.p95_ms);
        h.annotate("p99_ms", report.p99_ms);
        h.annotate("recall_at_20", recall);
        h.annotate("rows_scanned", scanned as f64);
        h.annotate("scan_fraction", scan_fraction);
        eprintln!(
            "    nprobe {nprobe:>3}: recall@{K} {recall:.4}  scan {:.1}%  {:.0} qps",
            scan_fraction * 100.0,
            report.qps
        );
    }

    // The exact dense scorer as the frontier's reference row.
    h.bench(format!("replay_{QUERIES}q/exact"), || {
        black_box(replay(&exact, &log));
    });
    h.annotate("qps", exact_report.qps);
    h.annotate("p50_ms", exact_report.p50_ms);
    h.annotate("p95_ms", exact_report.p95_ms);
    h.annotate("p99_ms", exact_report.p99_ms);
    h.annotate("recall_at_20", 1.0);
    h.annotate("scan_fraction", 1.0);

    let (nprobe, recall, fraction) = frontier.expect(
        "frontier gate failed: no nprobe < nlist/4 reached recall@20 >= 0.99 \
         on a quarter-catalog scan budget",
    );
    eprintln!(
        "  frontier: nprobe {nprobe}/{NLIST} -> recall@{K} {recall:.4} at {:.1}% of rows",
        fraction * 100.0
    );
    h.meta("frontier_nprobe", nprobe as f64);
    h.meta("frontier_recall_at_20", recall);
    h.meta("frontier_scan_fraction", fraction);
    h.finish();
}
