//! Leave-one-out warm split and the 15 % cold-item split.

use wr_tensor::Rng64;

/// One evaluation case: the model sees `context` and must rank `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalCase {
    pub user: usize,
    pub context: Vec<usize>,
    pub target: usize,
}

/// Warm-start leave-one-out split (§V-A3): per user, last item → test,
/// second-to-last → validation, rest → training.
#[derive(Debug, Clone)]
pub struct WarmSplit {
    /// Training sequences (the per-user prefix).
    pub train: Vec<Vec<usize>>,
    pub validation: Vec<EvalCase>,
    pub test: Vec<EvalCase>,
}

/// Split sequences with the leave-one-out protocol. Users with fewer than
/// 3 interactions cannot produce all three parts and are skipped.
pub fn warm_split(sequences: &[Vec<usize>]) -> WarmSplit {
    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();
    for (user, seq) in sequences.iter().enumerate() {
        if seq.len() < 3 {
            continue;
        }
        let n = seq.len();
        train.push(seq[..n - 2].to_vec());
        validation.push(EvalCase {
            user,
            context: seq[..n - 2].to_vec(),
            target: seq[n - 2],
        });
        test.push(EvalCase {
            user,
            context: seq[..n - 1].to_vec(),
            target: seq[n - 1],
        });
    }
    WarmSplit {
        train,
        validation,
        test,
    }
}

/// Cold-start split (§V-A3, following the paper's ref. \[54\]): a random 15 % of items become
/// "cold" — every interaction with them is removed from training; sequences
/// whose *target* is cold form the validation/test sets.
#[derive(Debug, Clone)]
pub struct ColdSplit {
    /// Training sequences with all cold items removed.
    pub train: Vec<Vec<usize>>,
    /// Eval cases whose target is a cold item; contexts contain only warm
    /// items (cold context items are dropped — the model can't embed IDs it
    /// never saw, and text models handle them through the frozen table).
    pub validation: Vec<EvalCase>,
    pub test: Vec<EvalCase>,
    /// Cold flag per item id.
    pub is_cold: Vec<bool>,
}

/// Build a cold split over `n_items` items. `fraction` ≈ 0.15 in the paper.
pub fn cold_split(sequences: &[Vec<usize>], n_items: usize, fraction: f32, seed: u64) -> ColdSplit {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
    let mut rng = Rng64::seed_from(seed);
    let mut ids: Vec<usize> = (0..n_items).collect();
    rng.shuffle(&mut ids);
    let n_cold = ((n_items as f32) * fraction).round() as usize;
    let mut is_cold = vec![false; n_items];
    for &i in ids.iter().take(n_cold) {
        is_cold[i] = true;
    }

    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();
    for (user, seq) in sequences.iter().enumerate() {
        // Eval: positions whose item is cold, with a warm-only context.
        let cold_positions: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(p, &i)| is_cold[i] && *p >= 2)
            .map(|(p, _)| p)
            .collect();
        // Alternate cold targets between validation and test.
        for (k, &p) in cold_positions.iter().enumerate() {
            let context: Vec<usize> = seq[..p].iter().cloned().filter(|&i| !is_cold[i]).collect();
            if context.len() < 2 {
                continue;
            }
            let case = EvalCase {
                user,
                context,
                target: seq[p],
            };
            if k % 2 == 0 {
                test.push(case);
            } else {
                validation.push(case);
            }
        }
        // Train on the warm-only sequence.
        let warm: Vec<usize> = seq.iter().cloned().filter(|&i| !is_cold[i]).collect();
        if warm.len() >= 3 {
            // Keep the leave-one-out discipline: last two warm items are
            // reserved (they seed the warm validation protocol elsewhere).
            train.push(warm[..warm.len() - 2].to_vec());
        }
    }

    ColdSplit {
        train,
        validation,
        test,
        is_cold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_split_structure() {
        let seqs = vec![vec![1, 2, 3, 4, 5], vec![7, 8], vec![4, 5, 6]];
        let s = warm_split(&seqs);
        // user 1 too short
        assert_eq!(s.train.len(), 2);
        assert_eq!(s.train[0], vec![1, 2, 3]);
        assert_eq!(s.validation[0].target, 4);
        assert_eq!(s.validation[0].context, vec![1, 2, 3]);
        assert_eq!(s.test[0].target, 5);
        assert_eq!(s.test[0].context, vec![1, 2, 3, 4]);
        assert_eq!(s.train[1], vec![4]);
        assert_eq!(s.test[1].target, 6);
    }

    #[test]
    fn warm_split_targets_not_in_train_prefix_position() {
        let seqs = vec![vec![0, 1, 2, 3, 4, 5, 6]];
        let s = warm_split(&seqs);
        assert_eq!(s.train[0].len(), 5);
        assert_eq!(s.validation[0].target, 5);
        assert_eq!(s.test[0].target, 6);
    }

    #[test]
    fn cold_split_removes_cold_from_train() {
        let seqs: Vec<Vec<usize>> = (0..50)
            .map(|u| (0..10).map(|t| (u + t * 7) % 40).collect())
            .collect();
        let c = cold_split(&seqs, 40, 0.15, 3);
        let n_cold = c.is_cold.iter().filter(|&&b| b).count();
        assert_eq!(n_cold, 6); // 15% of 40
        for s in &c.train {
            for &i in s {
                assert!(!c.is_cold[i], "cold item {i} leaked into training");
            }
        }
        // All eval targets are cold; contexts are warm.
        for case in c.test.iter().chain(&c.validation) {
            assert!(c.is_cold[case.target]);
            for &i in &case.context {
                assert!(!c.is_cold[i]);
            }
            assert!(case.context.len() >= 2);
        }
        assert!(!c.test.is_empty(), "no cold test cases were produced");
    }

    #[test]
    fn cold_split_deterministic() {
        let seqs: Vec<Vec<usize>> = (0..20).map(|u| vec![u, u + 1, u + 2, u + 3, u + 4]).collect();
        let a = cold_split(&seqs, 30, 0.2, 7);
        let b = cold_split(&seqs, 30, 0.2, 7);
        assert_eq!(a.is_cold, b.is_cold);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn zero_fraction_means_no_cold() {
        let seqs = vec![vec![0, 1, 2, 3, 4]];
        let c = cold_split(&seqs, 5, 0.0, 1);
        assert!(c.is_cold.iter().all(|&b| !b));
        assert!(c.test.is_empty());
        assert_eq!(c.train[0], vec![0, 1, 2]);
    }
}
