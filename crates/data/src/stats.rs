//! Dataset statistics (Table II).

/// The row format of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub n_users: usize,
    pub n_items: usize,
    pub n_interactions: usize,
    /// Average user-sequence length ("Avg. n").
    pub avg_seq_len: f32,
    /// Average actions per item ("Avg. i").
    pub avg_item_actions: f32,
}

/// Compute Table II statistics for a set of sequences over `n_items` items.
pub fn dataset_stats(sequences: &[Vec<usize>], n_items: usize) -> DatasetStats {
    let n_users = sequences.len();
    let n_interactions: usize = sequences.iter().map(Vec::len).sum();
    DatasetStats {
        n_users,
        n_items,
        n_interactions,
        avg_seq_len: if n_users == 0 {
            0.0
        } else {
            n_interactions as f32 / n_users as f32
        },
        avg_item_actions: if n_items == 0 {
            0.0
        } else {
            n_interactions as f32 / n_items as f32
        },
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} users, {} items, {} inter., avg n {:.2}, avg i {:.2}",
            self.n_users, self.n_items, self.n_interactions, self.avg_seq_len, self.avg_item_actions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let seqs = vec![vec![0, 1, 2], vec![1, 2, 0, 1]];
        let s = dataset_stats(&seqs, 3);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.n_items, 3);
        assert_eq!(s.n_interactions, 7);
        assert!((s.avg_seq_len - 3.5).abs() < 1e-6);
        assert!((s.avg_item_actions - 7.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset() {
        let s = dataset_stats(&[], 0);
        assert_eq!(s.avg_seq_len, 0.0);
        assert_eq!(s.avg_item_actions, 0.0);
    }

    #[test]
    fn display() {
        let s = dataset_stats(&[vec![0, 1]], 2);
        assert!(s.to_string().contains("1 users"));
    }
}
