//! Persist materialized datasets so experiments can share one generation.
//!
//! Writers are crash-safe: the full artifact is built in memory, sealed
//! with a `#crc32:` integrity footer line, and landed via
//! `wr_fault::write_atomic` (temp file → fsync → rename). A `kill -9`
//! mid-save leaves the previous generation, never a torn file, and a
//! bit-flipped file fails its CRC on load instead of silently feeding a
//! damaged dataset into an experiment. Loaders skip `#` comment lines and
//! accept footer-less files, so hand-written fixtures stay loadable.
//!
//! The dataset *build* path is chaos-testable like the serving path: the
//! `_with` writers thread a [`FaultInjector`] through both the per-line
//! encode step (site `data.line`, one index per sequence — an upstream
//! producer emitting a garbage row) and the final landing
//! (`wr_fault::write_atomic_with`, sites `file.write` / `file.bytes`).
//! [`load_sequences_lenient`] is the recovery side: it salvages every
//! intact line from a damaged file and *counts* what it skipped, so a
//! build pipeline can decide whether the survivors are enough — without
//! a damaged row ever mutating a surviving one.

use std::path::Path;

use wr_fault::{seal_lines, verify_lines, write_atomic, write_atomic_with, FaultInjector, NoFaults};
use wr_tensor::{json, Json, Tensor};

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Write sequences as JSON-lines (one user per line), sealed + atomic.
pub fn save_sequences(path: impl AsRef<Path>, sequences: &[Vec<usize>]) -> std::io::Result<()> {
    save_sequences_with(path, sequences, &NoFaults, 0)
}

/// [`save_sequences`] with chaos hooks: the injector may corrupt each
/// encoded line (site `"data.line"`, index = line number) *before* the
/// seal — modelling a producer that emits a damaged row, which the CRC
/// footer then faithfully covers — and may fail or mangle the landing
/// write itself (`"file.write"` / `"file.bytes"` via
/// [`write_atomic_with`], at the caller's `index`). Under
/// [`NoFaults`] this is byte-identical to [`save_sequences`].
pub fn save_sequences_with(
    path: impl AsRef<Path>,
    sequences: &[Vec<usize>],
    injector: &dyn FaultInjector,
    index: u64,
) -> std::io::Result<()> {
    let mut body = String::new();
    for (i, s) in sequences.iter().enumerate() {
        let mut line = json::usize_array_to_string(s).into_bytes();
        injector.corrupt("data.line", i as u64, &mut line);
        body.push_str(&String::from_utf8_lossy(&line));
        body.push('\n');
    }
    write_atomic_with(path, seal_lines(body).as_bytes(), injector, index)
}

/// Read sequences written by [`save_sequences`]. The integrity footer is
/// verified when present; `#` comment lines and blank lines are skipped.
pub fn load_sequences(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<usize>>> {
    let text = std::fs::read_to_string(path)?;
    let body = verify_lines(&text)?;
    let mut out = Vec::new();
    for raw in body.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seq = Json::parse(line)
            .map_err(bad_data)?
            .as_usize_vec()
            .ok_or_else(|| bad_data("sequence line is not an integer array"))?;
        out.push(seq);
    }
    Ok(out)
}

/// What [`load_sequences_lenient`] salvaged from a (possibly damaged)
/// sequence file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LenientLoad {
    /// Every line that still parsed, in file order. Damage to one line
    /// never mutates another: a surviving sequence is bit-identical to
    /// what the strict loader would have returned for it.
    pub sequences: Vec<Vec<usize>>,
    /// Lines that were present but no longer parsed as integer arrays.
    pub skipped_lines: usize,
    /// Whether the `#crc32:` integrity footer (if present) still matched.
    /// `false` means the file was damaged *after* sealing (torn flush,
    /// bit rot) — the survivors are best-effort, not producer-attested.
    pub seal_intact: bool,
}

/// Best-effort read of a sequence file: skip-and-count instead of
/// fail-fast.
///
/// Where [`load_sequences`] refuses the whole file on the first damaged
/// line (or a broken seal), this salvages every line that still parses
/// and reports how many it had to drop. Blank and `#` comment lines are
/// not damage and are skipped silently, exactly as the strict loader
/// does. Only honest I/O errors (missing file, permissions) still fail.
pub fn load_sequences_lenient(path: impl AsRef<Path>) -> std::io::Result<LenientLoad> {
    let text = std::fs::read_to_string(path)?;
    let seal_intact = verify_lines(&text).is_ok();
    let mut sequences = Vec::new();
    let mut skipped_lines = 0usize;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match Json::parse(line).ok().and_then(|j| j.as_usize_vec()) {
            Some(seq) => sequences.push(seq),
            None => skipped_lines += 1,
        }
    }
    Ok(LenientLoad {
        sequences,
        skipped_lines,
        seal_intact,
    })
}

/// Write an embedding matrix as JSON (`{dims, data}` via `wr_tensor`'s
/// JSON support), sealed + atomic.
pub fn save_embeddings(path: impl AsRef<Path>, embeddings: &Tensor) -> std::io::Result<()> {
    write_atomic(path, seal_lines(embeddings.to_json_string()).as_bytes())
}

/// [`save_embeddings`] with chaos hooks on the landing write
/// (`"file.write"` / `"file.bytes"` via [`write_atomic_with`]). The
/// matrix is one JSON document, so there is no per-row lenient recovery
/// — a damaged embedding file must fail loudly, and does (CRC footer).
pub fn save_embeddings_with(
    path: impl AsRef<Path>,
    embeddings: &Tensor,
    injector: &dyn FaultInjector,
    index: u64,
) -> std::io::Result<()> {
    write_atomic_with(
        path,
        seal_lines(embeddings.to_json_string()).as_bytes(),
        injector,
        index,
    )
}

/// Read an embedding matrix written by [`save_embeddings`]. The integrity
/// footer is verified when present.
pub fn load_embeddings(path: impl AsRef<Path>) -> std::io::Result<Tensor> {
    let text = std::fs::read_to_string(path)?;
    let body = verify_lines(&text)?;
    Tensor::from_json_str(body).map_err(bad_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_fault::Corruption;
    use wr_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wrdata_{name}_{}", std::process::id()))
    }

    /// A build-time fault: the producer emits garbage for the listed
    /// line indices at site `data.line`. Everything else is inert.
    struct TornRows(&'static [u64]);

    impl FaultInjector for TornRows {
        fn write_error(&self, _site: &str, _index: u64) -> Option<std::io::Error> {
            None
        }

        fn corrupt(&self, site: &str, index: u64, bytes: &mut Vec<u8>) -> Option<Corruption> {
            if site == "data.line" && self.0.contains(&index) {
                bytes.clear();
                bytes.extend_from_slice(b"!!torn row!!");
                return Some(Corruption::Truncated { keep: 0 });
            }
            None
        }

        fn poison(&self, _site: &str, _index: u64, _data: &mut [f32]) -> usize {
            0
        }

        fn maybe_panic(&self, _site: &str, _index: u64, _attempt: u32) {}
    }

    #[test]
    fn sequences_roundtrip() {
        let seqs = vec![vec![0usize, 3, 7], vec![], vec![42]];
        let path = tmp("seqs.jsonl");
        save_sequences(&path, &seqs).unwrap();
        let back = load_sequences(&path).unwrap();
        assert_eq!(back, seqs);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embeddings_roundtrip() {
        let mut rng = Rng64::seed_from(1);
        let e = Tensor::randn(&[7, 5], &mut rng);
        let path = tmp("emb.json");
        save_embeddings(&path, &e).unwrap();
        let back = load_embeddings(&path).unwrap();
        assert_eq!(back, e);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_files_error_cleanly() {
        let path = tmp("bad.json");
        std::fs::write(&path, "definitely not json").unwrap();
        assert!(load_embeddings(&path).is_err());
        assert!(load_sequences(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn saved_files_carry_a_verified_integrity_footer() {
        let seqs = vec![vec![1usize, 2, 3], vec![4]];
        let path = tmp("sealed.jsonl");
        save_sequences(&path, &seqs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().last().unwrap().starts_with("#crc32:"),
            "writer must seal the file"
        );
        // Any edit to a sealed file is rejected on load.
        let tampered = text.replace("[1,2,3]", "[9,2,3]");
        std::fs::write(&path, &tampered).unwrap();
        assert!(load_sequences(&path).is_err(), "tampered seal must not load");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn footerless_legacy_files_still_load() {
        let path = tmp("legacy.jsonl");
        std::fs::write(&path, "[5,6]\n# a hand-written comment\n[7]\n").unwrap();
        let back = load_sequences(&path).unwrap();
        assert_eq!(back, vec![vec![5, 6], vec![7]]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn with_writers_under_no_faults_match_the_plain_writers_byte_for_byte() {
        let seqs = vec![vec![1usize, 2, 3], vec![], vec![9, 9]];
        let plain = tmp("plain.jsonl");
        let hooked = tmp("hooked.jsonl");
        save_sequences(&plain, &seqs).unwrap();
        save_sequences_with(&hooked, &seqs, &NoFaults, 0).unwrap();
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&hooked).unwrap(),
            "NoFaults must be the identity"
        );
        let lenient = load_sequences_lenient(&hooked).unwrap();
        assert_eq!(lenient.sequences, load_sequences(&hooked).unwrap());
        assert_eq!(lenient.skipped_lines, 0);
        assert!(lenient.seal_intact);

        let mut rng = Rng64::seed_from(11);
        let e = Tensor::randn(&[3, 4], &mut rng);
        let plain_e = tmp("plain_e.json");
        let hooked_e = tmp("hooked_e.json");
        save_embeddings(&plain_e, &e).unwrap();
        save_embeddings_with(&hooked_e, &e, &NoFaults, 0).unwrap();
        assert_eq!(
            std::fs::read(&plain_e).unwrap(),
            std::fs::read(&hooked_e).unwrap()
        );
        for p in [plain, hooked, plain_e, hooked_e] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn torn_build_rows_are_skipped_and_counted_without_touching_survivors() {
        let seqs: Vec<Vec<usize>> = (0..5).map(|u| vec![u, u + 10, u + 20]).collect();
        let path = tmp("torn.jsonl");
        // Lines 1 and 3 come out of the producer as garbage; the seal is
        // computed over the damaged body, so the CRC is *consistent* —
        // this is silent build-time damage, not post-seal bit rot.
        save_sequences_with(&path, &seqs, &TornRows(&[1, 3]), 0).unwrap();
        assert!(
            load_sequences(&path).is_err(),
            "the strict loader must refuse a file with damaged rows"
        );
        let lenient = load_sequences_lenient(&path).unwrap();
        assert_eq!(lenient.skipped_lines, 2);
        assert!(lenient.seal_intact, "damage was sealed in, not bit rot");
        assert_eq!(
            lenient.sequences,
            vec![seqs[0].clone(), seqs[2].clone(), seqs[4].clone()],
            "survivors must be bit-identical and in file order"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn post_seal_damage_breaks_the_seal_but_survivors_still_salvage() {
        let seqs = vec![vec![5usize, 6], vec![7, 8], vec![9]];
        let path = tmp("rot.jsonl");
        save_sequences(&path, &seqs).unwrap();
        // Damage one line *after* sealing — the CRC no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        let rotted = text.replacen("[7,8]", "[7,8}", 1);
        assert_ne!(text, rotted, "the fixture must actually hit a line");
        std::fs::write(&path, &rotted).unwrap();
        assert!(load_sequences(&path).is_err(), "strict load must reject");
        let lenient = load_sequences_lenient(&path).unwrap();
        assert!(!lenient.seal_intact, "post-seal damage must be flagged");
        assert_eq!(lenient.skipped_lines, 1);
        assert_eq!(lenient.sequences, vec![vec![5, 6], vec![9]]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_landing_faults_hit_the_sequence_writer_too() {
        use wr_fault::{FaultPlan, FaultRates};
        let seqs = vec![vec![1usize], vec![2]];
        let path = tmp("landing.jsonl");
        save_sequences(&path, &seqs).unwrap();
        // An injected I/O error on the landing write leaves the previous
        // generation untouched (write_atomic's contract, reachable from
        // the dataset writer).
        let ioerr = FaultPlan::with_rates(
            9,
            FaultRates { io_error: 1.0, corrupt: 0.0, ..FaultRates::default() },
        );
        let doomed = vec![vec![3usize]];
        assert!(save_sequences_with(&path, &doomed, &ioerr, 0).is_err());
        assert_eq!(load_sequences(&path).unwrap(), seqs);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embeddings_reject_bit_flips() {
        let mut rng = Rng64::seed_from(3);
        let e = Tensor::randn(&[4, 2], &mut rng);
        let path = tmp("emb_flip.json");
        save_embeddings(&path, &e).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_embeddings(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
