//! Persist materialized datasets so experiments can share one generation.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use wr_tensor::{json, Json, Tensor};

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Write sequences as JSON-lines (one user per line).
pub fn save_sequences(path: impl AsRef<Path>, sequences: &[Vec<usize>]) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for s in sequences {
        writeln!(out, "{}", json::usize_array_to_string(s))?;
    }
    out.flush()
}

/// Read sequences written by [`save_sequences`].
pub fn load_sequences(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<usize>>> {
    let file = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for line in file.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let seq = Json::parse(&line)
            .map_err(bad_data)?
            .as_usize_vec()
            .ok_or_else(|| bad_data("sequence line is not an integer array"))?;
        out.push(seq);
    }
    Ok(out)
}

/// Write an embedding matrix as JSON (`{dims, data}` via `wr_tensor`'s
/// JSON support).
pub fn save_embeddings(path: impl AsRef<Path>, embeddings: &Tensor) -> std::io::Result<()> {
    std::fs::write(path, embeddings.to_json_string())
}

/// Read an embedding matrix written by [`save_embeddings`].
pub fn load_embeddings(path: impl AsRef<Path>) -> std::io::Result<Tensor> {
    let text = std::fs::read_to_string(path)?;
    Tensor::from_json_str(&text).map_err(bad_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wrdata_{name}_{}", std::process::id()))
    }

    #[test]
    fn sequences_roundtrip() {
        let seqs = vec![vec![0usize, 3, 7], vec![], vec![42]];
        let path = tmp("seqs.jsonl");
        save_sequences(&path, &seqs).unwrap();
        let back = load_sequences(&path).unwrap();
        assert_eq!(back, seqs);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embeddings_roundtrip() {
        let mut rng = Rng64::seed_from(1);
        let e = Tensor::randn(&[7, 5], &mut rng);
        let path = tmp("emb.json");
        save_embeddings(&path, &e).unwrap();
        let back = load_embeddings(&path).unwrap();
        assert_eq!(back, e);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_files_error_cleanly() {
        let path = tmp("bad.json");
        std::fs::write(&path, "definitely not json").unwrap();
        assert!(load_embeddings(&path).is_err());
        assert!(load_sequences(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
