//! Persist materialized datasets so experiments can share one generation.
//!
//! Writers are crash-safe: the full artifact is built in memory, sealed
//! with a `#crc32:` integrity footer line, and landed via
//! `wr_fault::write_atomic` (temp file → fsync → rename). A `kill -9`
//! mid-save leaves the previous generation, never a torn file, and a
//! bit-flipped file fails its CRC on load instead of silently feeding a
//! damaged dataset into an experiment. Loaders skip `#` comment lines and
//! accept footer-less files, so hand-written fixtures stay loadable.

use std::path::Path;

use wr_fault::{seal_lines, verify_lines, write_atomic};
use wr_tensor::{json, Json, Tensor};

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Write sequences as JSON-lines (one user per line), sealed + atomic.
pub fn save_sequences(path: impl AsRef<Path>, sequences: &[Vec<usize>]) -> std::io::Result<()> {
    let mut body = String::new();
    for s in sequences {
        body.push_str(&json::usize_array_to_string(s));
        body.push('\n');
    }
    write_atomic(path, seal_lines(body).as_bytes())
}

/// Read sequences written by [`save_sequences`]. The integrity footer is
/// verified when present; `#` comment lines and blank lines are skipped.
pub fn load_sequences(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<usize>>> {
    let text = std::fs::read_to_string(path)?;
    let body = verify_lines(&text)?;
    let mut out = Vec::new();
    for raw in body.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seq = Json::parse(line)
            .map_err(bad_data)?
            .as_usize_vec()
            .ok_or_else(|| bad_data("sequence line is not an integer array"))?;
        out.push(seq);
    }
    Ok(out)
}

/// Write an embedding matrix as JSON (`{dims, data}` via `wr_tensor`'s
/// JSON support), sealed + atomic.
pub fn save_embeddings(path: impl AsRef<Path>, embeddings: &Tensor) -> std::io::Result<()> {
    write_atomic(path, seal_lines(embeddings.to_json_string()).as_bytes())
}

/// Read an embedding matrix written by [`save_embeddings`]. The integrity
/// footer is verified when present.
pub fn load_embeddings(path: impl AsRef<Path>) -> std::io::Result<Tensor> {
    let text = std::fs::read_to_string(path)?;
    let body = verify_lines(&text)?;
    Tensor::from_json_str(body).map_err(bad_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wrdata_{name}_{}", std::process::id()))
    }

    #[test]
    fn sequences_roundtrip() {
        let seqs = vec![vec![0usize, 3, 7], vec![], vec![42]];
        let path = tmp("seqs.jsonl");
        save_sequences(&path, &seqs).unwrap();
        let back = load_sequences(&path).unwrap();
        assert_eq!(back, seqs);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embeddings_roundtrip() {
        let mut rng = Rng64::seed_from(1);
        let e = Tensor::randn(&[7, 5], &mut rng);
        let path = tmp("emb.json");
        save_embeddings(&path, &e).unwrap();
        let back = load_embeddings(&path).unwrap();
        assert_eq!(back, e);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_files_error_cleanly() {
        let path = tmp("bad.json");
        std::fs::write(&path, "definitely not json").unwrap();
        assert!(load_embeddings(&path).is_err());
        assert!(load_sequences(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn saved_files_carry_a_verified_integrity_footer() {
        let seqs = vec![vec![1usize, 2, 3], vec![4]];
        let path = tmp("sealed.jsonl");
        save_sequences(&path, &seqs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().last().unwrap().starts_with("#crc32:"),
            "writer must seal the file"
        );
        // Any edit to a sealed file is rejected on load.
        let tampered = text.replace("[1,2,3]", "[9,2,3]");
        std::fs::write(&path, &tampered).unwrap();
        assert!(load_sequences(&path).is_err(), "tampered seal must not load");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn footerless_legacy_files_still_load() {
        let path = tmp("legacy.jsonl");
        std::fs::write(&path, "[5,6]\n# a hand-written comment\n[7]\n").unwrap();
        let back = load_sequences(&path).unwrap();
        assert_eq!(back, vec![vec![5, 6], vec![7]]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embeddings_reject_bit_flips() {
        let mut rng = Rng64::seed_from(3);
        let e = Tensor::randn(&[4, 2], &mut rng);
        let path = tmp("emb_flip.json");
        save_embeddings(&path, &e).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_embeddings(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
