//! Five-core filtering (§V-A3: discard users and items with <5 actions).

/// Result of k-core filtering: sequences over *re-mapped* dense item ids.
#[derive(Debug, Clone)]
pub struct FilteredData {
    /// Per-user sequences with new item ids in `0..n_items()`.
    pub sequences: Vec<Vec<usize>>,
    /// `item_map[new_id] = original catalog id`.
    pub item_map: Vec<usize>,
}

impl FilteredData {
    pub fn n_items(&self) -> usize {
        self.item_map.len()
    }

    pub fn n_users(&self) -> usize {
        self.sequences.len()
    }

    pub fn n_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }
}

/// Iteratively drop users with fewer than `k` interactions and items with
/// fewer than `k` occurrences until a fixed point, then remap item ids to
/// a dense range.
pub fn five_core_filter(sequences: &[Vec<usize>], n_items: usize, k: usize) -> FilteredData {
    let mut seqs: Vec<Vec<usize>> = sequences.to_vec();
    loop {
        // Count item occurrences.
        let mut item_counts = vec![0usize; n_items];
        for s in &seqs {
            for &i in s {
                item_counts[i] += 1;
            }
        }
        let mut changed = false;
        // Drop rare items from sequences.
        for s in &mut seqs {
            let before = s.len();
            s.retain(|&i| item_counts[i] >= k);
            if s.len() != before {
                changed = true;
            }
        }
        // Drop short users entirely.
        let before_users = seqs.len();
        seqs.retain(|s| s.len() >= k);
        if seqs.len() != before_users {
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // Dense remap.
    let mut present = vec![false; n_items];
    for s in &seqs {
        for &i in s {
            present[i] = true;
        }
    }
    let mut new_id = vec![usize::MAX; n_items];
    let mut item_map = Vec::new();
    for (old, &p) in present.iter().enumerate() {
        if p {
            new_id[old] = item_map.len();
            item_map.push(old);
        }
    }
    for s in &mut seqs {
        for i in s.iter_mut() {
            *i = new_id[*i];
        }
    }

    FilteredData {
        sequences: seqs,
        item_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_rare_items_and_users() {
        // Item 9 appears once; user 2 is too short after filtering.
        let seqs = vec![
            vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2],
            vec![1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 9],
            vec![3, 3, 3],
        ];
        let f = five_core_filter(&seqs, 10, 5);
        assert_eq!(f.n_users(), 2);
        assert_eq!(f.n_items(), 3); // items 0,1,2 survive
        for s in &f.sequences {
            for &i in s {
                assert!(i < 3);
            }
        }
        // Mapping points back to original ids.
        assert_eq!(f.item_map, vec![0, 1, 2]);
    }

    #[test]
    fn fixed_point_cascades() {
        // Dropping a user can push an item below threshold, which shortens
        // another user below threshold, etc.
        let seqs = vec![
            vec![0, 0, 0, 0, 1], // user A: item 1 appears once here
            vec![1, 1, 1, 1, 2], // user B: item 1 four times here
            vec![2, 2, 2, 2, 2, 2],
        ];
        let f = five_core_filter(&seqs, 3, 5);
        // item 1 has 5 occurrences initially; dropping nothing... walk it:
        // counts: item0=4 (<5, dropped), item1=5, item2=7.
        // user A loses item0 → [1], too short, dropped → item1 count 4 → drop
        // → user B becomes [2], too short → dropped → item2 count 6 → user C ok.
        assert_eq!(f.n_users(), 1);
        assert_eq!(f.n_items(), 1);
        assert_eq!(f.item_map, vec![2]);
    }

    #[test]
    fn preserves_order_within_sequences() {
        let seqs = vec![
            vec![5, 3, 5, 3, 5, 3, 5],
            vec![3, 5, 3, 5, 3, 5, 3],
        ];
        let f = five_core_filter(&seqs, 6, 5);
        // items 3→0, 5→1
        assert_eq!(f.sequences[0], vec![1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(f.sequences[1], vec![0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn everything_survives_when_dense() {
        let seqs: Vec<Vec<usize>> = (0..10).map(|_| (0..8).collect()).collect();
        let f = five_core_filter(&seqs, 8, 5);
        assert_eq!(f.n_users(), 10);
        assert_eq!(f.n_items(), 8);
        assert_eq!(f.n_interactions(), 80);
    }

    #[test]
    fn empty_input() {
        let f = five_core_filter(&[], 5, 5);
        assert_eq!(f.n_users(), 0);
        assert_eq!(f.n_items(), 0);
    }
}
