//! Mini-batching with left padding.

use wr_tensor::Rng64;

/// Pad slot item id. Item 0 doubles as the pad filler: pad positions are
/// excluded from attention, recurrent updates, and the loss, so the filler
/// embedding never influences anything real.
pub const PAD_ITEM: usize = 0;

/// One training batch over flattened `[batch * seq]` positions.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Item ids, left-padded, row-major `[batch * seq]`.
    pub items: Vec<usize>,
    /// True sequence lengths (≤ seq).
    pub lengths: Vec<usize>,
    pub batch: usize,
    pub seq: usize,
    /// Flat row indices (into `[batch * seq]`) that carry a training loss.
    pub loss_positions: Vec<usize>,
    /// Next-item target per loss position.
    pub targets: Vec<usize>,
}

impl Batch {
    /// Build a batch from raw sequences: inputs are `seq[..len-1]`
    /// (truncated to the last `max_seq` items), targets are the successor
    /// of every input position.
    pub fn from_sequences(seqs: &[&[usize]], max_seq: usize) -> Batch {
        assert!(!seqs.is_empty(), "empty batch");
        let batch = seqs.len();
        let seq = max_seq;
        let mut items = vec![PAD_ITEM; batch * seq];
        let mut lengths = Vec::with_capacity(batch);
        let mut loss_positions = Vec::new();
        let mut targets = Vec::new();

        for (b, s) in seqs.iter().enumerate() {
            assert!(s.len() >= 2, "sequence must have ≥2 items to train on");
            // Inputs: all but last; truncate to the most recent max_seq.
            let inputs = &s[..s.len() - 1];
            let start = inputs.len().saturating_sub(seq);
            let window = &inputs[start..];
            let len = window.len();
            lengths.push(len);
            let offset = seq - len; // left padding
            for (t, &item) in window.iter().enumerate() {
                let pos = b * seq + offset + t;
                items[pos] = item;
                loss_positions.push(pos);
                targets.push(s[start + t + 1]);
            }
        }

        Batch {
            items,
            lengths,
            batch,
            seq,
            loss_positions,
            targets,
        }
    }

    /// Build an inference batch: the whole context is input, no targets.
    pub fn inference(contexts: &[&[usize]], max_seq: usize) -> Batch {
        assert!(!contexts.is_empty(), "empty batch");
        let batch = contexts.len();
        let seq = max_seq;
        let mut items = vec![PAD_ITEM; batch * seq];
        let mut lengths = Vec::with_capacity(batch);
        for (b, s) in contexts.iter().enumerate() {
            assert!(!s.is_empty(), "empty context");
            let start = s.len().saturating_sub(seq);
            let window = &s[start..];
            let len = window.len();
            lengths.push(len);
            let offset = seq - len;
            for (t, &item) in window.iter().enumerate() {
                items[b * seq + offset + t] = item;
            }
        }
        Batch {
            items,
            lengths,
            batch,
            seq,
            loss_positions: Vec::new(),
            targets: Vec::new(),
        }
    }
}

/// Shuffling mini-batch iterator over training sequences.
pub struct Batcher {
    sequences: Vec<Vec<usize>>,
    batch_size: usize,
    max_seq: usize,
}

impl Batcher {
    /// Sequences shorter than 2 items are silently dropped (nothing to
    /// predict).
    pub fn new(sequences: Vec<Vec<usize>>, batch_size: usize, max_seq: usize) -> Self {
        assert!(batch_size >= 1);
        let sequences: Vec<Vec<usize>> = sequences.into_iter().filter(|s| s.len() >= 2).collect();
        Batcher {
            sequences,
            batch_size,
            max_seq,
        }
    }

    pub fn n_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// One epoch of shuffled batches.
    pub fn epoch(&self, rng: &mut Rng64) -> Vec<Batch> {
        let mut order: Vec<usize> = (0..self.sequences.len()).collect();
        rng.shuffle(&mut order);
        order
            .chunks(self.batch_size)
            .map(|chunk| {
                let refs: Vec<&[usize]> =
                    chunk.iter().map(|&i| self.sequences[i].as_slice()).collect();
                Batch::from_sequences(&refs, self.max_seq)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_padding_layout() {
        let s1: &[usize] = &[10, 11, 12];
        let s2: &[usize] = &[20, 21, 22, 23, 24, 25];
        let b = Batch::from_sequences(&[s1, s2], 4);
        assert_eq!(b.batch, 2);
        assert_eq!(b.seq, 4);
        // s1 inputs [10,11] → padded to [P,P,10,11]
        assert_eq!(&b.items[0..4], &[PAD_ITEM, PAD_ITEM, 10, 11]);
        assert_eq!(b.lengths[0], 2);
        // s2 inputs [20..24] truncated to last 4 → [21,22,23,24]
        assert_eq!(&b.items[4..8], &[21, 22, 23, 24]);
        assert_eq!(b.lengths[1], 4);
    }

    #[test]
    fn targets_align_with_positions() {
        let s: &[usize] = &[1, 2, 3, 4];
        let b = Batch::from_sequences(&[s], 5);
        // inputs [1,2,3] at positions 2,3,4; targets 2,3,4
        assert_eq!(b.loss_positions, vec![2, 3, 4]);
        assert_eq!(b.targets, vec![2, 3, 4]);
        for (&p, &t) in b.loss_positions.iter().zip(&b.targets) {
            // target is the item after the input at p
            let input = b.items[p];
            assert_eq!(t, input + 1);
        }
    }

    #[test]
    fn truncation_keeps_most_recent() {
        let s: Vec<usize> = (0..20).collect();
        let b = Batch::from_sequences(&[&s], 5);
        // inputs are items 14..19, targets 15..20
        assert_eq!(&b.items[0..5], &[14, 15, 16, 17, 18]);
        assert_eq!(b.targets, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn inference_batch_has_full_context() {
        let c: &[usize] = &[5, 6, 7];
        let b = Batch::inference(&[c], 5);
        assert_eq!(&b.items[0..5], &[PAD_ITEM, PAD_ITEM, 5, 6, 7]);
        assert!(b.targets.is_empty());
        assert_eq!(b.lengths[0], 3);
    }

    #[test]
    fn batcher_covers_all_sequences() {
        let seqs: Vec<Vec<usize>> = (0..23).map(|u| vec![u, u + 1, u + 2]).collect();
        let batcher = Batcher::new(seqs, 5, 10);
        let mut rng = Rng64::seed_from(1);
        let batches = batcher.epoch(&mut rng);
        assert_eq!(batches.len(), 5); // 23 → 5+5+5+5+3
        let total: usize = batches.iter().map(|b| b.batch).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn batcher_drops_degenerate_sequences() {
        let seqs = vec![vec![1], vec![2, 3, 4], vec![]];
        let batcher = Batcher::new(seqs, 4, 10);
        assert_eq!(batcher.n_sequences(), 1);
    }
}
