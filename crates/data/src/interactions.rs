//! Latent-factor behaviour simulator.

use wr_tensor::{Rng64, Tensor};
use wr_textsim::Catalog;

/// Parameters of the interaction simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionConfig {
    pub n_users: usize,
    /// Sequence length sampled geometrically with this mean, clamped to
    /// `[min_len, max_len]`.
    pub mean_len: f32,
    pub min_len: usize,
    pub max_len: usize,
    /// Zipf exponent for item popularity.
    pub zipf: f32,
    /// Weight of user-preference affinity in the choice model.
    pub preference_strength: f32,
    /// Weight of similarity to the previous item (co-consumption chains).
    pub markov_strength: f32,
    /// Candidate pool size per choice (popularity-proposed, then re-scored).
    pub pool: usize,
    /// How strongly item popularity follows a text-expressible "quality"
    /// direction in semantic space (0 = popularity independent of text,
    /// 1 = fully text-determined). Real catalogs sit high: demand tracks
    /// category and product attributes, which *are* in the text — without
    /// this, text-only models face an artificial ceiling no amount of
    /// whitening can cross.
    pub popularity_text_corr: f32,
    pub seed: u64,
}

impl Default for InteractionConfig {
    fn default() -> Self {
        InteractionConfig {
            n_users: 4000,
            mean_len: 8.0,
            min_len: 5,
            max_len: 50,
            zipf: 0.55,
            preference_strength: 2.6,
            markov_strength: 1.6,
            pool: 90,
            popularity_text_corr: 0.75,
            seed: 99,
        }
    }
}

/// Generate chronological item sequences for `n_users` synthetic users.
///
/// Choice model per step: propose `pool` candidates from a Zipf popularity
/// distribution, then sample among them with weights
/// `exp(pref·sem(i)·α + sim(prev, i)·β)`.
pub fn generate_interactions(catalog: &Catalog, config: InteractionConfig) -> Vec<Vec<usize>> {
    assert!(config.n_users >= 1);
    assert!(config.min_len >= 2 && config.min_len <= config.max_len);
    let mut rng = Rng64::seed_from(config.seed);
    let n = catalog.n_items();
    let k = catalog.config.n_factors;
    let sem = normalize_rows(catalog.semantics());

    // Zipf popularity ranked by a noisy "quality" score: a mix of a fixed
    // direction in semantic space (text-expressible) and pure noise,
    // blended by `popularity_text_corr`.
    let quality_dir: Vec<f32> = (0..k).map(|_| rng.normal()).collect();
    let mut scored: Vec<(usize, f32)> = (0..n)
        .map(|i| {
            let sem_q: f32 = sem.row(i).iter().zip(&quality_dir).map(|(a, b)| a * b).sum();
            let noise = rng.normal();
            let c = config.popularity_text_corr.clamp(0.0, 1.0);
            (i, c * sem_q + (1.0 - c) * noise)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut pop = vec![0.0f32; n];
    for (rank, &(item, _)) in scored.iter().enumerate() {
        pop[item] = 1.0 / (rank as f32 + 1.0).powf(config.zipf);
    }
    let cumulative = cumulative_sum(&pop);

    let mut sequences = Vec::with_capacity(config.n_users);
    for _ in 0..config.n_users {
        // Preference = a perturbed category archetype: pick 1–2 anchor
        // categories so users are topically coherent.
        let mut pref = vec![0.0f32; k];
        for _ in 0..2 {
            let c = rng.below(catalog.config.n_categories);
            for (j, p) in pref.iter_mut().enumerate() {
                *p += catalog.category_factors.at2(c, j);
            }
        }
        let norm = pref.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        for p in &mut pref {
            *p /= norm;
        }

        let len = sample_length(&mut rng, &config);
        let mut seq: Vec<usize> = Vec::with_capacity(len);
        let mut prev: Option<usize> = None;
        for _ in 0..len {
            let mut best_pool: Vec<usize> = Vec::with_capacity(config.pool);
            for _ in 0..config.pool {
                best_pool.push(sample_from_cumulative(&cumulative, &mut rng));
            }
            let weights: Vec<f32> = best_pool
                .iter()
                .map(|&item| {
                    let srow = sem.row(item);
                    let aff: f32 = pref.iter().zip(srow).map(|(a, b)| a * b).sum();
                    let chain = match prev {
                        Some(p) => {
                            let prow = sem.row(p);
                            prow.iter().zip(srow).map(|(a, b)| a * b).sum::<f32>()
                        }
                        None => 0.0,
                    };
                    (config.preference_strength * aff + config.markov_strength * chain)
                        .clamp(-10.0, 10.0)
                        .exp()
                })
                .collect();
            let choice = best_pool[rng.weighted(&weights)];
            prev = Some(choice);
            seq.push(choice);
        }
        sequences.push(seq);
    }
    sequences
}

fn sample_length(rng: &mut Rng64, c: &InteractionConfig) -> usize {
    // Geometric with the configured mean, shifted by min_len.
    let extra_mean = (c.mean_len - c.min_len as f32).max(0.1);
    let p = 1.0 / (1.0 + extra_mean);
    let mut extra = 0usize;
    while !rng.chance(p) && extra + c.min_len < c.max_len {
        extra += 1;
    }
    c.min_len + extra
}

fn cumulative_sum(w: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(w.len());
    let mut acc = 0.0f32;
    for &x in w {
        acc += x;
        out.push(acc);
    }
    out
}

fn sample_from_cumulative(cum: &[f32], rng: &mut Rng64) -> usize {
    // wr-check: allow(R1) — cum mirrors the catalog's item list, which
    // Catalog::generate guarantees non-empty.
    let total = *cum.last().expect("non-empty weights");
    let target = rng.uniform() * total;
    cum.partition_point(|&c| c < target).min(cum.len() - 1)
}

fn normalize_rows(t: &Tensor) -> Tensor {
    t.l2_normalize_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_textsim::{Catalog, CatalogConfig};

    fn small_catalog() -> Catalog {
        Catalog::generate(CatalogConfig {
            n_items: 300,
            n_categories: 10,
            n_brands: 20,
            ..CatalogConfig::default()
        })
    }

    fn small_config() -> InteractionConfig {
        InteractionConfig {
            n_users: 200,
            ..InteractionConfig::default()
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let cat = small_catalog();
        let seqs = generate_interactions(&cat, small_config());
        assert_eq!(seqs.len(), 200);
        for s in &seqs {
            assert!(s.len() >= 5 && s.len() <= 50);
            for &i in s {
                assert!(i < cat.n_items());
            }
        }
        let avg: f32 = seqs.iter().map(|s| s.len() as f32).sum::<f32>() / 200.0;
        assert!((5.0..14.0).contains(&avg), "avg len {avg}");
    }

    #[test]
    fn deterministic() {
        let cat = small_catalog();
        let a = generate_interactions(&cat, small_config());
        let b = generate_interactions(&cat, small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn popularity_is_skewed() {
        let cat = small_catalog();
        let seqs = generate_interactions(&cat, small_config());
        let mut counts = vec![0usize; cat.n_items()];
        for s in &seqs {
            for &i in s {
                counts[i] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top10: usize = counts.iter().take(cat.n_items() / 10).sum();
        assert!(
            top10 as f32 / total as f32 > 0.3,
            "top-10% items hold {} of interactions",
            top10 as f32 / total as f32
        );
    }

    #[test]
    fn users_are_topically_coherent() {
        // Within-user category entropy should be much lower than uniform.
        let cat = small_catalog();
        let seqs = generate_interactions(&cat, small_config());
        let mut dominant_share = 0.0f32;
        for s in &seqs {
            let mut counts = vec![0usize; cat.config.n_categories];
            for &i in s {
                counts[cat.items[i].category] += 1;
            }
            let max = *counts.iter().max().unwrap();
            dominant_share += max as f32 / s.len() as f32;
        }
        dominant_share /= seqs.len() as f32;
        assert!(
            dominant_share > 0.35,
            "dominant-category share {dominant_share}, users look random"
        );
    }

    #[test]
    fn markov_chains_link_consecutive_items() {
        let cat = small_catalog();
        let with_chain = generate_interactions(
            &cat,
            InteractionConfig {
                markov_strength: 2.5,
                preference_strength: 0.0,
                seed: 5,
                ..small_config()
            },
        );
        let without = generate_interactions(
            &cat,
            InteractionConfig {
                markov_strength: 0.0,
                preference_strength: 0.0,
                seed: 5,
                ..small_config()
            },
        );
        let same_cat_rate = |seqs: &[Vec<usize>]| {
            let mut same = 0usize;
            let mut total = 0usize;
            for s in seqs {
                for w in s.windows(2) {
                    total += 1;
                    if cat.items[w[0]].category == cat.items[w[1]].category {
                        same += 1;
                    }
                }
            }
            same as f32 / total as f32
        };
        assert!(
            same_cat_rate(&with_chain) > same_cat_rate(&without) + 0.1,
            "chains: {} vs {}",
            same_cat_rate(&with_chain),
            same_cat_rate(&without)
        );
    }
}
