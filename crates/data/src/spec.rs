//! Dataset presets mirroring Table II's shape at ~1/10 scale.

use crate::{five_core_filter, generate_interactions, InteractionConfig};
use wr_tensor::Tensor;
use wr_textsim::{Catalog, CatalogConfig, PlmConfig, PlmEncoder};

/// The four evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    Arts,
    Toys,
    Tools,
    Food,
}

impl DatasetKind {
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Arts,
        DatasetKind::Toys,
        DatasetKind::Tools,
        DatasetKind::Food,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Arts => "Arts",
            DatasetKind::Toys => "Toys",
            DatasetKind::Tools => "Tools",
            DatasetKind::Food => "Food",
        }
    }
}

/// Everything needed to materialize one synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub kind: DatasetKind,
    pub catalog: CatalogConfig,
    pub plm: PlmConfig,
    pub interactions: InteractionConfig,
}

impl DatasetSpec {
    /// Preset for a dataset kind at ~1/10 of the paper's Table II scale.
    ///
    /// Shape choices carried over from the paper: Food has the shortest
    /// catalogs texts (avg ~3.8 words vs ~20.5) and the longest user
    /// sequences (avg 9.5 vs ~7).
    pub fn preset(kind: DatasetKind) -> Self {
        let (n_items, n_users, mean_len, title_len, n_categories, seed) = match kind {
            DatasetKind::Arts => (2100, 4550, 7.7, (12, 28), 20, 11),
            DatasetKind::Toys => (4050, 8570, 7.2, (12, 28), 28, 12),
            DatasetKind::Tools => (3620, 9060, 6.9, (12, 28), 24, 13),
            DatasetKind::Food => (1290, 2900, 9.5, (2, 6), 14, 14),
        };
        DatasetSpec {
            kind,
            catalog: CatalogConfig {
                n_items,
                n_categories,
                n_brands: n_categories * 3,
                title_len,
                seed,
                ..CatalogConfig::default()
            },
            plm: PlmConfig {
                seed: seed + 100,
                ..PlmConfig::default()
            },
            interactions: InteractionConfig {
                n_users,
                mean_len,
                seed: seed + 200,
                ..InteractionConfig::default()
            },
        }
    }

    /// Scale only the user count (controls interaction density — the
    /// items-per-interaction ratio drives how much ID embeddings overfit).
    pub fn scaled_users(mut self, f: f32) -> Self {
        assert!(f > 0.0);
        self.interactions.n_users =
            ((self.interactions.n_users as f32 * f).round() as usize).max(32);
        self
    }

    /// Scale only the catalog size. Growing items at fixed users thins the
    /// interactions available per item, pushing ID embeddings into the
    /// overparameterized regime the paper's 20k–40k-item catalogs live in.
    pub fn scaled_items(mut self, f: f32) -> Self {
        assert!(f > 0.0);
        self.catalog.n_items = ((self.catalog.n_items as f32 * f).round() as usize).max(32);
        self
    }

    /// Uniformly shrink users and items (tests use small scales).
    pub fn scaled(mut self, f: f32) -> Self {
        assert!(f > 0.0);
        let scale = |x: usize| ((x as f32 * f).round() as usize).max(32);
        self.catalog.n_items = scale(self.catalog.n_items);
        self.interactions.n_users = scale(self.interactions.n_users);
        self.catalog.n_categories = ((self.catalog.n_categories as f32 * f.sqrt()).round() as usize).max(4);
        self.catalog.n_brands = self.catalog.n_categories * 3;
        self
    }

    /// Tiny instance for unit/integration tests (hundreds of interactions).
    pub fn tiny(kind: DatasetKind) -> Self {
        let mut spec = Self::preset(kind).scaled(0.04);
        spec.plm.dim = 64;
        spec
    }

    /// Materialize: catalog → interactions → five-core → PLM embeddings.
    pub fn build(&self) -> ReadyDataset {
        let catalog = Catalog::generate(self.catalog);
        let raw = generate_interactions(&catalog, self.interactions);
        let filtered = five_core_filter(&raw, catalog.n_items(), 5);
        let encoder = PlmEncoder::new(self.catalog.n_factors, self.plm);
        let all_embeddings = encoder.encode(&catalog);
        // Keep only surviving items, in the dense id order.
        let embeddings = all_embeddings.gather_rows(&filtered.item_map);
        ReadyDataset {
            spec: self.clone(),
            catalog,
            sequences: filtered.sequences,
            item_map: filtered.item_map,
            embeddings,
        }
    }
}

/// A fully materialized dataset ready for splitting and training.
#[derive(Debug, Clone)]
pub struct ReadyDataset {
    pub spec: DatasetSpec,
    pub catalog: Catalog,
    /// Five-core-filtered sequences over dense item ids.
    pub sequences: Vec<Vec<usize>>,
    /// Dense id → original catalog id.
    pub item_map: Vec<usize>,
    /// `[n_items, d_t]` pre-trained text embeddings of surviving items.
    pub embeddings: Tensor,
}

impl ReadyDataset {
    pub fn n_items(&self) -> usize {
        self.item_map.len()
    }

    pub fn n_users(&self) -> usize {
        self.sequences.len()
    }

    /// Original catalog category of a dense item id (used by analysis).
    pub fn category_of(&self, dense_id: usize) -> usize {
        self.catalog.items[self.item_map[dense_id]].category
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_stats;

    #[test]
    fn tiny_builds_fast_and_consistent() {
        let ds = DatasetSpec::tiny(DatasetKind::Arts).build();
        assert!(ds.n_items() >= 10, "only {} items survived", ds.n_items());
        assert!(ds.n_users() >= 20);
        assert_eq!(ds.embeddings.rows(), ds.n_items());
        assert_eq!(ds.embeddings.cols(), 64);
        for s in &ds.sequences {
            for &i in s {
                assert!(i < ds.n_items());
            }
        }
    }

    #[test]
    fn presets_have_paper_shape() {
        let arts = DatasetSpec::preset(DatasetKind::Arts);
        let food = DatasetSpec::preset(DatasetKind::Food);
        // Food: shorter texts, longer sequences.
        assert!(food.catalog.title_len.1 < arts.catalog.title_len.0);
        assert!(food.interactions.mean_len > arts.interactions.mean_len);
        // Relative sizes follow Table II ordering.
        let toys = DatasetSpec::preset(DatasetKind::Toys);
        let tools = DatasetSpec::preset(DatasetKind::Tools);
        assert!(tools.interactions.n_users > toys.interactions.n_users);
        assert!(toys.catalog.n_items > tools.catalog.n_items);
    }

    #[test]
    fn stats_reflect_generation() {
        let ds = DatasetSpec::tiny(DatasetKind::Food).build();
        let stats = dataset_stats(&ds.sequences, ds.n_items());
        assert!(stats.avg_seq_len >= 5.0, "five-core guarantees ≥5: {stats}");
        assert!(stats.avg_item_actions >= 5.0, "{stats}");
    }

    #[test]
    fn build_is_deterministic() {
        let a = DatasetSpec::tiny(DatasetKind::Tools).build();
        let b = DatasetSpec::tiny(DatasetKind::Tools).build();
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.embeddings.data(), b.embeddings.data());
    }

    #[test]
    fn scaled_shrinks() {
        let base = DatasetSpec::preset(DatasetKind::Arts);
        let small = base.clone().scaled(0.1);
        assert!(small.catalog.n_items < base.catalog.n_items / 5);
        assert!(small.interactions.n_users < base.interactions.n_users / 5);
    }
}
