//! Datasets for the WhitenRec experiments.
//!
//! The paper evaluates on Amazon Arts/Toys/Tools and Food. Those logs are
//! unavailable offline, so this crate pairs a [`wr_textsim::Catalog`] with
//! a *latent-factor behaviour simulator*: users carry preference vectors in
//! the same semantic-factor space the text encoder uses, and sessions mix
//! preference affinity, Zipf popularity, and Markov co-consumption chains.
//! That gives the three properties the experiments rely on:
//!
//! * text semantics genuinely predict the next item (text-based models can
//!   win),
//! * sequences have order structure (sequence encoders beat popularity),
//! * cold items are reachable only through their text.
//!
//! Pipeline: [`generate_interactions`] → [`five_core_filter`] →
//! [`warm_split`] / [`cold_split`] → [`Batcher`]. Dataset presets matching
//! Table II's shape at ~1/10 scale live in [`DatasetSpec`].

mod batch;
mod filter;
mod interactions;
mod io;
mod spec;
mod split;
mod stats;

pub use batch::{Batch, Batcher, PAD_ITEM};
pub use filter::{five_core_filter, FilteredData};
pub use interactions::{generate_interactions, InteractionConfig};
pub use io::{
    load_embeddings, load_sequences, load_sequences_lenient, save_embeddings,
    save_embeddings_with, save_sequences, save_sequences_with, LenientLoad,
};
pub use spec::{DatasetKind, DatasetSpec, ReadyDataset};
pub use split::{cold_split, warm_split, ColdSplit, EvalCase, WarmSplit};
pub use stats::{dataset_stats, DatasetStats};

/// Maximum items kept per user sequence before splitting (the paper uses
/// max length 50; our scaled default is 30 — see `TransformerConfig`).
pub const DEFAULT_MAX_SEQ: usize = 30;
