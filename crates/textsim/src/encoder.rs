//! Simulated pre-trained text encoder.

use crate::Catalog;
use wr_tensor::{Rng64, Tensor};

/// Parameters of the simulated pre-trained encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlmConfig {
    /// Output embedding dimensionality (BERT's 768, scaled down).
    pub dim: usize,
    /// Norm of the shared "anisotropy" direction relative to signal. The
    /// average pairwise cosine is ≈ `common²/(common² + signal² + noise²)`;
    /// the default targets ≈ 0.85 as measured on Arts/Toys/Tools (§III-B).
    pub common_scale: f32,
    /// Scale of the semantic-factor signal.
    pub signal_scale: f32,
    /// Per-factor geometric decay of signal strength — produces the
    /// fast-decaying singular spectrum of Fig. 2.
    pub spectrum_decay: f32,
    /// Isotropic residual noise ("everything BERT encodes that isn't our
    /// factors").
    pub noise_scale: f32,
    /// Condition number of a fixed ill-conditioned mixing matrix applied to
    /// the final embeddings. Real PLM embeddings correlate dimensions at
    /// wildly different scales; this is what makes them *hard to use
    /// directly* (the paper's degeneration) while remaining information-
    /// equivalent — whitening inverts the mixing exactly, an MLP has to
    /// learn to. Set to 1.0 to disable.
    pub mixing_condition: f32,
    pub seed: u64,
}

impl Default for PlmConfig {
    fn default() -> Self {
        PlmConfig {
            dim: 256,
            common_scale: 4.0,
            signal_scale: 1.0,
            spectrum_decay: 0.7,
            noise_scale: 0.35,
            mixing_condition: 20.0,
            seed: 7,
        }
    }
}

/// The simulated encoder: a fixed random linear map from semantic factors
/// to `dim`-dimensional embeddings plus a large shared offset direction.
///
/// `e(item) = common_scale · u₀ · (1 + 0.1 ξ) + Σ_f decay^f · s_f · a_f
///            + noise`,
/// with `u₀` and the `a_f` random fixed unit vectors. The `ξ` jitter keeps
/// the common direction from being perfectly constant (BERT's dominant
/// direction varies slightly per sentence).
#[derive(Debug, Clone)]
pub struct PlmEncoder {
    pub config: PlmConfig,
    /// `[1, dim]` shared direction.
    common: Tensor,
    /// `[n_factors, dim]` factor loading rows (already decay-scaled).
    loadings: Tensor,
    /// `[dim, dim]` ill-conditioned mixing applied to the final output.
    mixing: Option<Tensor>,
}

impl PlmEncoder {
    pub fn new(n_factors: usize, config: PlmConfig) -> Self {
        let mut rng = Rng64::seed_from(config.seed);
        let common = unit_rows(Tensor::randn(&[1, config.dim], &mut rng));
        let mut loadings = unit_rows(Tensor::randn(&[n_factors, config.dim], &mut rng));
        for f in 0..n_factors {
            let s = config.signal_scale * config.spectrum_decay.powi(f as i32);
            for v in loadings.row_mut(f) {
                *v *= s;
            }
        }
        let mixing = (config.mixing_condition > 1.0)
            .then(|| ill_conditioned_mixing(config.dim, config.mixing_condition, &mut rng));
        PlmEncoder {
            config,
            common,
            loadings,
            mixing,
        }
    }

    /// Encode every catalog item → `[n_items, dim]` embedding matrix.
    pub fn encode(&self, catalog: &Catalog) -> Tensor {
        self.encode_semantics(catalog.semantics())
    }

    /// Encode raw semantic vectors `[n, n_factors]`.
    pub fn encode_semantics(&self, semantics: &Tensor) -> Tensor {
        assert_eq!(
            semantics.cols(),
            self.loadings.rows(),
            "semantic dimensionality mismatch"
        );
        let mut rng = Rng64::seed_from(self.config.seed.wrapping_add(0x9E3779B9));
        let n = semantics.rows();
        let d = self.config.dim;

        // Signal: S · L.
        let mut e = semantics.matmul(&self.loadings);
        // Shared direction + residual noise.
        for r in 0..n {
            let jitter = 1.0 + 0.1 * rng.normal();
            let row = e.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v += self.config.common_scale * jitter * self.common.data()[j]
                    + self.config.noise_scale * rng.normal() / (d as f32).sqrt() * 3.0;
            }
        }
        // Ill-conditioned mixing (information-preserving, geometry-ruining).
        match &self.mixing {
            Some(m) => e.matmul(m),
            None => e,
        }
    }

    pub fn dim(&self) -> usize {
        self.config.dim
    }
}

/// Build `M = Q₁ diag(s) Q₂` with log-spaced singular values from 1 down to
/// `1/condition`, where `Q₁,Q₂` are random orthogonal matrices (eigenvector
/// bases of random symmetric matrices).
fn ill_conditioned_mixing(dim: usize, condition: f32, rng: &mut Rng64) -> Tensor {
    let ortho = |rng: &mut Rng64| -> Tensor {
        let a = Tensor::randn(&[dim, dim], rng);
        let sym = a.add(&a.transpose());
        wr_linalg::sym_eig(&sym)
            .expect("random symmetric matrix eigendecomposition")
            .vectors
    };
    let q1 = ortho(rng);
    let q2 = ortho(rng);
    let mut scaled = q1;
    for j in 0..dim {
        let t = j as f32 / (dim - 1).max(1) as f32;
        let s = condition.powf(-t); // 1 → 1/condition, log-spaced
        for i in 0..dim {
            *scaled.at2_mut(i, j) *= s;
        }
    }
    scaled.matmul_nt(&q2)
}

fn unit_rows(mut t: Tensor) -> Tensor {
    for r in 0..t.rows() {
        let norm = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for v in t.row_mut(r) {
            *v /= norm;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, CatalogConfig};
    use wr_whiten::average_pairwise_cosine;

    fn catalog() -> Catalog {
        Catalog::generate(CatalogConfig {
            n_items: 1200,
            ..CatalogConfig::default()
        })
    }

    #[test]
    fn embeddings_are_anisotropic_like_bert() {
        let c = catalog();
        let enc = PlmEncoder::new(c.config.n_factors, PlmConfig::default());
        let e = enc.encode(&c);
        let avg = average_pairwise_cosine(&e, 1500, 3);
        // The paper reports 0.84–0.85 on the Amazon datasets.
        assert!(
            (0.72..=0.95).contains(&avg),
            "avg pairwise cosine {avg}, want ≈0.85"
        );
    }

    #[test]
    fn singular_values_decay_fast() {
        let c = catalog();
        let enc = PlmEncoder::new(c.config.n_factors, PlmConfig::default());
        let e = enc.encode(&c);
        let sv = crate::normalized_singular_values(&e).unwrap();
        assert!((sv[0] - 1.0).abs() < 1e-5);
        // Fig. 2 shape: rapid drop — the bulk of the spectrum is far below
        // the leading directions (the ill-conditioned mixing keeps a longer
        // but still collapsing tail, like real BERT).
        assert!(sv[9] < 0.4, "sv[9] = {} — spectrum decays too slowly", sv[9]);
        assert!(sv[30] < 0.15, "sv[30] = {} — tail too heavy", sv[30]);
    }

    #[test]
    fn semantic_neighbors_stay_close_in_embedding_space() {
        let c = catalog();
        let enc = PlmEncoder::new(c.config.n_factors, PlmConfig::default());
        let e = enc.encode(&c);
        // Compare same- vs different-category cosine after removing the
        // common direction effect (use centered embeddings).
        let centered = e.sub_row_broadcast(&e.mean_rows());
        let cos = |i: usize, j: usize| {
            let (a, b) = (centered.row(i), centered.row(j));
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-12)
        };
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in (0..c.n_items()).step_by(13) {
            for j in (i + 1..c.n_items()).step_by(29) {
                if c.items[i].category == c.items[j].category {
                    same.push(cos(i, j));
                } else {
                    diff.push(cos(i, j));
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&same) > mean(&diff) + 0.1,
            "same-cat {} vs diff-cat {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn deterministic() {
        let c = catalog();
        let enc = PlmEncoder::new(c.config.n_factors, PlmConfig::default());
        let a = enc.encode(&c);
        let b = enc.encode(&c);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_factor_count_panics() {
        let enc = PlmEncoder::new(8, PlmConfig::default());
        enc.encode_semantics(&Tensor::zeros(&[4, 5]));
    }
}
