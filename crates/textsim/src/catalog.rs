//! Generative item catalog.

use wr_tensor::{Rng64, Tensor};

/// Catalog generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogConfig {
    pub n_items: usize,
    pub n_categories: usize,
    pub n_brands: usize,
    /// Words per title drawn uniformly from this inclusive range. The
    /// Amazon datasets average ~20 words; Food averages ~4 (§V-E).
    pub title_len: (usize, usize),
    /// Topical words per category plus a shared generic pool.
    pub vocab_per_category: usize,
    pub generic_vocab: usize,
    /// Latent semantic factor dimensionality.
    pub n_factors: usize,
    /// Scale of per-item idiosyncratic semantic noise.
    pub item_noise: f32,
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            n_items: 2000,
            n_categories: 20,
            n_brands: 60,
            title_len: (12, 28),
            vocab_per_category: 50,
            generic_vocab: 300,
            n_factors: 16,
            item_noise: 0.35,
            seed: 42,
        }
    }
}

/// One catalog item. `title` stores word ids; topical words of category `c`
/// occupy ids `[generic_vocab + c*vocab_per_category, …)`.
#[derive(Debug, Clone)]
pub struct Item {
    pub id: usize,
    pub title: Vec<u32>,
    pub category: usize,
    pub brand: usize,
}

/// A generated catalog with ground-truth semantics.
#[derive(Debug, Clone)]
pub struct Catalog {
    pub config: CatalogConfig,
    pub items: Vec<Item>,
    /// `[n_categories, n_factors]` latent category factors.
    pub category_factors: Tensor,
    /// `[n_brands, n_factors]` latent brand factors.
    pub brand_factors: Tensor,
    /// `[n_items, n_factors]` ground-truth item semantic vectors.
    semantics: Tensor,
}

impl Catalog {
    pub fn generate(config: CatalogConfig) -> Self {
        assert!(config.n_items >= 2, "catalog needs at least two items");
        assert!(config.n_categories >= 1 && config.n_brands >= 1);
        assert!(config.title_len.0 >= 1 && config.title_len.0 <= config.title_len.1);
        let mut rng = Rng64::seed_from(config.seed);
        let k = config.n_factors;

        let category_factors = Tensor::randn(&[config.n_categories, k], &mut rng);
        let brand_factors = Tensor::randn(&[config.n_brands, k], &mut rng).scale(0.5);

        // Brands concentrate within categories (realistic co-occurrence):
        // each brand has a "home" category it is sampled from preferentially.
        let brand_home: Vec<usize> = (0..config.n_brands)
            .map(|_| rng.below(config.n_categories))
            .collect();

        let mut items = Vec::with_capacity(config.n_items);
        let mut semantics = Tensor::zeros(&[config.n_items, k]);
        for id in 0..config.n_items {
            // Zipf-ish category popularity.
            let cat_weights: Vec<f32> = (0..config.n_categories)
                .map(|c| 1.0 / (c as f32 + 1.5))
                .collect();
            let category = rng.weighted(&cat_weights);
            // Pick a brand whose home matches where possible.
            let brand = {
                let local: Vec<usize> = brand_home
                    .iter()
                    .enumerate()
                    .filter(|(_, &h)| h == category)
                    .map(|(b, _)| b)
                    .collect();
                if !local.is_empty() && rng.chance(0.8) {
                    local[rng.below(local.len())]
                } else {
                    rng.below(config.n_brands)
                }
            };

            let len = config.title_len.0 + rng.below(config.title_len.1 - config.title_len.0 + 1);
            let title: Vec<u32> = (0..len)
                .map(|_| {
                    if rng.chance(0.55) {
                        // topical word of this item's category
                        (config.generic_vocab
                            + category * config.vocab_per_category
                            + rng.below(config.vocab_per_category)) as u32
                    } else {
                        rng.below(config.generic_vocab) as u32
                    }
                })
                .collect();

            // Ground-truth semantics: category + brand + noise.
            for (j, s) in semantics.row_mut(id).iter_mut().enumerate() {
                *s = category_factors.at2(category, j)
                    + brand_factors.at2(brand, j)
                    + config.item_noise * rng.normal();
            }

            items.push(Item {
                id,
                title,
                category,
                brand,
            });
        }

        Catalog {
            config,
            items,
            category_factors,
            brand_factors,
            semantics,
        }
    }

    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Ground-truth `[n_items, n_factors]` semantic vectors.
    pub fn semantics(&self) -> &Tensor {
        &self.semantics
    }

    /// Render an item's text the way the paper concatenates it:
    /// `title words. category: c. brand: b.`
    pub fn text_of(&self, id: usize) -> String {
        let item = &self.items[id];
        let words: Vec<String> = item.title.iter().map(|w| format!("w{w}")).collect();
        format!(
            "{}. category: cat{}. brand: brand{}.",
            words.join(" "),
            item.category,
            item.brand
        )
    }

    /// Average title length in words (to compare against the paper's 20.5
    /// Amazon vs 3.8 Food statistic).
    pub fn average_title_words(&self) -> f32 {
        let total: usize = self.items.iter().map(|i| i.title.len()).sum();
        total as f32 / self.items.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(CatalogConfig::default());
        let b = Catalog::generate(CatalogConfig::default());
        assert_eq!(a.items[7].title, b.items[7].title);
        assert_eq!(a.semantics().data(), b.semantics().data());
    }

    #[test]
    fn fields_within_bounds() {
        let cfg = CatalogConfig {
            n_items: 500,
            ..CatalogConfig::default()
        };
        let c = Catalog::generate(cfg);
        assert_eq!(c.n_items(), 500);
        for item in &c.items {
            assert!(item.category < cfg.n_categories);
            assert!(item.brand < cfg.n_brands);
            assert!(item.title.len() >= cfg.title_len.0 && item.title.len() <= cfg.title_len.1);
        }
    }

    #[test]
    fn same_category_items_are_semantically_closer() {
        let c = Catalog::generate(CatalogConfig::default());
        let s = c.semantics();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in (0..c.n_items()).step_by(17) {
            for j in (i + 1..c.n_items()).step_by(23) {
                let d: f32 = s
                    .row(i)
                    .iter()
                    .zip(s.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if c.items[i].category == c.items[j].category {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&same) < mean(&diff) * 0.8,
            "same-cat {} vs diff-cat {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn titles_are_topical() {
        let cfg = CatalogConfig::default();
        let c = Catalog::generate(cfg);
        // Majority of non-generic words should belong to the item's own
        // category vocabulary.
        let mut own = 0usize;
        let mut other = 0usize;
        for item in &c.items {
            for &w in &item.title {
                let w = w as usize;
                if w >= cfg.generic_vocab {
                    let cat = (w - cfg.generic_vocab) / cfg.vocab_per_category;
                    if cat == item.category {
                        own += 1;
                    } else {
                        other += 1;
                    }
                }
            }
        }
        assert!(own > 10 * other.max(1), "topical words leak: {own} vs {other}");
    }

    #[test]
    fn text_rendering() {
        let c = Catalog::generate(CatalogConfig {
            n_items: 3,
            ..CatalogConfig::default()
        });
        let t = c.text_of(0);
        assert!(t.contains("category: cat"));
        assert!(t.contains("brand: brand"));
    }

    #[test]
    fn average_title_words_tracks_config() {
        let long = Catalog::generate(CatalogConfig::default());
        let short = Catalog::generate(CatalogConfig {
            title_len: (2, 6),
            ..CatalogConfig::default()
        });
        assert!(long.average_title_words() > 15.0);
        assert!(short.average_title_words() < 7.0);
    }
}
