//! Synthetic item catalogs and a simulated pre-trained language-model
//! encoder.
//!
//! The paper feeds each item's concatenated *title | categories | brand*
//! through BERT and takes the `[CLS]` vector. We can't ship BERT, so this
//! crate builds the closest controllable substitute:
//!
//! 1. [`Catalog`] — a generative item catalog: categories and brands carry
//!    latent *semantic factor* vectors; item titles are sampled from
//!    category-topical vocabularies; each item gets a ground-truth semantic
//!    vector (category + brand + word effects + idiosyncratic noise).
//! 2. [`PlmEncoder`] — maps semantic vectors to `d_t`-dimensional
//!    "pre-trained text embeddings" exhibiting the three properties the
//!    paper measures on real BERT embeddings (§III-B):
//!    * a dominant shared direction → average pairwise cosine ≈ 0.85,
//!    * fast-decaying singular values (Fig. 2),
//!    * semantic clustering (same-category items stay close).
//!
//! The tests in this crate *assert* those properties, so the substitution
//! is checked, not assumed.

mod catalog;
mod encoder;
mod stats;

pub use catalog::{Catalog, CatalogConfig, Item};
pub use encoder::{PlmConfig, PlmEncoder};
pub use stats::{normalized_singular_values, EmbeddingReport};
