//! Embedding-space statistics for the anisotropy analysis (Fig. 2, §III-B).

use wr_linalg::{singular_values, LinalgError};
use wr_tensor::Tensor;
use wr_whiten::{average_pairwise_cosine, whiteness_error};

/// Singular values of the centered embedding matrix, normalized so the
/// largest is 1 (the y-axis of Fig. 2).
pub fn normalized_singular_values(embeddings: &Tensor) -> Result<Vec<f32>, LinalgError> {
    let centered = embeddings.sub_row_broadcast(&embeddings.mean_rows());
    let mut sv = singular_values(&centered)?;
    let top = sv.first().copied().unwrap_or(0.0).max(1e-30);
    for s in &mut sv {
        *s /= top;
    }
    Ok(sv)
}

/// Summary report on one embedding matrix, bundling the statistics the
/// paper quotes for pre-trained text embeddings.
#[derive(Debug, Clone)]
pub struct EmbeddingReport {
    pub n_items: usize,
    pub dim: usize,
    pub average_cosine: f32,
    pub whiteness_error: f32,
    /// Fraction of spectral energy in the top-1 singular value.
    pub top1_energy: f32,
    /// Number of singular values above 10% of the maximum.
    pub effective_directions: usize,
}

impl EmbeddingReport {
    pub fn compute(embeddings: &Tensor, cosine_samples: usize, seed: u64) -> Result<Self, LinalgError> {
        let sv = normalized_singular_values(embeddings)?;
        let energy: f32 = sv.iter().map(|s| s * s).sum();
        let top1_energy = sv[0] * sv[0] / energy.max(1e-30);
        let effective_directions = sv.iter().filter(|&&s| s > 0.1).count();
        Ok(EmbeddingReport {
            n_items: embeddings.rows(),
            dim: embeddings.cols(),
            average_cosine: average_pairwise_cosine(embeddings, cosine_samples, seed),
            whiteness_error: whiteness_error(embeddings),
            top1_energy,
            effective_directions,
        })
    }
}

impl std::fmt::Display for EmbeddingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} items × {} dims | avg cos {:.3} | whiteness err {:.3} | top-1 energy {:.1}% | {} effective dirs",
            self.n_items,
            self.dim,
            self.average_cosine,
            self.whiteness_error,
            self.top1_energy * 100.0,
            self.effective_directions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn isotropic_data_report() {
        let mut rng = Rng64::seed_from(1);
        let e = Tensor::randn(&[600, 16], &mut rng);
        let r = EmbeddingReport::compute(&e, 500, 2).unwrap();
        assert!(r.average_cosine.abs() < 0.1);
        assert!(r.effective_directions >= 14, "{r}");
        assert!(r.top1_energy < 0.2);
    }

    #[test]
    fn dominant_direction_report() {
        let mut rng = Rng64::seed_from(3);
        let mut e = Tensor::randn(&[600, 16], &mut rng).scale(0.05);
        for r in 0..600 {
            let a = 1.0 + 0.2 * rng.normal();
            e.row_mut(r)[0] += 5.0 * a;
        }
        let r = EmbeddingReport::compute(&e, 500, 4).unwrap();
        assert!(r.average_cosine > 0.8, "{r}");
        assert!(r.top1_energy > 0.5, "{r}");
        assert!(r.effective_directions < 5, "{r}");
    }

    #[test]
    fn normalized_spectrum_starts_at_one() {
        let mut rng = Rng64::seed_from(5);
        let e = Tensor::randn(&[100, 8], &mut rng);
        let sv = normalized_singular_values(&e).unwrap();
        assert!((sv[0] - 1.0).abs() < 1e-6);
        for w in sv.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn display_formats() {
        let mut rng = Rng64::seed_from(6);
        let e = Tensor::randn(&[50, 4], &mut rng);
        let r = EmbeddingReport::compute(&e, 100, 7).unwrap();
        let s = r.to_string();
        assert!(s.contains("50 items"));
    }
}
