//! Deterministic Lloyd's k-means — the IVF coarse quantizer.
//!
//! Everything here is engineered for replayability rather than raw
//! clustering quality:
//!
//! * **Init** — `k` distinct rows sampled by a seeded partial
//!   Fisher–Yates ([`wr_tensor::Rng64`]); the same `(data, config)` pair
//!   picks the same seeds in any process.
//! * **Assignment** — embarrassingly parallel over rows via
//!   `wr_runtime::parallel_map`, which stitches per-index results in
//!   order; each row's nearest-centroid scan is self-contained sequential
//!   float math, so the result is bit-identical at any `WR_THREADS`.
//! * **Update** — single-threaded accumulation in ascending row order
//!   (float addition is not associative; a parallel reduction would make
//!   centroids depend on the thread count).
//! * **Termination** — a fixed iteration cap plus early exit when the
//!   assignment vector stops changing (an exact `Vec<u32>` comparison —
//!   no float-tolerance convergence test, per wr-check R5).
//!
//! Ties everywhere resolve to the lowest index: a row equidistant from
//! two centroids joins the lower-numbered cluster, deterministically.

use wr_runtime::parallel_map;
use wr_tensor::{Rng64, Tensor};

use crate::AnnError;

/// Build parameters for [`fit_kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters (`nlist` when used as an IVF quantizer).
    pub n_clusters: usize,
    /// Hard iteration cap; Lloyd's usually settles far earlier.
    pub max_iters: usize,
    /// Seed for the init row sample.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            n_clusters: 64,
            max_iters: 25,
            seed: 0x5eed_a11,
        }
    }
}

/// A fitted quantizer: centroids plus the final assignment of every row.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `[n_clusters, dim]` cluster centers.
    pub centroids: Tensor,
    /// `assignments[i]` = cluster of row `i`.
    pub assignments: Vec<u32>,
    /// Lloyd iterations actually executed (≤ `max_iters`).
    pub iters_run: usize,
}

/// Squared Euclidean distance, plain ascending-`p` accumulation.
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for p in 0..a.len() {
        let d = a[p] - b[p];
        s += d * d;
    }
    s
}

/// Index of the nearest centroid to `row`; ties go to the lowest index
/// (strict `<` keeps the first minimum).
fn nearest(row: &[f32], centroids: &Tensor) -> u32 {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(row, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// Grain for the parallel assignment pass: each unit is `n_clusters`
/// distance evaluations, so even small rows amortize pool dispatch.
const ASSIGN_GRAIN: usize = 16;

/// Run Lloyd's k-means over the rows of `data: [n, dim]`.
///
/// Rejects NaN/Inf rows with [`AnnError::NonFinite`] before touching the
/// pool. Clusters left empty by duplicate points keep their previous
/// centroid (they surface as empty inverted lists downstream, which the
/// index handles); singleton clusters are ordinary.
pub fn fit_kmeans(data: &Tensor, cfg: &KMeansConfig) -> Result<KMeans, AnnError> {
    if data.rank() != 2 {
        return Err(AnnError::InvalidConfig(format!(
            "kmeans expects [n, dim] data, got rank {}",
            data.rank()
        )));
    }
    let n = data.rows();
    let dim = data.cols();
    let k = cfg.n_clusters;
    if k == 0 {
        return Err(AnnError::InvalidConfig("n_clusters must be ≥ 1".into()));
    }
    if n == 0 || dim == 0 {
        return Err(AnnError::InvalidConfig(format!(
            "kmeans needs a non-empty matrix, got [{n}, {dim}]"
        )));
    }
    if k > n {
        return Err(AnnError::InvalidConfig(format!(
            "n_clusters {k} exceeds row count {n}"
        )));
    }
    for i in 0..n {
        if data.row(i).iter().any(|v| !v.is_finite()) {
            return Err(AnnError::NonFinite { row: i });
        }
    }

    // Seeded init: k distinct rows via partial Fisher–Yates.
    let mut rng = Rng64::seed_from(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below(n - i);
        order.swap(i, j);
    }
    let mut centroids = Tensor::zeros(&[k, dim]);
    for (c, &src) in order[..k].iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(src));
    }

    let mut assignments: Vec<u32> = vec![u32::MAX; n];
    let mut iters_run = 0usize;
    for _ in 0..cfg.max_iters {
        iters_run += 1;
        let next = {
            let cref = &centroids;
            parallel_map(n, ASSIGN_GRAIN, |i| nearest(data.row(i), cref))
        };
        let converged = next == assignments;
        assignments = next;
        if converged {
            break;
        }
        // Deterministic update: ascending-row accumulation, one thread.
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            let acc = &mut sums[c * dim..(c + 1) * dim];
            for (a, &v) in acc.iter_mut().zip(data.row(i)) {
                *a += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                continue; // empty cluster keeps its previous centroid
            }
            let inv = 1.0 / counts[c] as f32;
            let dst = centroids.row_mut(c);
            for (d, &s) in dst.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                *d = s * inv;
            }
        }
    }

    Ok(KMeans {
        centroids,
        assignments,
        iters_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[[f32; 2]], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let mut data = Vec::with_capacity(n_per * centers.len() * 2);
        for c in centers {
            for _ in 0..n_per {
                data.push(c[0] + 0.05 * rng.normal());
                data.push(c[1] + 0.05 * rng.normal());
            }
        }
        Tensor::from_vec(data, &[n_per * centers.len(), 2])
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(40, &[[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]], 7);
        let fit = fit_kmeans(
            &data,
            &KMeansConfig {
                n_clusters: 3,
                max_iters: 50,
                seed: 11,
            },
        )
        .unwrap();
        // All rows of a blob land in one cluster, and the three blobs get
        // three distinct clusters.
        let block: Vec<u32> = (0..3).map(|b| fit.assignments[b * 40]).collect();
        for b in 0..3 {
            assert!(fit.assignments[b * 40..(b + 1) * 40]
                .iter()
                .all(|&a| a == block[b]));
        }
        assert_ne!(block[0], block[1]);
        assert_ne!(block[1], block[2]);
        assert!(fit.iters_run <= 50);
    }

    #[test]
    fn rejects_bad_configs() {
        let data = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]);
        let err = |k: usize| {
            fit_kmeans(
                &data,
                &KMeansConfig {
                    n_clusters: k,
                    max_iters: 5,
                    seed: 1,
                },
            )
            .unwrap_err()
        };
        assert!(matches!(err(0), AnnError::InvalidConfig(_)));
        assert!(matches!(err(3), AnnError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_nan_rows_with_row_index() {
        let mut data = Tensor::from_vec(vec![0.0; 12], &[6, 2]);
        data.row_mut(4)[1] = f32::NAN;
        let err = fit_kmeans(&data, &KMeansConfig::default_small()).unwrap_err();
        match err {
            AnnError::NonFinite { row } => assert_eq!(row, 4),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    impl KMeansConfig {
        fn default_small() -> KMeansConfig {
            KMeansConfig {
                n_clusters: 2,
                max_iters: 5,
                seed: 3,
            }
        }
    }

    #[test]
    fn duplicate_points_leave_empty_clusters_but_finite_centroids() {
        // 6 identical rows, k=4: after one update every row joins cluster
        // of the first init pick; other clusters keep their (identical)
        // init centroid. Nothing NaNs out.
        let data = Tensor::from_vec(vec![1.0; 12], &[6, 2]);
        let fit = fit_kmeans(
            &data,
            &KMeansConfig {
                n_clusters: 4,
                max_iters: 10,
                seed: 5,
            },
        )
        .unwrap();
        assert!(fit.centroids.data().iter().all(|v| v.is_finite()));
        let occupied = fit.assignments[0];
        assert!(fit.assignments.iter().all(|&a| a == occupied));
    }
}
