//! IVF-flat index: inverted lists keyed by a k-means coarse quantizer.
//!
//! # Layout
//!
//! Build partitions the catalog `V: [n_items, dim]` into `nlist` inverted
//! lists by nearest centroid. The scanned vectors live in a *packed* copy
//! — rows reordered so each list is contiguous — which turns a probe into
//! a streaming scan instead of `n` random row fetches. Item ids ride along
//! (`packed_ids`) so results come back in catalog coordinates. Within a
//! list, ids ascend (rows are assigned in ascending order), which makes
//! the scan order — and therefore every tie-break — deterministic.
//!
//! # Exactness dial
//!
//! `nprobe` picks how many lists a query visits, ordered by descending
//! `dot(query, centroid)` (the MIPS probe heuristic; ties → lower list
//! index). `nprobe = nlist` visits everything and is **bit-identical** to
//! the exact scorer: the per-item score is accumulated in plain ascending
//! `p` order, the same float-add sequence `wr_tensor::matmul`'s gemm uses
//! per output element, and the candidate set is the full catalog.
//!
//! # WRIV v1 wire format (little-endian, CRC-sealed)
//!
//! ```text
//! magic "WRIV" | u32 version=1 | u64 build_seed
//! u32 nlist | u32 dim | u64 n_items
//! centroids: nlist·dim f32
//! per list: u32 len | u32 ids…
//! footer:   u32 crc32(everything above) | magic "VIRW"
//! ```
//!
//! Only the quantizer (centroids + list membership) is persisted — never
//! the vectors. [`IvfIndex::load`] re-attaches the catalog tensor and
//! rebuilds the packed scan copy from it, so a stale index can disagree
//! with the serving table only in *shape* (caught as [`AnnError::Mismatch`]),
//! never silently in values. The file is untrusted input: magic/version/
//! footer checks, `checked_mul` size guards against hostile headers, and
//! an exact-partition check (every id in `0..n_items` exactly once).

use std::fs::File;
use std::io::Read;
use std::path::Path;

use wr_eval::{merge_top_k, ScoredItem, TopK};
use wr_fault::{crc32, write_atomic};
use wr_tensor::Tensor;

use crate::kmeans::{fit_kmeans, KMeansConfig};
use crate::AnnError;

const MAGIC: &[u8; 4] = b"WRIV";
const FOOTER_MAGIC: &[u8; 4] = b"VIRW";
/// Current WRIV wire-format version.
pub const WRIV_VERSION: u32 = 1;
/// Bytes of the integrity footer: u32 CRC + reversed magic.
const FOOTER_LEN: usize = 8;
/// Iteration cap for the build-time quantizer fit.
const BUILD_MAX_ITERS: usize = 25;

/// Per-query probe accounting, surfaced so the serving layer can bridge
/// it into `serve.ann.*` counters without this crate depending on wr-obs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Inverted lists visited (= effective `nprobe`).
    pub lists_probed: usize,
    /// Catalog rows whose scores were accumulated (excluded rows are
    /// skipped *before* the dot product and do not count).
    pub rows_scanned: usize,
    /// Owning trace id when the probe was issued through
    /// [`IvfIndex::search_traced`] (0 = untraced). Pure accounting — it
    /// never influences the scan — but it lets the serving layer join a
    /// probe's cost back to the request batch that paid it.
    pub trace_id: u64,
}

/// An IVF-flat index over a frozen catalog tensor.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    centroids: Tensor, // [nlist, dim]
    lists: Vec<Vec<u32>>,
    /// Catalog rows reordered list-by-list for streaming scans.
    packed: Vec<f32>,
    /// `packed_ids[r]` = catalog id of packed row `r`.
    packed_ids: Vec<u32>,
    /// List `l` owns packed rows `offsets[l]..offsets[l+1]`.
    offsets: Vec<usize>,
    dim: usize,
    n_items: usize,
    build_seed: u64,
}

/// Plain ascending-`p` dot product. This is deliberately *not*
/// `wr_tensor`'s unrolled `dot` (4-way split accumulators change the
/// float-add order); it matches the gemm's per-element accumulation
/// sequence so `nprobe = nlist` reproduces exact scores bit-for-bit.
#[inline]
fn dot_gemm_order(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for p in 0..a.len() {
        s += a[p] * b[p];
    }
    s
}

impl IvfIndex {
    /// Cluster `items: [n_items, dim]` into `nlist` inverted lists.
    ///
    /// Deterministic for fixed `(items, nlist, seed)` at any `WR_THREADS`
    /// (see [`fit_kmeans`]); rejects non-finite rows with
    /// [`AnnError::NonFinite`].
    pub fn build(items: &Tensor, nlist: usize, seed: u64) -> Result<IvfIndex, AnnError> {
        let fit = fit_kmeans(
            items,
            &KMeansConfig {
                n_clusters: nlist,
                max_iters: BUILD_MAX_ITERS,
                seed,
            },
        )?;
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (i, &c) in fit.assignments.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        Ok(IvfIndex::assemble(fit.centroids, lists, items, seed))
    }

    /// Pack the catalog rows into list order; `lists` must partition
    /// `0..items.rows()`.
    fn assemble(centroids: Tensor, lists: Vec<Vec<u32>>, items: &Tensor, seed: u64) -> IvfIndex {
        let n_items = items.rows();
        let dim = items.cols();
        let mut packed = Vec::with_capacity(n_items * dim);
        let mut packed_ids = Vec::with_capacity(n_items);
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0);
        for list in &lists {
            for &id in list {
                packed.extend_from_slice(items.row(id as usize));
                packed_ids.push(id);
            }
            offsets.push(packed_ids.len());
        }
        IvfIndex {
            centroids,
            lists,
            packed,
            packed_ids,
            offsets,
            dim,
            n_items,
            build_seed: seed,
        }
    }

    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Seed the quantizer was built with (persisted for provenance).
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Item ids of list `l`, ascending.
    pub fn list(&self, l: usize) -> &[u32] {
        &self.lists[l]
    }

    /// Largest inverted-list length — the worst-case single-probe scan.
    pub fn max_list_len(&self) -> usize {
        self.lists.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Probe order for `query`: list indices by descending centroid inner
    /// product, ties to the lower index.
    fn probe_order(&self, query: &[f32]) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..self.nlist())
            .map(|l| (l, dot_gemm_order(query, self.centroids.row(l))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }

    /// Top-`k` items by inner product against `query`, scanning the
    /// `nprobe` most promising lists. `excluded` ids (user history,
    /// quarantined rows) are skipped before scoring. Returns the ranked
    /// results plus scan accounting.
    ///
    /// `nprobe` is clamped to `nlist`; at the clamp the candidate set is
    /// the whole catalog and scores match the exact gemm bit-for-bit.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        excluded: &[usize],
    ) -> (Vec<ScoredItem>, SearchStats) {
        self.search_traced(query, k, nprobe, excluded, 0)
    }

    /// [`IvfIndex::search`] under a trace identity: the scan is
    /// bit-identical (the id is write-only accounting), but the returned
    /// [`SearchStats`] carry `trace_id` so per-probe cost can be joined
    /// to the owning request batch's span tree.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        excluded: &[usize],
        trace_id: u64,
    ) -> (Vec<ScoredItem>, SearchStats) {
        assert_eq!(
            query.len(),
            self.dim,
            "query dim {} vs index dim {}",
            query.len(),
            self.dim
        );
        let nprobe = nprobe.clamp(1, self.nlist());
        let mut skip: Vec<u32> = excluded.iter().map(|&i| i as u32).collect();
        skip.sort_unstable();
        skip.dedup();

        let order = self.probe_order(query);
        let mut partials: Vec<Vec<ScoredItem>> = Vec::with_capacity(nprobe);
        let mut stats = SearchStats {
            trace_id,
            ..SearchStats::default()
        };
        for &(l, _) in order.iter().take(nprobe) {
            stats.lists_probed += 1;
            // `l < nlist` and `offsets.len() == nlist + 1` by construction;
            // checked reads keep a corrupt index from panicking a probe.
            let (Some(&lo), Some(&hi)) = (self.offsets.get(l), self.offsets.get(l + 1)) else {
                continue;
            };
            let mut acc = TopK::new(k);
            for r in lo..hi {
                let id = self.packed_ids[r];
                if skip.binary_search(&id).is_ok() {
                    continue;
                }
                let row = &self.packed[r * self.dim..(r + 1) * self.dim];
                acc.push(id as usize, dot_gemm_order(query, row));
                stats.rows_scanned += 1;
            }
            partials.push(acc.into_sorted());
        }
        (merge_top_k(k, &partials), stats)
    }

    /// Serialize the quantizer to the WRIV v1 wire form, footer included.
    fn encode(&self) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&WRIV_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.build_seed.to_le_bytes());
        buf.extend_from_slice(&(self.nlist() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.dim as u32).to_le_bytes());
        buf.extend_from_slice(&(self.n_items as u64).to_le_bytes());
        for &v in self.centroids.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for list in &self.lists {
            buf.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &id in list {
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(FOOTER_MAGIC);
        buf
    }

    /// Persist the quantizer crash-safely (temp → fsync → rename → dir
    /// fsync via `wr_fault::write_atomic`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), AnnError> {
        write_atomic(path, &self.encode())?;
        Ok(())
    }

    /// Load a WRIV file and re-attach the catalog it indexes.
    ///
    /// The file is untrusted: integrity footer, magic, version, size
    /// arithmetic, and the id partition are all validated before the
    /// packed scan copy is rebuilt from `items`. Shape disagreement with
    /// `items` is [`AnnError::Mismatch`] — the "index built against a
    /// different catalog" failure mode.
    pub fn load(path: impl AsRef<Path>, items: &Tensor) -> Result<IvfIndex, AnnError> {
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        IvfIndex::decode(&raw, items)
    }

    fn decode(raw: &[u8], items: &Tensor) -> Result<IvfIndex, AnnError> {
        // Footer first: reject torn/bit-flipped bytes before parsing.
        if raw.len() < FOOTER_LEN + 4 {
            return Err(AnnError::Corrupt(format!(
                "file too short for a sealed index ({} bytes)",
                raw.len()
            )));
        }
        let (payload, footer) = raw.split_at(raw.len() - FOOTER_LEN);
        if &footer[4..] != FOOTER_MAGIC {
            return Err(AnnError::Corrupt(
                "missing WRIV integrity footer (truncated or pre-seal file)".into(),
            ));
        }
        let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
        let actual = crc32(payload);
        if stored != actual {
            return Err(AnnError::Corrupt(format!(
                "crc mismatch: footer {stored:08x} vs payload {actual:08x}"
            )));
        }

        let mut cur = Cursor { buf: payload };
        if cur.take(4, "magic")? != MAGIC {
            return Err(AnnError::Format("not a WRIV file".into()));
        }
        let version = cur.get_u32_le("version")?;
        if version != WRIV_VERSION {
            return Err(AnnError::Format(format!(
                "unsupported WRIV version {version} (expected {WRIV_VERSION})"
            )));
        }
        let build_seed = cur.get_u64_le("build seed")?;
        let nlist = cur.get_u32_le("nlist")? as usize;
        let dim = cur.get_u32_le("dim")? as usize;
        let n_items = cur.get_u64_le("n_items")? as usize;
        if nlist == 0 || nlist > n_items {
            return Err(AnnError::Format(format!(
                "hostile header: nlist {nlist} vs n_items {n_items}"
            )));
        }
        if items.rows() != n_items || items.cols() != dim {
            return Err(AnnError::Mismatch(format!(
                "index is [{n_items}, {dim}] but catalog is [{}, {}]",
                items.rows(),
                items.cols()
            )));
        }
        let cent_len = nlist
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| AnnError::Format("hostile header: centroid size overflow".into()))?;
        let cent_bytes = cur.take(cent_len, "centroids")?;
        let mut cent = Vec::with_capacity(nlist * dim);
        for c in cent_bytes.chunks_exact(4) {
            cent.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        let centroids = Tensor::from_vec(cent, &[nlist, dim]);

        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(nlist);
        let mut seen = vec![false; n_items];
        for l in 0..nlist {
            let len = cur.get_u32_le("list length")? as usize;
            if len > n_items {
                return Err(AnnError::Format(format!(
                    "hostile header: list {l} claims {len} ids (> {n_items})"
                )));
            }
            let id_bytes = cur.take(len * 4, "list ids")?;
            let mut ids = Vec::with_capacity(len);
            for c in id_bytes.chunks_exact(4) {
                let id = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                if id as usize >= n_items {
                    return Err(AnnError::Format(format!(
                        "list {l} id {id} out of range (n_items {n_items})"
                    )));
                }
                if seen[id as usize] {
                    return Err(AnnError::Format(format!("item {id} appears twice")));
                }
                seen[id as usize] = true;
                ids.push(id);
            }
            lists.push(ids);
        }
        if cur.remaining() != 0 {
            return Err(AnnError::Format(format!(
                "{} trailing bytes after the last list",
                cur.remaining()
            )));
        }
        if !seen.iter().all(|&s| s) {
            return Err(AnnError::Format("lists do not cover the catalog".into()));
        }
        Ok(IvfIndex::assemble(centroids, lists, items, build_seed))
    }
}

/// Fallible little-endian reader (mirrors the WRCK loader's; WRIV files
/// are untrusted input and every short read must be a typed error).
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], AnnError> {
        if self.buf.len() < n {
            return Err(AnnError::Format(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, AnnError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64_le(&mut self, what: &str) -> Result<u64, AnnError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_eval::top_k_filtered;
    use wr_tensor::Rng64;

    fn catalog(n: usize, dim: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::randn(&[n, dim], &mut rng)
    }

    /// Exact reference: brute-force scores in gemm order, then the shared
    /// bounded-heap top-k.
    fn exact_top_k(items: &Tensor, query: &[f32], k: usize, excluded: &[usize]) -> Vec<ScoredItem> {
        let scores: Vec<f32> = (0..items.rows())
            .map(|i| dot_gemm_order(query, items.row(i)))
            .collect();
        top_k_filtered(&scores, k, excluded)
    }

    #[test]
    fn full_probe_matches_exact_bitwise() {
        let items = catalog(300, 16, 9);
        let index = IvfIndex::build(&items, 12, 42).unwrap();
        let mut rng = Rng64::seed_from(10);
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal()).collect();
            let (got, stats) = index.search(&q, 10, index.nlist(), &[]);
            let want = exact_top_k(&items, &q, 10, &[]);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.item, w.item);
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "item {}", g.item);
            }
            assert_eq!(stats.lists_probed, 12);
            assert_eq!(stats.rows_scanned, 300);
        }
    }

    #[test]
    fn traced_search_is_bit_identical_and_stamps_the_id() {
        let items = catalog(150, 8, 11);
        let index = IvfIndex::build(&items, 6, 4).unwrap();
        let q: Vec<f32> = items.row(3).to_vec();
        let (plain, plain_stats) = index.search(&q, 7, 3, &[2]);
        let (traced, traced_stats) = index.search_traced(&q, 7, 3, &[2], 0xDEAD_BEEF);
        assert_eq!(plain, traced, "trace id must never change the scan");
        assert_eq!(plain_stats.lists_probed, traced_stats.lists_probed);
        assert_eq!(plain_stats.rows_scanned, traced_stats.rows_scanned);
        assert_eq!(plain_stats.trace_id, 0);
        assert_eq!(traced_stats.trace_id, 0xDEAD_BEEF);
    }

    #[test]
    fn exclusions_are_skipped_and_uncounted() {
        let items = catalog(120, 8, 3);
        let index = IvfIndex::build(&items, 6, 1).unwrap();
        let q: Vec<f32> = items.row(17).to_vec(); // self-query: 17 would win
        let (top, stats) = index.search(&q, 5, index.nlist(), &[17, 17, 40]);
        assert!(top.iter().all(|s| s.item != 17 && s.item != 40));
        assert_eq!(top, exact_top_k(&items, &q, 5, &[17, 40]));
        assert_eq!(stats.rows_scanned, 118);
    }

    #[test]
    fn partial_probe_scans_fewer_rows() {
        let items = catalog(400, 8, 5);
        let index = IvfIndex::build(&items, 16, 2).unwrap();
        let q: Vec<f32> = items.row(0).to_vec();
        let (top, stats) = index.search(&q, 10, 4, &[]);
        assert_eq!(stats.lists_probed, 4);
        assert!(stats.rows_scanned < 400);
        assert!(!top.is_empty());
        // The self-item lives in a probed list (its own nearest centroid
        // ranks first for its own vector in the common case) — but the
        // guaranteed property is weaker: results are a subset of exact
        // scores, bit-identical where they overlap.
        let exact: Vec<ScoredItem> = exact_top_k(&items, &q, 400, &[]);
        for s in &top {
            let reference = exact.iter().find(|e| e.item == s.item).unwrap();
            assert_eq!(s.score.to_bits(), reference.score.to_bits());
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_search() {
        let dir = std::env::temp_dir().join(format!("wr_ann_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let items = catalog(150, 8, 21);
        let index = IvfIndex::build(&items, 10, 77).unwrap();
        let path = dir.join("index.wriv");
        index.save(&path).unwrap();
        let loaded = IvfIndex::load(&path, &items).unwrap();
        assert_eq!(loaded.nlist(), 10);
        assert_eq!(loaded.build_seed(), 77);
        for l in 0..10 {
            assert_eq!(loaded.list(l), index.list(l));
        }
        let q: Vec<f32> = items.row(3).to_vec();
        let (a, sa) = index.search(&q, 7, 3, &[]);
        let (b, sb) = loaded.search(&q, 7, 3, &[]);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_wrong_catalog_shape() {
        let dir = std::env::temp_dir().join(format!("wr_ann_shape_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let items = catalog(80, 8, 2);
        let index = IvfIndex::build(&items, 8, 1).unwrap();
        let path = dir.join("index.wriv");
        index.save(&path).unwrap();
        let other = catalog(81, 8, 2);
        assert!(matches!(
            IvfIndex::load(&path, &other).unwrap_err(),
            AnnError::Mismatch(_)
        ));
        let narrower = catalog(80, 4, 2);
        assert!(matches!(
            IvfIndex::load(&path, &narrower).unwrap_err(),
            AnnError::Mismatch(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
