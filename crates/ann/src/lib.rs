//! # wr-ann — sublinear retrieval over the whitened item table.
//!
//! The serving engine's exact scorer is one dense gemm `users·Vᵀ` over the
//! *entire* catalog — linear in |I|. This crate adds the classic IVF-flat
//! index on top of the same frozen table: a k-means coarse quantizer
//! partitions the catalog into `nlist` inverted lists, and a query scans
//! only the `nprobe` lists whose centroids score highest, turning the
//! per-query cost from `O(|I|·d)` into `O(nlist·d + scanned·d)`.
//!
//! Whitening is what makes this safe: the paper's ZCA step (Eq. 4–6)
//! renders the embedding space isotropic, and isotropic inner-product
//! geometry is exactly where coarse quantization behaves — cluster radii
//! are comparable, no dominant variance direction swallows the
//! partition, and a small `nprobe` already covers the true neighbors
//! (the same argument Soft-ZCA makes for semantic search).
//!
//! Design invariants, in the workspace's house style:
//!
//! * **Determinism.** K-means init is seeded ([`wr_tensor::Rng64`]),
//!   assignment runs on the `wr-runtime` pool with thread-count-independent
//!   chunking, centroid updates accumulate in ascending row order, and
//!   every comparison tie-breaks by ascending index via `total_cmp` —
//!   the same build inputs give a bit-identical index at `WR_THREADS=1`
//!   and `WR_THREADS=8`, across processes.
//! * **Exactness dial.** [`IvfIndex::search`] with `nprobe = nlist` scans
//!   every list with the *same float-add order* as the exact gemm scorer
//!   (plain ascending-`p` accumulation, matching `wr_tensor::matmul`'s
//!   per-element order), so the full-probe setting is bit-identical to
//!   exact — not merely "close". The serve crate's differential suite
//!   pins this with `top1_checksum` equality on a replayed trace.
//! * **Crash safety.** [`IvfIndex::save`] persists the quantizer via
//!   `wr_fault::write_atomic` in the CRC-sealed `WRIV` v1 format;
//!   [`IvfIndex::load`] treats the file as untrusted input (typed
//!   [`AnnError`]s, hostile-header guards, full corruption sweep in
//!   `tests/corruption.rs`) and re-attaches the catalog tensor so the
//!   scanned vectors can never drift from the serving table.

mod ivf;
mod kmeans;

pub use ivf::{IvfIndex, SearchStats, WRIV_VERSION};
pub use kmeans::{fit_kmeans, KMeans, KMeansConfig};

use std::io;

/// Typed errors for index construction, search, and persistence.
///
/// The `NonFinite` arm exists so a NaN-poisoned embedding row is rejected
/// *at build time* with the offending row named, instead of silently
/// landing in some list and corrupting every later distance comparison
/// (NaN compares false against everything — a quarantine surprise the
/// serving path must never inherit from the index).
#[derive(Debug)]
pub enum AnnError {
    /// An input row contains NaN/Inf; the index refuses to build.
    NonFinite { row: usize },
    /// Impossible build parameters (zero clusters, more clusters than
    /// rows, empty catalog).
    InvalidConfig(String),
    Io(io::Error),
    /// Not a WRIV file / wrong version / truncated structure.
    Format(String),
    /// The integrity footer does not match the payload.
    Corrupt(String),
    /// The persisted index disagrees with the attached catalog tensor.
    Mismatch(String),
}

impl std::fmt::Display for AnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnError::NonFinite { row } => {
                write!(f, "ann input row {row} is not finite (NaN/Inf)")
            }
            AnnError::InvalidConfig(m) => write!(f, "ann config: {m}"),
            AnnError::Io(e) => write!(f, "ann io: {e}"),
            AnnError::Format(m) => write!(f, "ann format: {m}"),
            AnnError::Corrupt(m) => write!(f, "ann corrupt: {m}"),
            AnnError::Mismatch(m) => write!(f, "ann mismatch: {m}"),
        }
    }
}

impl std::error::Error for AnnError {}

impl From<io::Error> for AnnError {
    fn from(e: io::Error) -> Self {
        AnnError::Io(e)
    }
}
