//! K-means / IVF determinism suite (ISSUE 6 test satellite).
//!
//! The quantizer is only usable as serving infrastructure if the same
//! inputs produce the same index *everywhere*: at any `WR_THREADS`, and
//! across independent processes (no address-dependent or time-dependent
//! state). These tests pin both, plus the awkward shapes: empty lists
//! from duplicate points, singleton clusters, and NaN rejection.

use wr_ann::{fit_kmeans, AnnError, IvfIndex, KMeansConfig};
use wr_tensor::{Rng64, Tensor};

fn catalog(n: usize, dim: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    Tensor::randn(&[n, dim], &mut rng)
}

fn fit_bits(data: &Tensor, cfg: &KMeansConfig) -> (Vec<u32>, Vec<u32>) {
    let fit = fit_kmeans(data, cfg).unwrap();
    let cent_bits: Vec<u32> = fit.centroids.data().iter().map(|v| v.to_bits()).collect();
    (cent_bits, fit.assignments)
}

#[test]
fn kmeans_bit_identical_across_thread_counts() {
    let data = catalog(500, 12, 31);
    let cfg = KMeansConfig {
        n_clusters: 24,
        max_iters: 25,
        seed: 7,
    };
    wr_runtime::set_threads(1);
    let single = fit_bits(&data, &cfg);
    wr_runtime::set_threads(8);
    let pooled = fit_bits(&data, &cfg);
    wr_runtime::set_threads(1);
    assert_eq!(single.0, pooled.0, "centroids differ across WR_THREADS");
    assert_eq!(single.1, pooled.1, "assignments differ across WR_THREADS");
}

#[test]
fn kmeans_repeatable_within_and_across_runs() {
    // Two fits in this process must agree bit-for-bit; the cross-process
    // half of the guarantee is pinned by scripts/check.sh, which runs
    // this whole suite twice (default threads and WR_THREADS=1) in
    // separate processes — any address- or schedule-dependent state would
    // break one of the two invocations.
    let data = catalog(300, 8, 5);
    let cfg = KMeansConfig {
        n_clusters: 10,
        max_iters: 25,
        seed: 99,
    };
    assert_eq!(fit_bits(&data, &cfg), fit_bits(&data, &cfg));
    // Different seeds genuinely move the init (not a constant function).
    let other = fit_bits(
        &data,
        &KMeansConfig {
            seed: 100,
            ..cfg
        },
    );
    assert_ne!(fit_bits(&data, &cfg).1, other.1);
}

#[test]
fn ivf_build_bit_identical_across_thread_counts() {
    let items = catalog(400, 8, 17);
    wr_runtime::set_threads(1);
    let a = IvfIndex::build(&items, 16, 3).unwrap();
    wr_runtime::set_threads(8);
    let b = IvfIndex::build(&items, 16, 3).unwrap();
    wr_runtime::set_threads(1);
    for l in 0..16 {
        assert_eq!(a.list(l), b.list(l), "list {l} differs across WR_THREADS");
    }
    let q: Vec<f32> = items.row(42).to_vec();
    let (ra, sa) = a.search(&q, 10, 4, &[]);
    let (rb, sb) = b.search(&q, 10, 4, &[]);
    assert_eq!(ra, rb);
    assert_eq!(sa, sb);
}

#[test]
fn duplicate_points_yield_empty_lists_searchable() {
    // 20 distinct values, each duplicated 10 times, k=20: most clusters
    // collapse onto the duplicates and several lists end up empty. Build
    // and search must both stay well-defined.
    let mut data = Vec::new();
    for v in 0..20 {
        for _ in 0..10 {
            data.push(v as f32);
            data.push(-(v as f32));
        }
    }
    let items = Tensor::from_vec(data, &[200, 2]);
    let index = IvfIndex::build(&items, 20, 13).unwrap();
    let total: usize = (0..20).map(|l| index.list(l).len()).sum();
    assert_eq!(total, 200, "lists must partition the catalog");
    let q = [19.0f32, -19.0];
    let (top, stats) = index.search(&q, 5, index.nlist(), &[]);
    assert_eq!(top.len(), 5);
    // Best inner product is the v=19 duplicate block; lowest id wins ties.
    assert_eq!(top[0].item, 190);
    assert_eq!(stats.rows_scanned, 200);
}

#[test]
fn singleton_clusters_are_ordinary() {
    // One far outlier: with enough clusters it gets a list of its own.
    let mut rng = Rng64::seed_from(2);
    let mut data = Vec::new();
    for _ in 0..99 {
        data.push(rng.normal() * 0.1);
        data.push(rng.normal() * 0.1);
    }
    data.push(100.0);
    data.push(100.0);
    let items = Tensor::from_vec(data, &[100, 2]);
    let index = IvfIndex::build(&items, 8, 4).unwrap();
    let outlier_list = (0..8)
        .find(|&l| index.list(l).contains(&99))
        .expect("outlier assigned somewhere");
    assert_eq!(index.list(outlier_list), &[99]);
    // Probing a single list with the outlier's own vector finds it.
    let (top, stats) = index.search(&[100.0, 100.0], 1, 1, &[]);
    assert_eq!(top[0].item, 99);
    assert_eq!(stats.lists_probed, 1);
    assert_eq!(stats.rows_scanned, 1);
}

#[test]
fn nan_rows_rejected_with_typed_error() {
    let mut items = catalog(50, 4, 1);
    items.row_mut(31)[2] = f32::NAN;
    match IvfIndex::build(&items, 5, 1).unwrap_err() {
        AnnError::NonFinite { row } => assert_eq!(row, 31),
        other => panic!("expected NonFinite, got {other:?}"),
    }
    let mut inf = catalog(50, 4, 1);
    inf.row_mut(0)[0] = f32::INFINITY;
    assert!(matches!(
        IvfIndex::build(&inf, 5, 1).unwrap_err(),
        AnnError::NonFinite { row: 0 }
    ));
}
