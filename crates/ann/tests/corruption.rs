//! WRIV corruption sweep (mirrors the WRCK checkpoint hardening).
//!
//! The index file is untrusted input on the serving hot path: a torn
//! write, a flipped bit, or a hostile header must surface as a typed
//! `AnnError` — never a panic, never a silently wrong index. The sweep
//! is exhaustive: *every* truncation point and *every* single-bit flip
//! of a real file must be rejected.

use std::path::PathBuf;

use wr_ann::{AnnError, IvfIndex};
use wr_fault::crc32;
use wr_tensor::{Rng64, Tensor};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wr_ann_corrupt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_index_bytes(items: &Tensor) -> Vec<u8> {
    let dir = scratch("seed");
    let path = dir.join("index.wriv");
    IvfIndex::build(items, 6, 11).unwrap().save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

#[test]
fn every_truncation_point_is_rejected() {
    let items = Tensor::randn(&[60, 4], &mut Rng64::seed_from(8));
    let bytes = small_index_bytes(&items);
    let dir = scratch("trunc");
    let path = dir.join("t.wriv");
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let err = IvfIndex::load(&path, &items).expect_err(&format!("truncated to {len} bytes"));
        assert!(
            matches!(err, AnnError::Corrupt(_)),
            "truncation to {len} gave {err:?}"
        );
    }
    // The untouched file still loads.
    std::fs::write(&path, &bytes).unwrap();
    IvfIndex::load(&path, &items).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let items = Tensor::randn(&[60, 4], &mut Rng64::seed_from(8));
    let bytes = small_index_bytes(&items);
    let dir = scratch("flip");
    let path = dir.join("f.wriv");
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 1 << bit;
            std::fs::write(&path, &damaged).unwrap();
            let err = IvfIndex::load(&path, &items)
                .expect_err(&format!("bit {bit} of byte {pos} flipped"));
            assert!(
                matches!(err, AnnError::Corrupt(_)),
                "flip at {pos}.{bit} gave {err:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hand-build a sealed WRIV file from a raw (pre-footer) payload so the
/// hostile-header paths — which sit *behind* the CRC gate — are reachable.
fn sealed(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    let crc = crc32(payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(b"VIRW");
    out
}

fn tiny_payload(nlist: u32, dim: u32, n_items: u64, lists: &[&[u32]]) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(b"WRIV");
    p.extend_from_slice(&1u32.to_le_bytes()); // version
    p.extend_from_slice(&0u64.to_le_bytes()); // seed
    p.extend_from_slice(&nlist.to_le_bytes());
    p.extend_from_slice(&dim.to_le_bytes());
    p.extend_from_slice(&n_items.to_le_bytes());
    for _ in 0..(nlist as usize * dim as usize) {
        p.extend_from_slice(&0.0f32.to_le_bytes());
    }
    for list in lists {
        p.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for &id in *list {
            p.extend_from_slice(&id.to_le_bytes());
        }
    }
    p
}

fn load_bytes(tag: &str, bytes: &[u8], items: &Tensor) -> Result<IvfIndex, AnnError> {
    let dir = scratch(tag);
    let path = dir.join("h.wriv");
    std::fs::write(&path, bytes).unwrap();
    let out = IvfIndex::load(&path, items);
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn hostile_headers_are_typed_errors() {
    let items = Tensor::from_vec(vec![0.0; 2], &[2, 1]);

    // Baseline: a well-formed tiny file loads.
    let good = sealed(&tiny_payload(1, 1, 2, &[&[0, 1]]));
    load_bytes("good", &good, &items).unwrap();

    // nlist > n_items (also covers absurd nlist values: the check fires
    // before any centroid allocation).
    let huge = sealed(&tiny_payload(3, 1, 2, &[]));
    assert!(matches!(
        load_bytes("huge", &huge, &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Shape disagreement with the attached catalog.
    let wide = sealed(&tiny_payload(1, 4, 2, &[&[0, 1]]));
    assert!(matches!(
        load_bytes("wide", &wide, &items).unwrap_err(),
        AnnError::Mismatch(_)
    ));

    // List length beyond the catalog.
    let overlong = sealed(&tiny_payload(1, 1, 2, &[&[0, 1, 1]]));
    assert!(matches!(
        load_bytes("overlong", &overlong, &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Out-of-range id.
    let oob = sealed(&tiny_payload(1, 1, 2, &[&[0, 7]]));
    assert!(matches!(
        load_bytes("oob", &oob, &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Duplicate id.
    let dup = sealed(&tiny_payload(1, 1, 2, &[&[0, 0]]));
    assert!(matches!(
        load_bytes("dup", &dup, &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Lists that do not cover the catalog.
    let sparse = sealed(&tiny_payload(1, 1, 2, &[&[0]]));
    assert!(matches!(
        load_bytes("sparse", &sparse, &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Wrong magic and wrong version (resealed so the CRC gate passes).
    let mut wrong_magic = tiny_payload(1, 1, 2, &[&[0, 1]]);
    wrong_magic[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        load_bytes("magic", &sealed(&wrong_magic), &items).unwrap_err(),
        AnnError::Format(_)
    ));
    let mut v9 = tiny_payload(1, 1, 2, &[&[0, 1]]);
    v9[4..8].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        load_bytes("version", &sealed(&v9), &items).unwrap_err(),
        AnnError::Format(_)
    ));

    // Trailing garbage after the last list.
    let mut trailing = tiny_payload(1, 1, 2, &[&[0, 1]]);
    trailing.extend_from_slice(&[0xAB; 3]);
    assert!(matches!(
        load_bytes("trailing", &sealed(&trailing), &items).unwrap_err(),
        AnnError::Format(_)
    ));
}
