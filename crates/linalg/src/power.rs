//! Power iteration with deflation: top-k singular values without a full
//! eigendecomposition — for spectrum statistics on matrices too large for
//! the O(d³)-per-sweep Jacobi path.

use wr_tensor::{Rng64, Tensor};

/// Top-`k` singular values of `a` (descending) by power iteration on the
/// Gram matrix with Hotelling deflation.
///
/// Accuracy degrades for clustered singular values (power iteration
/// converges at the ratio of adjacent eigenvalues); for exact spectra use
/// [`crate::singular_values`].
pub fn top_singular_values(a: &Tensor, k: usize, iterations: usize, seed: u64) -> Vec<f32> {
    assert!(a.rank() == 2, "top_singular_values expects a matrix");
    let (m, n) = (a.rows(), a.cols());
    let small = m.min(n);
    let k = k.min(small);
    let mut rng = Rng64::seed_from(seed);

    // Work on the smaller Gram matrix: G = AᵀA or AAᵀ.
    let gram = if n <= m { a.matmul_tn(a) } else { a.matmul_nt(a) };
    let d = gram.rows();

    let mut deflated = gram;
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        // Power iteration for the current dominant eigenpair.
        let mut v = Tensor::randn(&[d], &mut rng);
        normalize(&mut v);
        let mut lambda = 0.0f32;
        for _ in 0..iterations {
            let mut w = deflated.matvec(&v);
            lambda = dot(w.data(), v.data());
            let norm = w.frob_norm();
            if norm < 1e-20 {
                lambda = 0.0;
                break;
            }
            w.scale_(1.0 / norm);
            v = w;
        }
        out.push(lambda.max(0.0).sqrt());
        // Deflate: G ← G − λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                *deflated.at2_mut(i, j) -= lambda * v.data()[i] * v.data()[j];
            }
        }
    }
    out
}

fn normalize(v: &mut Tensor) {
    let n = v.frob_norm().max(1e-20);
    v.scale_(1.0 / n);
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    wr_tensor::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::singular_values;

    #[test]
    fn matches_exact_svd_on_separated_spectrum() {
        let mut rng = Rng64::seed_from(1);
        // Construct a matrix with well-separated singular values.
        let u = Tensor::randn(&[40, 5], &mut rng);
        let scales = [8.0f32, 4.0, 2.0, 1.0, 0.5];
        let mut us = u.clone();
        for (j, &s) in scales.iter().enumerate() {
            for i in 0..40 {
                *us.at2_mut(i, j) *= s;
            }
        }
        let v = Tensor::randn(&[12, 5], &mut rng);
        let a = us.matmul_nt(&v);

        let exact = singular_values(&a).unwrap();
        let approx = top_singular_values(&a, 3, 200, 7);
        for (e, p) in exact.iter().zip(&approx) {
            let rel = (e - p).abs() / e.max(1e-6);
            assert!(rel < 0.05, "exact {e} vs power {p}");
        }
        // descending
        assert!(approx[0] >= approx[1] && approx[1] >= approx[2]);
    }

    #[test]
    fn k_is_clamped() {
        let mut rng = Rng64::seed_from(2);
        let a = Tensor::randn(&[6, 3], &mut rng);
        let sv = top_singular_values(&a, 10, 100, 3);
        assert_eq!(sv.len(), 3);
    }

    #[test]
    fn zero_matrix_yields_zeros() {
        let a = Tensor::zeros(&[5, 4]);
        let sv = top_singular_values(&a, 2, 50, 4);
        assert!(sv.iter().all(|&s| s < 1e-6));
    }
}
