//! Cyclic Jacobi eigendecomposition for symmetric matrices.

use crate::{LinalgError, Result};
use wr_tensor::Tensor;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in descending order; `vectors` holds the
/// corresponding eigenvectors as *columns*.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, descending.
    pub values: Vec<f32>,
    /// Eigenvectors as columns, same order as `values`.
    pub vectors: Tensor,
}

impl SymEig {
    /// Reconstruct `V diag(f(λ)) Vᵀ` — the workhorse for whitening, where
    /// `f` is `λ → (λ+ε)^(-1/2)` and friends.
    ///
    /// The diagonal scaling fans out row blocks across the [`wr_runtime`]
    /// pool (each row scales independently) and the closing `matmul_nt`
    /// is itself parallel, so whitening-matrix construction rides the pool
    /// end to end. Per-element arithmetic is unchanged → bit-identical for
    /// any `WR_THREADS`.
    pub fn rebuild_with(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let n = self.values.len();
        let v = &self.vectors;
        let scales: Vec<f32> = self.values.iter().map(|&l| f(l)).collect();
        // V * diag(f(λ)), row blocks in parallel.
        let mut vd = v.clone();
        wr_runtime::parallel_chunks_mut(vd.data_mut(), 8 * n, |_chunk, rows| {
            for row in rows.chunks_exact_mut(n) {
                for (x, &s) in row.iter_mut().zip(&scales) {
                    *x *= s;
                }
            }
        });
        vd.matmul_nt(v)
    }
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 64;

/// Convergence threshold on the off-diagonal Frobenius norm, relative to
/// the matrix norm.
const TOL: f64 = 1e-12;

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// The input is symmetrized (`(A + Aᵀ)/2`) to absorb round-off asymmetry.
/// Internal arithmetic is `f64`.
pub fn sym_eig(a: &Tensor) -> Result<SymEig> {
    if a.rank() != 2 || a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: if a.rank() == 2 { a.rows() } else { 0 },
            cols: if a.rank() == 2 { a.cols() } else { 0 },
        });
    }
    if a.non_finite_count() > 0 {
        return Err(LinalgError::NonFinite);
    }
    let n = a.rows();
    // Symmetrize into an f64 working copy.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = 0.5 * (a.at2(i, j) as f64 + a.at2(j, i) as f64);
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let frob: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if (2.0 * off).sqrt() <= TOL * frob {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Rotation that annihilates m[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        // One more check: after the final sweep the matrix may have landed
        // within tolerance without re-testing.
        if (2.0 * off).sqrt() > TOL.max(1e-9) * frob {
            return Err(LinalgError::NoConvergence {
                off_diagonal_norm: (2.0 * off).sqrt(),
            });
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let eigvals: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    order.sort_by(|&i, &j| eigvals[j].total_cmp(&eigvals[i]));

    let values: Vec<f32> = order.iter().map(|&i| eigvals[i] as f32).collect();
    let mut vectors = Tensor::zeros(&[n, n]);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            *vectors.at2_mut(row, new_col) = v[row * n + old_col] as f32;
        }
    }
    Ok(SymEig { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEig) -> Tensor {
        e.rebuild_with(|x| x)
    }

    #[test]
    fn diagonal_matrix() {
        let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 1.0], &[2, 2]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
        // eigenvector for λ=3 is (1,1)/sqrt(2) up to sign
        let v0 = (e.vectors.at2(0, 0), e.vectors.at2(1, 0));
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-5);
        assert!((v0.0 - v0.1).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_random_spd() {
        let n = 24;
        let mut state = 123u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let b = Tensor::from_vec((0..n * n).map(|_| next()).collect(), &[n, n]);
        let a = b.matmul_tn(&b); // b^T b is SPSD
        let e = sym_eig(&a).unwrap();
        let r = reconstruct(&e);
        let err = a.sub(&r).frob_norm() / a.frob_norm();
        assert!(err < 1e-4, "reconstruction error {err}");
        // eigenvalues nonincreasing and nonnegative
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-5);
        }
        assert!(e.values[n - 1] > -1e-4);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Tensor::from_vec(
            vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0],
            &[3, 3],
        );
        let e = sym_eig(&a).unwrap();
        let vtv = e.vectors.matmul_tn(&e.vectors);
        let err = vtv.sub(&Tensor::eye(3)).frob_norm();
        assert!(err < 1e-5, "V^T V deviates from I by {err}");
    }

    #[test]
    fn rebuild_with_inverse_sqrt_whitens() {
        let a = Tensor::from_vec(vec![4.0, 0.0, 0.0, 9.0], &[2, 2]);
        let e = sym_eig(&a).unwrap();
        let w = e.rebuild_with(|l| 1.0 / l.sqrt());
        // w a w should be identity
        let waw = w.matmul(&a).matmul(&w);
        assert!(waw.sub(&Tensor::eye(2)).frob_norm() < 1e-5);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            sym_eig(&Tensor::zeros(&[2, 3])),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let a = Tensor::from_vec(vec![1.0, f32::NAN, f32::NAN, 1.0], &[2, 2]);
        assert!(matches!(sym_eig(&a), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn rebuild_is_bit_identical_across_thread_counts() {
        let n = 24;
        let mut state = 9u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let b = Tensor::from_vec((0..n * n).map(|_| next()).collect(), &[n, n]);
        let a = b.matmul_tn(&b);
        let run = |threads: usize| {
            wr_runtime::set_threads(threads);
            let e = sym_eig(&a).unwrap();
            e.rebuild_with(|l| 1.0 / (l + 1e-5).sqrt())
        };
        let serial = run(1);
        let parallel = run(8);
        wr_runtime::set_threads(1);
        assert_eq!(serial.data(), parallel.data());
    }

    #[test]
    fn identity_stays_identity() {
        let e = sym_eig(&Tensor::eye(5)).unwrap();
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }
}
