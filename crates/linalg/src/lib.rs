//! Numerical linear algebra for the WhitenRec reproduction.
//!
//! Everything operates on [`wr_tensor::Tensor`] matrices and does its
//! internal accumulation in `f64` for stability (whitening is sensitive to
//! the accuracy of small eigenvalues), returning `f32` tensors.
//!
//! Provided decompositions:
//! * [`sym_eig`] — cyclic Jacobi eigendecomposition of a symmetric matrix,
//!   eigenvalues sorted descending.
//! * [`cholesky`] — lower-triangular Cholesky factor of an SPD matrix.
//! * [`svd_thin`] — thin SVD of a rectangular matrix via the Gram matrix.
//! * [`pinv`] — Moore–Penrose pseudoinverse.
//!
//! Plus the statistics the paper's analysis needs: [`covariance`],
//! [`condition_number`], [`effective_rank`].

mod cholesky;
mod cov;
mod jacobi;
mod pinv;
mod power;
mod svd;

pub use cholesky::{cholesky, solve_lower_triangular, solve_upper_triangular};
pub use cov::{condition_number, covariance, covariance_of_rows, effective_rank};
pub use jacobi::{sym_eig, SymEig};
pub use pinv::pinv;
pub use power::top_singular_values;
pub use svd::{singular_values, svd_thin, Svd};

/// Numerical failure modes for the decompositions.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Input was not square where a square matrix is required.
    NotSquare { rows: usize, cols: usize },
    /// Cholesky hit a non-positive pivot: the matrix is not positive definite.
    NotPositiveDefinite { pivot: usize, value: f64 },
    /// Jacobi failed to converge within the sweep budget.
    NoConvergence { off_diagonal_norm: f64 },
    /// Input contained NaN or infinite entries.
    NonFinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, square required")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "not positive definite: pivot {pivot} = {value}")
            }
            LinalgError::NoConvergence { off_diagonal_norm } => {
                write!(f, "Jacobi did not converge (off-diag norm {off_diagonal_norm})")
            }
            LinalgError::NonFinite => write!(f, "input contains NaN/inf"),
        }
    }
}

impl std::error::Error for LinalgError {}

pub type Result<T> = std::result::Result<T, LinalgError>;
