//! Covariance, condition number and spectral statistics.

use crate::{jacobi::sym_eig, Result};
use wr_tensor::Tensor;

/// Covariance of a `d × n` matrix whose *columns* are samples
/// (the paper's `X ∈ R^{d_t × |I|}` layout):
/// `Σ = (X - μ1ᵀ)(X - μ1ᵀ)ᵀ / n + ε I`.
pub fn covariance(x: &Tensor, eps: f32) -> Tensor {
    assert!(x.rank() == 2, "covariance requires a matrix");
    let (d, n) = (x.rows(), x.cols());
    assert!(n > 0, "covariance of zero samples");
    // Column-sample layout: mean over columns = mean of each row.
    let mu = x.mean_cols(); // length d
    let centered = x.add_col_broadcast(&mu.scale(-1.0));
    let mut cov = centered.matmul_nt(&centered).scale(1.0 / n as f32);
    for i in 0..d {
        *cov.at2_mut(i, i) += eps;
    }
    cov
}

/// Covariance of an `n × d` matrix whose *rows* are samples (the layout the
/// models use for item-embedding matrices).
pub fn covariance_of_rows(x: &Tensor, eps: f32) -> Tensor {
    assert!(x.rank() == 2, "covariance_of_rows requires a matrix");
    let (n, d) = (x.rows(), x.cols());
    assert!(n > 0, "covariance of zero samples");
    let mu = x.mean_rows(); // length d
    let centered = x.sub_row_broadcast(&mu);
    let mut cov = centered.matmul_tn(&centered).scale(1.0 / n as f32);
    for i in 0..d {
        *cov.at2_mut(i, i) += eps;
    }
    cov
}

/// Condition number `κ(A) = λ_max / λ_min` of a symmetric PSD matrix.
///
/// The smallest eigenvalue is floored at `floor` to keep κ finite for
/// numerically singular matrices; the paper plots κ on a log scale, so a
/// huge-but-finite value carries the same signal as infinity.
pub fn condition_number(a: &Tensor, floor: f32) -> Result<f32> {
    let eig = sym_eig(a)?;
    let lmax = eig.values.first().copied().unwrap_or(0.0).max(floor);
    let lmin = eig.values.last().copied().unwrap_or(0.0).max(floor);
    Ok(lmax / lmin)
}

/// Effective rank: `exp(H(p))` where `p` is the eigenvalue distribution.
///
/// A fully whitened `d × d` covariance has effective rank ≈ `d`; an
/// anisotropic one collapses toward 1.
pub fn effective_rank(a: &Tensor) -> Result<f32> {
    let eig = sym_eig(a)?;
    let positive: Vec<f32> = eig.values.iter().cloned().filter(|&l| l > 0.0).collect();
    let total: f32 = positive.iter().sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    let entropy: f32 = positive
        .iter()
        .map(|&l| {
            let p = l / total;
            -p * p.ln()
        })
        .sum();
    Ok(entropy.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn covariance_of_isotropic_samples() {
        let mut rng = Rng64::seed_from(1);
        let x = Tensor::randn(&[4, 5000], &mut rng); // d=4, n=5000 columns
        let cov = covariance(&x, 0.0);
        // Should be close to identity.
        let err = cov.sub(&Tensor::eye(4)).frob_norm();
        assert!(err < 0.15, "covariance deviates from I by {err}");
    }

    #[test]
    fn row_layout_matches_column_layout() {
        let mut rng = Rng64::seed_from(2);
        let xr = Tensor::randn(&[100, 6], &mut rng); // rows are samples
        let c1 = covariance_of_rows(&xr, 1e-5);
        let c2 = covariance(&xr.transpose(), 1e-5);
        assert!(c1.sub(&c2).frob_norm() < 1e-4);
    }

    #[test]
    fn eps_regularizes_diagonal() {
        let x = Tensor::zeros(&[3, 10]);
        let cov = covariance(&x, 0.5);
        assert!(cov.sub(&Tensor::eye(3).scale(0.5)).frob_norm() < 1e-6);
    }

    #[test]
    fn condition_number_diagonal() {
        let a = Tensor::from_vec(vec![8.0, 0.0, 0.0, 2.0], &[2, 2]);
        let k = condition_number(&a, 1e-12).unwrap();
        assert!((k - 4.0).abs() < 1e-4);
        assert!((condition_number(&Tensor::eye(5), 1e-12).unwrap() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn effective_rank_extremes() {
        // isotropic: effective rank = d
        let er = effective_rank(&Tensor::eye(6)).unwrap();
        assert!((er - 6.0).abs() < 1e-3);
        // rank-1: effective rank = 1
        let mut a = Tensor::zeros(&[6, 6]);
        *a.at2_mut(0, 0) = 10.0;
        let er1 = effective_rank(&a).unwrap();
        assert!((er1 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn anisotropic_has_high_condition_number() {
        let mut rng = Rng64::seed_from(5);
        // samples dominated by one direction
        let n = 2000;
        let mut data = Vec::with_capacity(3 * n);
        for _ in 0..n {
            let shared = rng.normal() * 10.0;
            data.push(shared + 0.1 * rng.normal());
        }
        for _ in 0..n {
            data.push(0.1 * rng.normal());
        }
        for _ in 0..n {
            data.push(0.1 * rng.normal());
        }
        let x = Tensor::from_vec(data, &[3, n]);
        let cov = covariance(&x, 1e-6);
        let k = condition_number(&cov, 1e-12).unwrap();
        assert!(k > 100.0, "expected ill-conditioned covariance, κ={k}");
    }
}
