//! Moore–Penrose pseudoinverse.

use crate::{svd::svd_thin, Result};
use wr_tensor::Tensor;

/// Relative cutoff below which singular values are treated as zero.
const PINV_RCOND: f32 = 1e-5;

/// Moore–Penrose pseudoinverse `A⁺ = V diag(σ⁺) Uᵀ`.
///
/// Used by the Proposition IV.1 verification (`K_Z = Z⁺ Z`) and the flow
/// whitening inverse checks.
pub fn pinv(a: &Tensor) -> Result<Tensor> {
    let svd = svd_thin(a)?;
    let smax = svd.sigma.first().copied().unwrap_or(0.0);
    let r = svd.sigma.len();
    // V diag(σ⁺)
    let mut vs = svd.v.clone();
    for j in 0..r {
        let s = svd.sigma[j];
        let inv = if s > PINV_RCOND * smax { 1.0 / s } else { 0.0 };
        for i in 0..vs.rows() {
            *vs.at2_mut(i, j) *= inv;
        }
    }
    Ok(vs.matmul_nt(&svd.u))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(m: usize, n: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        Tensor::from_vec((0..m * n).map(|_| next()).collect(), &[m, n])
    }

    #[test]
    fn inverse_of_square_invertible() {
        let mut a = pseudo(6, 6, 2);
        for i in 0..6 {
            *a.at2_mut(i, i) += 2.0; // well conditioned
        }
        let ainv = pinv(&a).unwrap();
        let err = a.matmul(&ainv).sub(&Tensor::eye(6)).frob_norm();
        assert!(err < 1e-3, "A A+ deviates from I by {err}");
    }

    #[test]
    fn penrose_condition_one() {
        // A A+ A = A for a rectangular matrix.
        let a = pseudo(10, 4, 3);
        let ap = pinv(&a).unwrap();
        assert_eq!(ap.dims(), &[4, 10]);
        let aapa = a.matmul(&ap).matmul(&a);
        let err = aapa.sub(&a).frob_norm() / a.frob_norm();
        assert!(err < 1e-3, "Penrose-1 error {err}");
    }

    #[test]
    fn penrose_condition_two() {
        // A+ A A+ = A+
        let a = pseudo(5, 9, 4);
        let ap = pinv(&a).unwrap();
        let apaap = ap.matmul(&a).matmul(&ap);
        let err = apaap.sub(&ap).frob_norm() / ap.frob_norm();
        assert!(err < 1e-3, "Penrose-2 error {err}");
    }

    #[test]
    fn pinv_of_rank_deficient() {
        let u = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4, 1]);
        let v = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let a = u.matmul(&v); // rank 1, 4x2
        let ap = pinv(&a).unwrap();
        let aapa = a.matmul(&ap).matmul(&a);
        assert!(aapa.sub(&a).frob_norm() / a.frob_norm() < 1e-3);
    }
}
