//! Thin singular value decomposition via the Gram matrix.

use crate::{jacobi::sym_eig, Result};
use wr_tensor::Tensor;

/// Thin SVD `A = U diag(σ) Vᵀ` of an `m × n` matrix with `r = min(m, n)`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m × r` left singular vectors.
    pub u: Tensor,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f32>,
    /// `n × r` right singular vectors.
    pub v: Tensor,
}

/// Threshold below which a singular value is treated as zero, relative to
/// the largest singular value.
const SV_RELATIVE_EPS: f32 = 1e-6;

/// Compute a thin SVD by eigendecomposing the smaller Gram matrix.
///
/// For `m ≥ n` this uses `AᵀA = V Σ² Vᵀ` and recovers `U = A V Σ⁻¹`;
/// otherwise it operates on `AAᵀ`. Accuracy for tiny singular values is
/// limited by the squaring (≈ sqrt of machine epsilon), which is ample for
/// the spectrum plots and whitening checks in this project.
pub fn svd_thin(a: &Tensor) -> Result<Svd> {
    assert!(a.rank() == 2, "svd_thin requires a matrix");
    let (m, n) = (a.rows(), a.cols());
    if m >= n {
        let gram = a.matmul_tn(a); // n×n
        let eig = sym_eig(&gram)?;
        let sigma: Vec<f32> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors; // n×n, columns are right singular vectors
        // U = A V Σ^{-1}, zero column where σ ~ 0.
        let av = a.matmul(&v); // m×n
        let mut u = av;
        let smax = sigma.first().copied().unwrap_or(0.0).max(1e-30);
        for j in 0..n {
            let s = sigma[j];
            let inv = if s > SV_RELATIVE_EPS * smax { 1.0 / s } else { 0.0 };
            for i in 0..m {
                *u.at2_mut(i, j) *= inv;
            }
        }
        Ok(Svd { u, sigma, v })
    } else {
        // Decompose the transpose and swap factors.
        let svd_t = svd_thin(&a.transpose())?;
        Ok(Svd {
            u: svd_t.v,
            sigma: svd_t.sigma,
            v: svd_t.u,
        })
    }
}

/// Singular values only (descending).
pub fn singular_values(a: &Tensor) -> Result<Vec<f32>> {
    let (m, n) = (a.rows(), a.cols());
    let gram = if m >= n { a.matmul_tn(a) } else { a.matmul_nt(a) };
    let eig = sym_eig(&gram)?;
    Ok(eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect())
}

impl Svd {
    /// Reconstruct the original matrix `U diag(σ) Vᵀ`.
    pub fn reconstruct(&self) -> Tensor {
        let r = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..self.u.rows() {
                *us.at2_mut(i, j) *= self.sigma[j];
            }
        }
        us.matmul_nt(&self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(m: usize, n: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        Tensor::from_vec((0..m * n).map(|_| next()).collect(), &[m, n])
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = pseudo(20, 8, 3);
        let svd = svd_thin(&a).unwrap();
        let err = a.sub(&svd.reconstruct()).frob_norm() / a.frob_norm();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = pseudo(6, 17, 5);
        let svd = svd_thin(&a).unwrap();
        let err = a.sub(&svd.reconstruct()).frob_norm() / a.frob_norm();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn singular_values_of_diagonal() {
        let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 0.0, 2.0, 0.0], &[2, 3]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 3.0).abs() < 1e-4);
        assert!((s[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn sigma_descending_nonnegative() {
        let a = pseudo(30, 10, 7);
        let s = singular_values(&a).unwrap();
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-5);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_deficient_matrix() {
        // rank-1 matrix: outer product
        let u = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
        let v = Tensor::from_vec(vec![4.0, 5.0], &[1, 2]);
        let a = u.matmul(&v);
        let s = singular_values(&a).unwrap();
        assert!(s[1] / s[0] < 1e-3, "second sv should vanish: {s:?}");
        let svd = svd_thin(&a).unwrap();
        let err = a.sub(&svd.reconstruct()).frob_norm() / a.frob_norm();
        assert!(err < 1e-3);
    }

    #[test]
    fn orthonormal_factors() {
        let a = pseudo(15, 6, 11);
        let svd = svd_thin(&a).unwrap();
        let vtv = svd.v.matmul_tn(&svd.v);
        assert!(vtv.sub(&Tensor::eye(6)).frob_norm() < 1e-3);
        let utu = svd.u.matmul_tn(&svd.u);
        assert!(utu.sub(&Tensor::eye(6)).frob_norm() < 1e-2);
    }
}
