//! Cholesky factorization and triangular solves.

use crate::{LinalgError, Result};
use wr_tensor::Tensor;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// The input must be symmetric positive definite; a non-positive pivot
/// returns [`LinalgError::NotPositiveDefinite`]. Internal arithmetic is
/// `f64`.
pub fn cholesky(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: if a.rank() == 2 { a.rows() } else { 0 },
            cols: if a.rank() == 2 { a.cols() } else { 0 },
        });
    }
    if a.non_finite_count() > 0 {
        return Err(LinalgError::NonFinite);
    }
    let n = a.rows();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.at2(i, j) as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite {
                        pivot: i,
                        value: sum,
                    });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(Tensor::from_vec(l.into_iter().map(|x| x as f32).collect(), &[n, n]))
}

/// Solve `L X = B` for lower-triangular `L` (forward substitution), where
/// `B` is a matrix whose columns are independent right-hand sides.
pub fn solve_lower_triangular(l: &Tensor, b: &Tensor) -> Tensor {
    assert!(l.rank() == 2 && l.rows() == l.cols(), "L must be square");
    assert_eq!(l.rows(), b.rows(), "dimension mismatch in forward solve");
    let n = l.rows();
    let m = b.cols();
    let mut x = vec![0.0f64; n * m];
    for col in 0..m {
        for i in 0..n {
            let mut sum = b.at2(i, col) as f64;
            for k in 0..i {
                sum -= l.at2(i, k) as f64 * x[k * m + col];
            }
            x[i * m + col] = sum / l.at2(i, i) as f64;
        }
    }
    Tensor::from_vec(x.into_iter().map(|v| v as f32).collect(), &[n, m])
}

/// Solve `U X = B` for upper-triangular `U` (back substitution).
pub fn solve_upper_triangular(u: &Tensor, b: &Tensor) -> Tensor {
    assert!(u.rank() == 2 && u.rows() == u.cols(), "U must be square");
    assert_eq!(u.rows(), b.rows(), "dimension mismatch in backward solve");
    let n = u.rows();
    let m = b.cols();
    let mut x = vec![0.0f64; n * m];
    for col in 0..m {
        for i in (0..n).rev() {
            let mut sum = b.at2(i, col) as f64;
            for k in (i + 1)..n {
                sum -= u.at2(i, k) as f64 * x[k * m + col];
            }
            x[i * m + col] = sum / u.at2(i, i) as f64;
        }
    }
    Tensor::from_vec(x.into_iter().map(|v| v as f32).collect(), &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let b = Tensor::from_vec((0..n * n).map(|_| next()).collect(), &[n, n]);
        let mut a = b.matmul_tn(&b);
        for i in 0..n {
            *a.at2_mut(i, i) += 0.5; // ensure strictly PD
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(16, 9);
        let l = cholesky(&a).unwrap();
        let llt = l.matmul_nt(&l);
        let err = a.sub(&llt).frob_norm() / a.frob_norm();
        assert!(err < 1e-5, "reconstruction error {err}");
        // strictly lower triangle of L^T is zero => L is lower triangular
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_eq!(l.at2(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], &[2, 2]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn triangular_solves_invert() {
        let a = spd(8, 4);
        let l = cholesky(&a).unwrap();
        let b = spd(8, 5); // arbitrary right-hand sides
        // Solve A X = B via L L^T X = B.
        let y = solve_lower_triangular(&l, &b);
        let x = solve_upper_triangular(&l.transpose(), &y);
        let err = a.matmul(&x).sub(&b).frob_norm() / b.frob_norm();
        assert!(err < 1e-3, "solve error {err}");
    }

    #[test]
    fn identity_factor() {
        let l = cholesky(&Tensor::eye(4)).unwrap();
        assert!(l.sub(&Tensor::eye(4)).frob_norm() < 1e-6);
    }
}
