//! Replica-chaos tests: THE acceptance gate for replica-aware routing.
//!
//! Shape: `R = 2` replicas per catalog window, and one replica of
//! *every* set armed with a [`wr_fault::KillAfter`] that permanently
//! panics `serve.row` from request id [`KILL_FROM`] on — i.e. the
//! replica dies mid-replay. The contract:
//!
//! * **Zero degraded responses** — the full 2048-query Zipf replay
//!   completes with every answer intact: a strict failure on the dead
//!   replica fails over to its sibling, which scores the *same* frozen
//!   cache;
//! * **Bit-identity** — `top1_checksum` (and every score bit) equals the
//!   healthy single-engine run, at `WR_THREADS` 1 and 8;
//! * **Breakers route around the corpse** — each set's dead replica ends
//!   the replay with an `open` breaker (under a frozen clock the
//!   cooldown never elapses), `gateway.failovers` and
//!   `gateway.breaker_open` are nonzero, and the whole trajectory —
//!   counters, states, bits — replays identically from the same seed;
//! * **Hedging is an assertion, not a randomizer** — under a ticking
//!   clock every dispatch hedges, the hedge bit-comparison never
//!   mismatches, and the answers still equal the single-engine run;
//! * **Deadlines shed, never corrupt** — a spent budget degrades the
//!   batch (flagged, counted, flight-noted) instead of serving late.
//!
//! All engines use [`wr_fault::NoSleep`] and all clocks are
//! [`wr_obs::MockClock`]: no test ever sleeps or reads wall time.

use std::sync::Arc;

use wr_fault::{KillAfter, NoSleep};
use wr_gateway::{Gateway, GatewayConfig, GatewayResponse};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_obs::{MockClock, Telemetry};
use wr_serve::{top1_digest, QueryLog, ServeConfig, ServeEngine};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;

const N_ITEMS: usize = 157;
const MAX_SEQ: usize = 10;
const N_SHARDS: usize = 3;
const N_REPLICAS: usize = 2;
/// The replica of every set that the chaos arm kills.
const VICTIM_REPLICA: usize = 1;
/// First request id at which the victim replicas start panicking —
/// roughly batch 19 of 64, i.e. genuinely mid-replay.
const KILL_FROM: u64 = 600;

fn whitenrec_model(seed: u64) -> Box<dyn SeqRecModel> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-gw-replica",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        k: 10,
        max_batch: 32,
        max_seq: MAX_SEQ,
        filter_seen: true,
    }
}

fn gateway_cfg() -> GatewayConfig {
    GatewayConfig {
        serve: serve_cfg(),
        replicas: N_REPLICAS,
        ..GatewayConfig::default()
    }
}

/// A replica-chaos gateway on a *frozen* virtual clock: every set's
/// victim replica is armed with the same `KillAfter`, siblings and the
/// shared cache stay clean.
fn chaos_gateway() -> (Gateway, Telemetry) {
    let tel = Telemetry::with_clock(Arc::new(MockClock::new()));
    let mut gw = Gateway::partitioned(whitenrec_model(19), N_SHARDS, gateway_cfg())
        .unwrap()
        .with_telemetry(tel.clone())
        .with_sleeper(Arc::new(NoSleep));
    for s in 0..N_SHARDS {
        gw = gw.with_replica_faults(
            s,
            VICTIM_REPLICA,
            Arc::new(KillAfter::new("serve.row", KILL_FROM)),
        );
    }
    (gw, tel)
}

fn zipf_trace(n: usize) -> QueryLog {
    QueryLog::synthetic_zipf(n, 3_000, N_ITEMS, MAX_SEQ + 3, 1.1, 97).unwrap()
}

fn digest_of(responses: &[GatewayResponse]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

fn counter(tel: &Telemetry, name: &str) -> u64 {
    tel.registry
        .snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("counter {name} must exist in the registry"))
}

fn assert_bit_identical_to_engine(
    got: &[GatewayResponse],
    want: &[wr_serve::Response],
    what: &str,
) {
    assert_eq!(got.len(), want.len(), "{what}: response count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.id, w.id, "{what}: id at {i}");
        assert!(!g.degraded, "{what}: response {i} degraded");
        assert_eq!(g.items.len(), w.items.len(), "{what}: k at {i}");
        for (sg, sw) in g.items.iter().zip(&w.items) {
            assert_eq!(sg.item, sw.item, "{what}: item in response {i}");
            assert_eq!(
                sg.score.to_bits(),
                sw.score.to_bits(),
                "{what}: score bits in response {i}"
            );
        }
    }
}

/// THE gate: kill one replica of every set mid-replay; the 2048-query
/// replay completes with zero degraded responses and a `top1_checksum`
/// bit-identical to the healthy single-engine run, at both thread
/// counts. A dead replica costs failovers (latency), never answers.
#[test]
fn killing_one_replica_per_set_degrades_nothing_and_moves_no_bits() {
    let log = zipf_trace(2048);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    wr_runtime::set_threads(1);
    let baseline = engine.serve(&log.queries);
    let baseline_digest =
        top1_digest(baseline.iter().map(|r| (r.id, r.items.first().map(|s| s.item))));

    for threads in [1usize, 8] {
        wr_runtime::set_threads(threads);
        let (gw, tel) = chaos_gateway();
        let got = gw.serve(&log.queries);
        let what = format!("replica chaos, threads={threads}");
        assert_bit_identical_to_engine(&got, &baseline, &what);
        assert_eq!(digest_of(&got), baseline_digest, "{what}: top1_checksum");
        assert_eq!(
            counter(&tel, "gateway.degraded_responses"),
            0,
            "{what}: zero degraded responses"
        );
        assert!(
            counter(&tel, "gateway.failovers") > 0,
            "{what}: the dead replicas must have cost failovers"
        );
        assert!(
            counter(&tel, "gateway.breaker_open") >= N_SHARDS as u64,
            "{what}: every set's victim breaker must open"
        );
        // Under the frozen clock no cooldown ever elapses: every victim
        // ends open, every survivor ends closed.
        for (s, states) in gw.breaker_states().iter().enumerate() {
            assert_eq!(states.len(), N_REPLICAS);
            for (r, state) in states.iter().enumerate() {
                let want = if r == VICTIM_REPLICA { "open" } else { "closed" };
                assert_eq!(*state, want, "{what}: set {s} replica {r}");
            }
        }
        // The flight recorder names both the failovers and the opened
        // breakers — what `scripts/check.sh` greps out of the dump.
        let kinds: Vec<&str> = tel.flight.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"failover"), "{what}: flight failover note");
        assert!(kinds.contains(&"breaker"), "{what}: flight breaker note");
    }
    wr_runtime::set_threads(1);
}

/// The breaker trajectory — counters, state labels, and every response
/// bit — is a pure function of the seed: two identically-armed replays
/// agree exactly, even at 8 threads (one pool task per set per batch, so
/// each set's breaker sees a serial history).
#[test]
fn breaker_trajectory_replays_identically_from_the_same_seed() {
    let log = zipf_trace(512);
    wr_runtime::set_threads(8);
    let (gw_a, tel_a) = chaos_gateway();
    let a = gw_a.serve(&log.queries);
    let (gw_b, tel_b) = chaos_gateway();
    let b = gw_b.serve(&log.queries);
    wr_runtime::set_threads(1);

    assert_eq!(a, b, "responses must replay bit-identically");
    assert_eq!(gw_a.breaker_states(), gw_b.breaker_states());
    for name in [
        "gateway.failovers",
        "gateway.breaker_open",
        "gateway.hedges",
        "gateway.hedge_mismatches",
        "serve.retries",
    ] {
        assert_eq!(
            counter(&tel_a, name),
            counter(&tel_b, name),
            "{name} must replay identically"
        );
    }
    // Hedging is off (threshold 0) and the clock is frozen: no hedges.
    assert_eq!(counter(&tel_a, "gateway.hedges"), 0);
}

/// Hedged requests under a ticking clock: every winning dispatch looks
/// slow (the auto-tick strides each read), so every dispatch with a live
/// sibling hedges — and the hedge bit-comparison must never mismatch,
/// because both replicas score the same frozen window. The answers stay
/// bit-identical to the single engine: a hedge observes, it never
/// substitutes anything non-identical.
#[test]
fn hedges_fire_on_slow_dispatches_and_never_mismatch() {
    let log = zipf_trace(256);
    wr_runtime::set_threads(1);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    let baseline = engine.serve(&log.queries);

    let tel = Telemetry::with_clock(Arc::new(MockClock::with_tick(10)));
    let mut cfg = gateway_cfg();
    cfg.hedge_threshold_ns = 1; // any elapsed time at all triggers a hedge
    let gw = Gateway::partitioned(whitenrec_model(19), N_SHARDS, cfg)
        .unwrap()
        .with_telemetry(tel.clone())
        .with_sleeper(Arc::new(NoSleep));
    let got = gw.serve(&log.queries);

    assert_bit_identical_to_engine(&got, &baseline, "hedged replay");
    let hedges = counter(&tel, "gateway.hedges");
    let fanout = counter(&tel, "gateway.fanout_calls");
    assert_eq!(
        hedges, fanout,
        "every dispatch has a healthy sibling and a slow winner: all hedge"
    );
    assert_eq!(
        counter(&tel, "gateway.hedge_mismatches"),
        0,
        "replicas of a frozen window must agree bit for bit"
    );
    assert!(tel.flight.events().iter().any(|e| e.kind == "hedge"));
}

/// A spent deadline budget sheds the batch — degraded and counted, with
/// a flight note — rather than serving after the caller hung up. The
/// auto-tick clock burns more than the budget between the batch's
/// admission and the first strict dispatch, so every batch expires.
#[test]
fn spent_deadline_budgets_shed_batches_as_degraded() {
    let log = zipf_trace(96);
    wr_runtime::set_threads(1);
    let tel = Telemetry::with_clock(Arc::new(MockClock::with_tick(10)));
    let mut cfg = gateway_cfg();
    cfg.deadline_ns = 5; // below one tick: spent before any dispatch
    let gw = Gateway::partitioned(whitenrec_model(19), N_SHARDS, cfg)
        .unwrap()
        .with_telemetry(tel.clone())
        .with_sleeper(Arc::new(NoSleep));
    let got = gw.serve(&log.queries);

    assert_eq!(got.len(), log.len());
    for resp in &got {
        assert!(resp.degraded, "request {}: spent budget must degrade", resp.id);
        assert!(resp.items.is_empty());
    }
    assert_eq!(counter(&tel, "gateway.degraded_responses"), log.len() as u64);
    assert!(tel.flight.events().iter().any(|e| e.kind == "deadline"));

    // An unlimited budget (deadline_ns = 0, the default) under the same
    // ticking clock answers everything — the budget, not the clock, was
    // the cause.
    let gw_unlimited = Gateway::partitioned(whitenrec_model(19), N_SHARDS, gateway_cfg())
        .unwrap()
        .with_telemetry(Telemetry::with_clock(Arc::new(MockClock::with_tick(10))))
        .with_sleeper(Arc::new(NoSleep));
    assert!(gw_unlimited.serve(&log.queries).iter().all(|r| !r.degraded));
}
