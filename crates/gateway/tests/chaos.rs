//! Chaos tests for the sharded gateway: one shard armed with a seeded
//! [`wr_fault::FaultPlan`] while the others stay clean. The contract:
//!
//! * **Survivor isolation** — the surviving shards' contributions are
//!   bit-identical to a fault-free run. Proven by full reconstruction:
//!   independently-built twin shards (clean for the survivors, armed with
//!   the *same* plan for the victim) are scored per micro-batch and merged
//!   with the public `merge_top_k`; the chaos gateway must reproduce that
//!   merge bit for bit.
//! * **Graceful degradation** — a request the victim shard permanently
//!   fails comes back *degraded* (flagged, counted), never as a failed
//!   call; requests the victim survives are answered bit-identically to
//!   the fault-free gateway.
//! * **Determinism** — the same `WR_FAULT_SEED`-style seed produces the
//!   same responses and the same `top1_checksum` at `WR_THREADS` 1 and 8.
//!
//! Every shard uses [`wr_fault::NoSleep`]: no test ever sleeps, retry
//! storms included.

use std::sync::Arc;

use wr_gateway::{Gateway, GatewayConfig, GatewayResponse};
use wr_fault::{FaultPlan, FaultRates, NoSleep};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{
    merge_top_k, top1_digest, CatalogShard, MicroBatcher, QueryLog, ResilienceConfig,
    ScoredItem, ServeConfig,
};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;

const N_ITEMS: usize = 157;
const MAX_SEQ: usize = 10;
const N_SHARDS: usize = 3;
/// The shard the chaos plan poisons (the middle window).
const VICTIM: usize = 1;
/// Same seed `scripts/check.sh` replays under `WR_FAULT_SEED`.
const FAULT_SEED: u64 = 20240613;

fn whitenrec_model(seed: u64) -> Box<dyn SeqRecModel> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-gw-chaos",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        k: 10,
        max_batch: 16,
        max_seq: MAX_SEQ,
        filter_seen: true,
    }
}

fn gateway_cfg() -> GatewayConfig {
    GatewayConfig {
        serve: serve_cfg(),
        ..GatewayConfig::default()
    }
}

/// Rates dense enough that a ~200-query replay reliably hits transient
/// panics, permanent panics, and score poisoning on the victim shard.
fn chaos_rates() -> FaultRates {
    FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.25,
        panic: 0.25,
    }
}

fn clean_gateway() -> Gateway {
    Gateway::partitioned(whitenrec_model(19), N_SHARDS, gateway_cfg())
        .unwrap()
        .with_sleeper(Arc::new(NoSleep))
}

fn chaos_gateway(fault_seed: u64) -> Gateway {
    clean_gateway().with_shard_faults(
        VICTIM,
        Arc::new(FaultPlan::with_rates(fault_seed, chaos_rates())),
    )
}

fn zipf_trace(n: usize) -> QueryLog {
    QueryLog::synthetic_zipf(n, 3_000, N_ITEMS, MAX_SEQ + 3, 1.1, 97).unwrap()
}

fn digest_of(responses: &[GatewayResponse]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

fn assert_bit_identical(a: &[GatewayResponse], b: &[GatewayResponse], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: response count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.id, rb.id, "{what}: id at {i}");
        assert_eq!(ra.degraded, rb.degraded, "{what}: degraded flag at {i}");
        assert_eq!(ra.items.len(), rb.items.len(), "{what}: k at {i}");
        for (sa, sb) in ra.items.iter().zip(&rb.items) {
            assert_eq!(sa.item, sb.item, "{what}: item in response {i}");
            assert_eq!(
                sa.score.to_bits(),
                sb.score.to_bits(),
                "{what}: score bits in response {i}"
            );
        }
    }
}

/// Full reconstruction of what the chaos gateway *must* produce: twin
/// shards built independently from a twin model (same seeds → same
/// weights, bit for bit), the victim twin armed with the same fault plan,
/// scored per micro-batch and merged with the public `merge_top_k`.
fn reconstruct(log: &QueryLog, fault_seed: u64) -> Vec<Vec<ScoredItem>> {
    let model = whitenrec_model(19);
    let items = model.item_representations();
    let cfg = gateway_cfg();
    let plan = wr_gateway::ShardPlan::partitioned(N_ITEMS, N_SHARDS).unwrap();
    let resilience = ResilienceConfig {
        max_queue_depth: cfg.shard_max_rows,
        retry: cfg.retry,
    };
    let mut twins: Vec<CatalogShard> = plan
        .ranges()
        .iter()
        .map(|r| {
            CatalogShard::from_window(&items, r.clone(), &cfg.serve)
                .with_resilience(resilience)
                .with_sleeper(Arc::new(NoSleep))
        })
        .collect();
    twins[VICTIM].rearm(
        &items,
        Arc::new(FaultPlan::with_rates(fault_seed, chaos_rates())),
    );

    let mut merged: Vec<Vec<ScoredItem>> = Vec::with_capacity(log.len());
    let max_batch = cfg.serve.max_batch;
    let mut start = 0;
    while start < log.len() {
        let end = (start + max_batch).min(log.len());
        let slice = &log.queries[start..end];
        let contexts: Vec<&[usize]> = slice
            .iter()
            .map(|r| MicroBatcher::sanitize(&r.history))
            .collect();
        let users = model.user_representations(&contexts);
        let parts: Vec<Vec<wr_serve::Response>> = twins
            .iter()
            .map(|t| t.serve_encoded(slice, &users))
            .collect();
        for r in 0..slice.len() {
            let partials: Vec<Vec<ScoredItem>> =
                parts.iter().map(|p| p[r].items.clone()).collect();
            merged.push(merge_top_k(cfg.serve.k, &partials));
        }
        start = end;
    }
    merged
}

/// Whether the fault plan permanently kills `serve.row` for this request
/// id — the one way the victim shard answers a request with an empty
/// partial (score poisoning falls back to finite answers; transient
/// panics clear under retry).
fn victim_kills(plan: &FaultPlan, id: u64) -> bool {
    plan.would_panic("serve.row", id, u32::MAX)
}

#[test]
fn one_poisoned_shard_leaves_survivors_bit_identical() {
    let log = zipf_trace(192);
    let tel = wr_obs::Telemetry::new();
    let chaos = chaos_gateway(FAULT_SEED).with_telemetry(tel.clone());
    let responses = chaos.serve(&log.queries);

    // The chaos output IS the merge of [clean twin 0, armed twin 1, clean
    // twin 2] — which proves the surviving shards' contributions are
    // bit-identical to a fault-free run (the twins never saw a fault).
    let expected = reconstruct(&log, FAULT_SEED);
    assert_eq!(responses.len(), expected.len());
    for (resp, want) in responses.iter().zip(&expected) {
        assert_eq!(resp.items.len(), want.len(), "request {}", resp.id);
        for (got, exp) in resp.items.iter().zip(want) {
            assert_eq!(got.item, exp.item, "request {}", resp.id);
            assert_eq!(
                got.score.to_bits(),
                exp.score.to_bits(),
                "request {}",
                resp.id
            );
        }
    }

    // Degradation accounting: exactly the requests the plan permanently
    // kills on the victim shard are flagged, and the counter agrees.
    let oracle = FaultPlan::with_rates(FAULT_SEED, chaos_rates());
    let mut killed = 0u64;
    for resp in &responses {
        let expect_degraded = victim_kills(&oracle, resp.id);
        assert_eq!(
            resp.degraded, expect_degraded,
            "degraded flag for request {}",
            resp.id
        );
        killed += u64::from(expect_degraded);
    }
    assert!(
        killed > 0,
        "panic rate 0.25 over 192 requests must permanently kill some"
    );
    let snap = tel.registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("gateway.degraded_responses"), killed);
    assert!(counter("serve.retries") > 0, "transient panics must retry");
    assert!(
        counter("serve.quarantined_rows") > 0,
        "poison rate 0.25 must quarantine some score rows"
    );

    // Requests untouched by every fault channel are bit-identical to the
    // fully healthy gateway — degradation never bleeds into healthy
    // answers. A request is touched by a permanent serve.row kill, by
    // serve.score poisoning, or by cache.load quarantine — the last one
    // only when its healthy top-k actually contained a quarantined item
    // (quarantine removes candidates, so answers without them are
    // unchanged).
    let victim_range = chaos.plan().ranges()[VICTIM].clone();
    let quarantined: Vec<usize> = victim_range
        .clone()
        .filter(|&r| oracle.would_poison("cache.load", r as u64))
        .collect();
    assert!(
        !quarantined.is_empty(),
        "poison rate 0.25 over a {}-row window must quarantine something",
        victim_range.len()
    );
    let healthy = clean_gateway().serve(&log.queries);
    let mut survivors = 0;
    for (resp, base) in responses.iter().zip(&healthy) {
        if victim_kills(&oracle, resp.id)
            || oracle.would_poison("serve.score", resp.id)
            || base.items.iter().any(|s| quarantined.contains(&s.item))
        {
            continue;
        }
        survivors += 1;
        assert_eq!(resp.items.len(), base.items.len(), "request {}", resp.id);
        for (got, exp) in resp.items.iter().zip(&base.items) {
            assert_eq!(got.item, exp.item, "request {}", resp.id);
            assert_eq!(got.score.to_bits(), exp.score.to_bits(), "request {}", resp.id);
        }
    }
    assert!(survivors > 30, "plenty of requests must be untouched");
}

#[test]
fn same_seed_is_deterministic_across_runs_and_thread_counts() {
    let log = zipf_trace(128);
    wr_runtime::set_threads(1);
    let serial = chaos_gateway(FAULT_SEED).serve(&log.queries);
    let serial_again = chaos_gateway(FAULT_SEED).serve(&log.queries);
    assert_bit_identical(&serial, &serial_again, "same seed, same thread count");

    wr_runtime::set_threads(8);
    let threaded = chaos_gateway(FAULT_SEED).serve(&log.queries);
    wr_runtime::set_threads(1);
    assert_bit_identical(&serial, &threaded, "WR_THREADS=1 vs 8 under chaos");
    assert_eq!(
        digest_of(&serial),
        digest_of(&threaded),
        "chaos checksum must be thread-count-independent"
    );

    // A different seed is a different (still deterministic) universe; the
    // checksum separates the two replays.
    let other = chaos_gateway(FAULT_SEED + 1).serve(&log.queries);
    assert_ne!(
        digest_of(&serial),
        digest_of(&other),
        "distinct fault seeds should perturb the replay digest"
    );
}

#[test]
fn wr_fault_seed_env_arms_the_same_schedule() {
    // The CLI path: WR_FAULT_SEED in the environment → FaultPlan::from_env.
    // An env-armed gateway must replay exactly like one armed directly
    // with the same seed (rates are the plan defaults in both).
    std::env::set_var(wr_fault::WR_FAULT_SEED_ENV, "4242");
    let plan = FaultPlan::from_env().expect("WR_FAULT_SEED=4242 must arm");
    std::env::remove_var(wr_fault::WR_FAULT_SEED_ENV);
    assert_eq!(plan.seed(), 4242);

    let log = zipf_trace(96);
    let via_env = clean_gateway()
        .with_shard_faults(VICTIM, Arc::new(plan))
        .serve(&log.queries);
    let direct = clean_gateway()
        .with_shard_faults(VICTIM, Arc::new(FaultPlan::new(4242)))
        .serve(&log.queries);
    assert_bit_identical(&via_env, &direct, "env-armed vs directly-armed");
}
