//! Differential tests for the sharded gateway: a healthy partitioned
//! gateway must be **bit-identical** to a single `ServeEngine` over the
//! same model and trace — same items, same score bit patterns, same tie
//! order, same `top1_checksum` — for every shard count, thread count, and
//! scorer (dense exact, or IVF at full probe).
//!
//! The catalog size (157, prime) is chosen so *every* multi-shard
//! partition is uneven: the balanced split hands the first `157 % n`
//! shards one extra row, which is exactly the remapping corner the window
//! arithmetic has to get right.
//!
//! The model under test is the paper's configuration (whitened text table
//! → projection tower → SASRec, Softmax loss) and the trace is the Zipf
//! user-skewed generator, so hot users replay identical sessions through
//! different micro-batches along the way.

use wr_gateway::{Gateway, GatewayConfig, GatewayError, GatewayResponse};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{top1_digest, QueryLog, Request, ServeConfig, ServeEngine};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;

const N_ITEMS: usize = 157;
const MAX_SEQ: usize = 10;
const NLIST: usize = 4;
const ANN_SEED: u64 = 51;

fn whitenrec_model(seed: u64) -> Box<dyn SeqRecModel> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-gw-diff",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        k: 10,
        max_batch: 32,
        max_seq: MAX_SEQ,
        filter_seen: true,
    }
}

fn gateway(n_shards: usize, ivf: bool) -> Gateway {
    let gw = Gateway::partitioned(
        whitenrec_model(19),
        n_shards,
        GatewayConfig {
            serve: serve_cfg(),
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    if ivf {
        // nprobe = nlist: every inverted list of every shard is scanned,
        // which is provably (and in wr-serve, differentially) equivalent
        // to the window's dense scan.
        gw.with_ann(NLIST, NLIST, ANN_SEED).unwrap()
    } else {
        gw
    }
}

fn zipf_trace(n: usize) -> QueryLog {
    QueryLog::synthetic_zipf(n, 3_000, N_ITEMS, MAX_SEQ + 3, 1.1, 97).unwrap()
}

/// Bit-level equality of a gateway run against the single-engine
/// reference: ids, items, and score bit patterns (an `==` on f32 would
/// conflate -0.0/0.0 and reject NaN).
fn assert_bit_identical(got: &[GatewayResponse], want: &[wr_serve::Response], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: response count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.id, w.id, "{what}: id at {i}");
        assert!(!g.degraded, "{what}: healthy run flagged degraded at {i}");
        assert_eq!(g.items.len(), w.items.len(), "{what}: k at {i}");
        for (sg, sw) in g.items.iter().zip(&w.items) {
            assert_eq!(sg.item, sw.item, "{what}: item in response {i}");
            assert_eq!(
                sg.score.to_bits(),
                sw.score.to_bits(),
                "{what}: score bits in response {i}"
            );
        }
    }
}

fn digest_of(responses: &[GatewayResponse]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

/// THE acceptance gate: one 2048-query Zipf replay, served by the single
/// engine once and then by gateways at shard counts {1, 2, 3, 8}, each at
/// WR_THREADS 1 and 8, dense and IVF(nprobe = nlist). Every combination
/// must reproduce the single-engine answers bit for bit, checksum
/// included.
#[test]
fn sharded_is_bit_identical_to_single_engine_across_shards_threads_scorers() {
    let log = zipf_trace(2048);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    wr_runtime::set_threads(1);
    let baseline = engine.serve(&log.queries);
    let baseline_digest =
        top1_digest(baseline.iter().map(|r| (r.id, r.items.first().map(|s| s.item))));

    for n_shards in [1usize, 2, 3, 8] {
        for ivf in [false, true] {
            let gw = gateway(n_shards, ivf);
            for threads in [1usize, 8] {
                wr_runtime::set_threads(threads);
                let got = gw.serve(&log.queries);
                let what = format!(
                    "shards={n_shards} ivf={ivf} threads={threads}"
                );
                assert_bit_identical(&got, &baseline, &what);
                assert_eq!(digest_of(&got), baseline_digest, "{what}: top1_checksum");
            }
            wr_runtime::set_threads(1);
        }
    }
}

/// The replica axis of the same gate: every `(shards, replicas)` pair
/// must reproduce the single-engine answers bit for bit at both thread
/// counts. Replication cannot move a bit by construction — every replica
/// of a set is a handle clone of the same frozen cache — and this test
/// pins the construction.
#[test]
fn replica_counts_do_not_change_a_single_bit() {
    let log = zipf_trace(2048);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    wr_runtime::set_threads(1);
    let baseline = engine.serve(&log.queries);
    let baseline_digest =
        top1_digest(baseline.iter().map(|r| (r.id, r.items.first().map(|s| s.item))));

    for n_shards in [1usize, 2, 3, 8] {
        for replicas in [2usize, 3] {
            // (R = 1 is the gate above.)
            let gw = Gateway::partitioned(
                whitenrec_model(19),
                n_shards,
                GatewayConfig {
                    serve: serve_cfg(),
                    replicas,
                    ..GatewayConfig::default()
                },
            )
            .unwrap();
            // Replicas share the window's storage — handle clones, not
            // copies — which is what makes them bit-interchangeable.
            for set in gw.sets() {
                let primary = set.primary().unwrap();
                assert_eq!(set.replicas().len(), replicas);
                for r in set.replicas() {
                    assert!(r.cache().shares_storage_with(primary.cache()));
                }
            }
            for threads in [1usize, 8] {
                wr_runtime::set_threads(threads);
                let got = gw.serve(&log.queries);
                let what = format!("shards={n_shards} replicas={replicas} threads={threads}");
                assert_bit_identical(&got, &baseline, &what);
                assert_eq!(digest_of(&got), baseline_digest, "{what}: top1_checksum");
            }
            wr_runtime::set_threads(1);
        }
    }
}

/// The replay harness reports the same checksum as the single-engine
/// replay harness — the property `scripts/check.sh` asserts across two
/// separate binaries by comparing hex strings.
#[test]
fn replay_reports_share_the_top1_checksum_formula() {
    let log = zipf_trace(300);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    let (_, engine_report) = wr_serve::replay(&engine, &log);
    for n_shards in [2usize, 8] {
        let tel = wr_obs::Telemetry::new();
        let (responses, report) = wr_gateway::replay_gateway(&gateway(n_shards, false), &log, &tel);
        assert_eq!(report.top1_checksum, engine_report.top1_checksum);
        assert_eq!(report.n_degraded, 0);
        assert_eq!(digest_of(&responses), report.top1_checksum);
    }
}

/// The prime catalog makes every multi-shard plan uneven — pin that the
/// test above actually exercised uneven windows, and that the remapping
/// survives the most lopsided legal plan (one row on the last shards).
#[test]
fn uneven_partitions_are_real_and_still_exact() {
    for n_shards in [2usize, 3, 8] {
        let gw = gateway(n_shards, false);
        let widths: Vec<usize> = gw.plan().ranges().iter().map(|r| r.len()).collect();
        let (min, max) = (
            *widths.iter().min().unwrap(),
            *widths.iter().max().unwrap(),
        );
        assert_eq!(
            max - min,
            1,
            "157 is prime: every {n_shards}-way split must be uneven, got {widths:?}"
        );
    }
    // Maximal skew: 157 shards of exactly one item each. Every response
    // is then a pure merge_top_k product — no shard contributes more than
    // one candidate.
    let log = zipf_trace(64);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    let baseline = engine.serve(&log.queries);
    let got = gateway(N_ITEMS, false).serve(&log.queries);
    assert_bit_identical(&got, &baseline, "one-item shards");
}

/// Replicated mode is the degenerate case of the same contract: every
/// micro-batch answered by one full-catalog shard, bit-identical to the
/// single engine, at both thread counts.
#[test]
fn replicated_mode_matches_single_engine_too() {
    let log = zipf_trace(200);
    let engine = ServeEngine::new(whitenrec_model(19), serve_cfg());
    let baseline = engine.serve(&log.queries);
    let gw = Gateway::replicated(
        whitenrec_model(19),
        3,
        GatewayConfig {
            serve: serve_cfg(),
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    for threads in [1usize, 8] {
        wr_runtime::set_threads(threads);
        let got = gw.serve(&log.queries);
        assert_bit_identical(&got, &baseline, &format!("replicated, threads={threads}"));
    }
    wr_runtime::set_threads(1);
}

/// Construction-time shape errors are typed, not panics.
#[test]
fn degenerate_gateways_are_typed_errors() {
    let cfg = GatewayConfig {
        serve: serve_cfg(),
        ..GatewayConfig::default()
    };
    assert!(matches!(
        Gateway::partitioned(whitenrec_model(19), 0, cfg).err(),
        Some(GatewayError::NoShards)
    ));
    assert!(matches!(
        Gateway::partitioned(whitenrec_model(19), N_ITEMS + 1, cfg).err(),
        Some(GatewayError::EmptyShard { n_items: N_ITEMS, n_shards }) if n_shards == N_ITEMS + 1
    ));
}

/// Instrumented gateways answer bit-for-bit like bare ones while the
/// `gateway.*` counters see the traffic (write-only telemetry, the same
/// contract the engine suite pins for `serve.*`).
#[test]
fn gateway_telemetry_is_write_only_and_nonzero() {
    let log = zipf_trace(96);
    let plain = gateway(3, false).serve(&log.queries);
    let tel = wr_obs::Telemetry::new();
    let observed = gateway(3, false).with_telemetry(tel.clone());
    let got = observed.serve(&log.queries);
    assert_eq!(plain, got, "telemetry must not change gateway answers");

    let snap = tel.registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} must exist in the registry"))
    };
    assert_eq!(counter("gateway.requests"), 96);
    assert_eq!(counter("gateway.batches"), 3); // ceil(96 / 32)
    assert_eq!(counter("gateway.fanout_calls"), 9); // 3 batches × 3 shards
    assert_eq!(counter("gateway.shard_rejections"), 0);
    assert_eq!(counter("gateway.degraded_responses"), 0);
    // Per-shard spans were emitted alongside the per-batch spans.
    let events = tel.tracer.events();
    assert_eq!(events.iter().filter(|e| e.cat == "gateway").count(), 3);
    assert_eq!(events.iter().filter(|e| e.cat == "gateway.shard").count(), 9);
}

/// A gateway query with an all-seen window still answers exactly: the
/// shard returns an empty partial (nothing unseen in its window) and the
/// merge takes everything from the other shards — without flagging
/// degradation, because the window provably had nothing to offer.
#[test]
fn fully_seen_window_is_not_degraded() {
    let gw = gateway(N_ITEMS, false); // one item per shard
    let history: Vec<usize> = (0..MAX_SEQ + 2).map(|i| i % 5).collect(); // covers shards 0..5
    let responses = gw.serve(&[Request { id: 7, history }]);
    assert_eq!(responses.len(), 1);
    assert!(!responses[0].degraded);
    assert_eq!(responses[0].items.len(), 10);
}
