//! Property-style seeded sweep for `merge_top_k` under gateway usage.
//!
//! The gateway feeds the merge exactly one shape of input: per-shard
//! partials extracted from *disjoint* catalog windows, each partial the
//! window's top-k under the workspace's one total order (`total_cmp`
//! descending, ascending item index on ties), with NaN-quarantined rows
//! excluded from the candidates before extraction and with shards that
//! rejected or held nothing contributing empty partials. This sweep
//! generates hundreds of seeded scenarios in that shape — heavily
//! quantized scores so duplicate score values collide *across* shards,
//! `k` larger than per-shard candidate counts, windows emptied by
//! quarantine — and checks the merge against a full-sort reference over
//! the union of offered candidates, item ids and score bits both.

use wr_gateway::ShardPlan;
use wr_serve::{merge_top_k, ScoredItem};
use wr_tensor::Rng64;

/// The reference: sort every offered candidate under the shared policy,
/// truncate to `k`. Deliberately shares no code with the bounded-heap
/// merge.
fn full_sort_reference(pool: &[ScoredItem], k: usize) -> Vec<ScoredItem> {
    let mut sorted = pool.to_vec();
    sorted.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
    sorted.truncate(k);
    sorted
}

fn assert_merge_matches(merged: &[ScoredItem], want: &[ScoredItem], what: &str) {
    assert_eq!(merged.len(), want.len(), "{what}: length");
    for (i, (m, w)) in merged.iter().zip(want).enumerate() {
        assert_eq!(m.item, w.item, "{what}: item at rank {i}");
        assert_eq!(
            m.score.to_bits(),
            w.score.to_bits(),
            "{what}: score bits at rank {i}"
        );
    }
}

#[test]
fn seeded_sweep_matches_full_sort_reference() {
    let mut rng = Rng64::seed_from(0xC0FFEE);
    for trial in 0..300 {
        let n_items = 5 + rng.below(120);
        let n_shards = 1 + rng.below(8.min(n_items));
        let plan = ShardPlan::partitioned(n_items, n_shards).unwrap();
        // k regularly exceeds per-shard candidate counts, and sometimes
        // the whole catalog.
        let k = 1 + rng.below(n_items + 5);

        // Quantized scores: ~8 distinct values over up to 124 items, so
        // the same score appears in many windows and the ascending-index
        // tie policy does real work across shard boundaries. NaN rows
        // model score-poisoned items the shards quarantine away.
        let scores: Vec<f32> = (0..n_items)
            .map(|_| (rng.below(8) as f32 - 4.0) * 0.25)
            .collect();
        let quarantined: Vec<bool> = (0..n_items).map(|_| rng.below(10) == 0).collect();
        // A shard that rejected the fan-out call contributes nothing.
        let dropped: Vec<bool> = (0..n_shards).map(|_| rng.below(12) == 0).collect();

        let mut partials: Vec<Vec<ScoredItem>> = Vec::with_capacity(n_shards);
        let mut pool: Vec<ScoredItem> = Vec::new();
        for (s, range) in plan.ranges().iter().enumerate() {
            if dropped[s] {
                partials.push(Vec::new());
                continue;
            }
            let candidates: Vec<ScoredItem> = range
                .clone()
                .filter(|&i| !quarantined[i])
                .map(|i| ScoredItem {
                    item: i,
                    // Quarantine decided, the *offered* score must be the
                    // finite one; a NaN candidate would be a shard bug.
                    score: scores[i],
                })
                .collect();
            // What a CatalogShard sends upward: its window's top-k.
            let mut partial = full_sort_reference(&candidates, k);
            // Shuffle-resistance is not required (partials arrive sorted
            // from the shards), but merge_top_k documents order-free
            // input; occasionally reverse to exercise that.
            if rng.below(4) == 0 {
                partial.reverse();
            }
            pool.extend(&candidates);
            partials.push(partial);
        }

        let merged = merge_top_k(k, &partials);
        let want = full_sort_reference(&pool, k);
        assert_merge_matches(
            &merged,
            &want,
            &format!("trial {trial}: n_items={n_items} n_shards={n_shards} k={k}"),
        );
    }
}

/// Every shard holds the same score value: the merged list must be the
/// first `k` item ids in ascending order — pure tie-policy, across
/// windows.
#[test]
fn all_ties_resolve_by_ascending_item_index_across_shards() {
    let plan = ShardPlan::partitioned(30, 4).unwrap();
    let partials: Vec<Vec<ScoredItem>> = plan
        .ranges()
        .iter()
        .map(|r| {
            r.clone()
                .map(|i| ScoredItem { item: i, score: 1.5 })
                .collect()
        })
        .collect();
    let merged = merge_top_k(7, &partials);
    let items: Vec<usize> = merged.iter().map(|s| s.item).collect();
    assert_eq!(items, vec![0, 1, 2, 3, 4, 5, 6]);
    assert!(merged.iter().all(|s| s.score == 1.5));
}

/// k greater than everything on offer: the merge returns every candidate,
/// still globally sorted; empty shards contribute nothing and break
/// nothing.
#[test]
fn k_beyond_all_candidates_returns_the_sorted_union() {
    let partials = vec![
        vec![
            ScoredItem { item: 2, score: 0.5 },
            ScoredItem { item: 0, score: 0.25 },
        ],
        Vec::new(), // rejected / fully-quarantined shard
        vec![ScoredItem { item: 7, score: 0.5 }],
    ];
    let merged = merge_top_k(50, &partials);
    let want = vec![
        ScoredItem { item: 2, score: 0.5 },
        ScoredItem { item: 7, score: 0.5 },
        ScoredItem { item: 0, score: 0.25 },
    ];
    assert_merge_matches(&merged, &want, "k beyond candidates");
    assert!(merge_top_k(50, &[Vec::new(), Vec::new()]).is_empty());
    assert!(merge_top_k(0, &partials).is_empty());
}

/// -0.0 and 0.0 are distinct under `total_cmp` (+0.0 ranks above -0.0);
/// the merge must keep that order and preserve the exact bit patterns —
/// the property the gateway's bit-identity gate leans on.
#[test]
fn signed_zero_ordering_and_bits_survive_the_merge() {
    let partials = vec![
        vec![ScoredItem { item: 3, score: -0.0 }],
        vec![ScoredItem { item: 9, score: 0.0 }],
    ];
    let merged = merge_top_k(2, &partials);
    assert_eq!(merged[0].item, 9);
    assert_eq!(merged[0].score.to_bits(), 0.0f32.to_bits());
    assert_eq!(merged[1].item, 3);
    assert_eq!(merged[1].score.to_bits(), (-0.0f32).to_bits());
}
