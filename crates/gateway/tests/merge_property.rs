//! Property-style seeded sweep for `merge_top_k` under gateway usage.
//!
//! The gateway feeds the merge exactly one shape of input: per-shard
//! partials extracted from *disjoint* catalog windows, each partial the
//! window's top-k under the workspace's one total order (`total_cmp`
//! descending, ascending item index on ties), with NaN-quarantined rows
//! excluded from the candidates before extraction and with shards that
//! rejected or held nothing contributing empty partials. This sweep
//! generates hundreds of seeded scenarios in that shape — heavily
//! quantized scores so duplicate score values collide *across* shards,
//! `k` larger than per-shard candidate counts, windows emptied by
//! quarantine — and checks the merge against a full-sort reference over
//! the union of offered candidates, item ids and score bits both.

use std::sync::Arc;

use wr_fault::{FaultPlan, FaultRates};
use wr_gateway::ShardPlan;
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{merge_top_k, CatalogShard, MicroBatcher, QueryLog, ScoredItem, ServeConfig};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;

/// The reference: sort every offered candidate under the shared policy,
/// truncate to `k`. Deliberately shares no code with the bounded-heap
/// merge.
fn full_sort_reference(pool: &[ScoredItem], k: usize) -> Vec<ScoredItem> {
    let mut sorted = pool.to_vec();
    sorted.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
    sorted.truncate(k);
    sorted
}

fn assert_merge_matches(merged: &[ScoredItem], want: &[ScoredItem], what: &str) {
    assert_eq!(merged.len(), want.len(), "{what}: length");
    for (i, (m, w)) in merged.iter().zip(want).enumerate() {
        assert_eq!(m.item, w.item, "{what}: item at rank {i}");
        assert_eq!(
            m.score.to_bits(),
            w.score.to_bits(),
            "{what}: score bits at rank {i}"
        );
    }
}

#[test]
fn seeded_sweep_matches_full_sort_reference() {
    let mut rng = Rng64::seed_from(0xC0FFEE);
    for trial in 0..300 {
        let n_items = 5 + rng.below(120);
        let n_shards = 1 + rng.below(8.min(n_items));
        let plan = ShardPlan::partitioned(n_items, n_shards).unwrap();
        // k regularly exceeds per-shard candidate counts, and sometimes
        // the whole catalog.
        let k = 1 + rng.below(n_items + 5);

        // Quantized scores: ~8 distinct values over up to 124 items, so
        // the same score appears in many windows and the ascending-index
        // tie policy does real work across shard boundaries. NaN rows
        // model score-poisoned items the shards quarantine away.
        let scores: Vec<f32> = (0..n_items)
            .map(|_| (rng.below(8) as f32 - 4.0) * 0.25)
            .collect();
        let quarantined: Vec<bool> = (0..n_items).map(|_| rng.below(10) == 0).collect();
        // A shard that rejected the fan-out call contributes nothing.
        let dropped: Vec<bool> = (0..n_shards).map(|_| rng.below(12) == 0).collect();

        let mut partials: Vec<Vec<ScoredItem>> = Vec::with_capacity(n_shards);
        let mut pool: Vec<ScoredItem> = Vec::new();
        for (s, range) in plan.ranges().iter().enumerate() {
            if dropped[s] {
                partials.push(Vec::new());
                continue;
            }
            let candidates: Vec<ScoredItem> = range
                .clone()
                .filter(|&i| !quarantined[i])
                .map(|i| ScoredItem {
                    item: i,
                    // Quarantine decided, the *offered* score must be the
                    // finite one; a NaN candidate would be a shard bug.
                    score: scores[i],
                })
                .collect();
            // What a CatalogShard sends upward: its window's top-k.
            let mut partial = full_sort_reference(&candidates, k);
            // Shuffle-resistance is not required (partials arrive sorted
            // from the shards), but merge_top_k documents order-free
            // input; occasionally reverse to exercise that.
            if rng.below(4) == 0 {
                partial.reverse();
            }
            pool.extend(&candidates);
            partials.push(partial);
        }

        let merged = merge_top_k(k, &partials);
        let want = full_sort_reference(&pool, k);
        assert_merge_matches(
            &merged,
            &want,
            &format!("trial {trial}: n_items={n_items} n_shards={n_shards} k={k}"),
        );
    }
}

/// Every shard holds the same score value: the merged list must be the
/// first `k` item ids in ascending order — pure tie-policy, across
/// windows.
#[test]
fn all_ties_resolve_by_ascending_item_index_across_shards() {
    let plan = ShardPlan::partitioned(30, 4).unwrap();
    let partials: Vec<Vec<ScoredItem>> = plan
        .ranges()
        .iter()
        .map(|r| {
            r.clone()
                .map(|i| ScoredItem { item: i, score: 1.5 })
                .collect()
        })
        .collect();
    let merged = merge_top_k(7, &partials);
    let items: Vec<usize> = merged.iter().map(|s| s.item).collect();
    assert_eq!(items, vec![0, 1, 2, 3, 4, 5, 6]);
    assert!(merged.iter().all(|s| s.score == 1.5));
}

/// k greater than everything on offer: the merge returns every candidate,
/// still globally sorted; empty shards contribute nothing and break
/// nothing.
#[test]
fn k_beyond_all_candidates_returns_the_sorted_union() {
    let partials = vec![
        vec![
            ScoredItem { item: 2, score: 0.5 },
            ScoredItem { item: 0, score: 0.25 },
        ],
        Vec::new(), // rejected / fully-quarantined shard
        vec![ScoredItem { item: 7, score: 0.5 }],
    ];
    let merged = merge_top_k(50, &partials);
    let want = vec![
        ScoredItem { item: 2, score: 0.5 },
        ScoredItem { item: 7, score: 0.5 },
        ScoredItem { item: 0, score: 0.25 },
    ];
    assert_merge_matches(&merged, &want, "k beyond candidates");
    assert!(merge_top_k(50, &[Vec::new(), Vec::new()]).is_empty());
    assert!(merge_top_k(0, &partials).is_empty());
}

// ---------------------------------------------------------------------
// Replica substitution: the merge input the replica-aware gateway really
// produces. A partial may come from *any* replica of a set (failover,
// hedging), so the property the whole failover design leans on is:
// swapping any shard's partial for one produced by a replica of that
// shard changes no bit of the merge. Checked with real `CatalogShard`
// engines — including a primary whose window has NaN-quarantined rows —
// not hand-built partials.
// ---------------------------------------------------------------------

const RS_ITEMS: usize = 96;
const RS_MAX_SEQ: usize = 10;
const RS_SHARDS: usize = 3;
const RS_K: usize = 10;
/// The shard whose cache gets NaN-poisoned rows (quarantine case).
const RS_VICTIM: usize = 1;

fn rs_model() -> Box<dyn SeqRecModel> {
    let mut table_rng = Rng64::seed_from(23);
    let raw = Tensor::randn(&[RS_ITEMS, 20], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(23);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 1,
        max_seq: RS_MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-merge-prop",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn rs_serve_cfg() -> ServeConfig {
    ServeConfig {
        k: RS_K,
        max_batch: 16,
        max_seq: RS_MAX_SEQ,
        filter_seen: true,
    }
}

/// Primaries for every window (the victim rearmed so its window holds
/// quarantined rows) plus one replica of each, and the per-request
/// partials both tiers produced for a zipf trace.
fn replica_partials() -> (Vec<CatalogShard>, Vec<CatalogShard>, Vec<Vec<Vec<ScoredItem>>>, Vec<Vec<Vec<ScoredItem>>>)
{
    let model = rs_model();
    let items = model.item_representations();
    let cfg = rs_serve_cfg();
    let plan = ShardPlan::partitioned(RS_ITEMS, RS_SHARDS).unwrap();
    let mut primaries: Vec<CatalogShard> = plan
        .ranges()
        .iter()
        .map(|r| CatalogShard::from_window(&items, r.clone(), &cfg))
        .collect();
    // NaN-poison some of the victim's cache rows so its partials are
    // computed over a quarantined window — the case where a replica
    // *must* agree anyway (it shares the quarantine set).
    primaries[RS_VICTIM].rearm(
        &items,
        Arc::new(FaultPlan::with_rates(
            41,
            FaultRates { io_error: 0.0, corrupt: 0.0, poison: 0.3, panic: 0.0 },
        )),
    );
    assert!(
        !primaries[RS_VICTIM].quarantined_items().is_empty(),
        "poison rate 0.3 over a {}-row window must quarantine something",
        primaries[RS_VICTIM].n_items()
    );
    let replicas: Vec<CatalogShard> = primaries.iter().map(|p| p.replica()).collect();

    let log = QueryLog::synthetic_zipf(96, 1_500, RS_ITEMS, RS_MAX_SEQ + 3, 1.1, 131).unwrap();
    let mut by_primary: Vec<Vec<Vec<ScoredItem>>> = Vec::with_capacity(log.len());
    let mut by_replica: Vec<Vec<Vec<ScoredItem>>> = Vec::with_capacity(log.len());
    let mut start = 0;
    while start < log.len() {
        let end = (start + cfg.max_batch).min(log.len());
        let slice = &log.queries[start..end];
        let contexts: Vec<&[usize]> = slice
            .iter()
            .map(|r| MicroBatcher::sanitize(&r.history))
            .collect();
        let users = model.user_representations(&contexts);
        let prim: Vec<Vec<wr_serve::Response>> = primaries
            .iter()
            .map(|s| s.serve_encoded(slice, &users))
            .collect();
        let repl: Vec<Vec<wr_serve::Response>> = replicas
            .iter()
            .map(|s| s.serve_encoded(slice, &users))
            .collect();
        for r in 0..slice.len() {
            by_primary.push(prim.iter().map(|p| p[r].items.clone()).collect());
            by_replica.push(repl.iter().map(|p| p[r].items.clone()).collect());
        }
        start = end;
    }
    (primaries, replicas, by_primary, by_replica)
}

/// Swapping any single shard's partial — or all of them — for the one
/// its replica produced changes no bit of the merged answer, including
/// for the shard whose window carries quarantined rows.
#[test]
fn replica_partials_substitute_for_their_primaries_bit_for_bit() {
    let (primaries, replicas, by_primary, by_replica) = replica_partials();
    for (p, r) in primaries.iter().zip(&replicas) {
        assert!(
            r.cache().shares_storage_with(p.cache()),
            "a replica is a handle clone, never a copy"
        );
        assert_eq!(
            r.quarantined_items(),
            p.quarantined_items(),
            "replicas share the primary's quarantine set"
        );
    }
    for (q, (prim, repl)) in by_primary.iter().zip(&by_replica).enumerate() {
        let baseline = merge_top_k(RS_K, prim);
        for s in 0..RS_SHARDS {
            let mut substituted = prim.clone();
            substituted[s] = repl[s].clone();
            let merged = merge_top_k(RS_K, &substituted);
            assert_merge_matches(
                &merged,
                &baseline,
                &format!("query {q}: replica substituted for primary {s}"),
            );
        }
        let all_replicas = merge_top_k(RS_K, repl);
        assert_merge_matches(&all_replicas, &baseline, &format!("query {q}: all replicas"));
    }
}

/// A set whose every replica died contributes an *empty* partial. The
/// merge must treat that exactly like the set not being consulted at
/// all: identical bits to merging with the entry removed, and no item
/// from the dead window can appear.
#[test]
fn a_dropped_replica_set_is_an_empty_partial_not_a_skew() {
    let (primaries, _replicas, by_primary, _by_replica) = replica_partials();
    for (q, prim) in by_primary.iter().enumerate() {
        for s in 0..RS_SHARDS {
            let mut dropped = prim.clone();
            dropped[s] = Vec::new();
            let with_empty = merge_top_k(RS_K, &dropped);
            let mut removed = prim.clone();
            removed.remove(s);
            let without_entry = merge_top_k(RS_K, &removed);
            assert_merge_matches(
                &with_empty,
                &without_entry,
                &format!("query {q}: set {s} dropped"),
            );
            let window = primaries[s].item_range();
            assert!(
                with_empty.iter().all(|item| !window.contains(&item.item)),
                "query {q}: a dead window {window:?} cannot contribute items"
            );
        }
    }
}

/// -0.0 and 0.0 are distinct under `total_cmp` (+0.0 ranks above -0.0);
/// the merge must keep that order and preserve the exact bit patterns —
/// the property the gateway's bit-identity gate leans on.
#[test]
fn signed_zero_ordering_and_bits_survive_the_merge() {
    let partials = vec![
        vec![ScoredItem { item: 3, score: -0.0 }],
        vec![ScoredItem { item: 9, score: 0.0 }],
    ];
    let merged = merge_top_k(2, &partials);
    assert_eq!(merged[0].item, 9);
    assert_eq!(merged[0].score.to_bits(), 0.0f32.to_bits());
    assert_eq!(merged[1].item, 3);
    assert_eq!(merged[1].score.to_bits(), (-0.0f32).to_bits());
}
