//! End-to-end tracing tests for the gateway: deterministic trace ids on
//! every span, histogram exemplars that resolve back to exported spans,
//! and flight-recorder dumps that are byte-identical across thread
//! counts and name exactly the permanently-panicked victim requests.
//!
//! Everything here runs under [`wr_fault::NoSleep`] and (where byte
//! determinism is asserted) a frozen [`wr_obs::MockClock`], so no test
//! ever sleeps or depends on wall time.

use std::sync::Arc;

use wr_fault::{FaultPlan, FaultRates, NoSleep};
use wr_gateway::{replay_gateway, Gateway, GatewayConfig};
use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
use wr_obs::{read_dump, MockClock, Telemetry, TraceContext};
use wr_serve::{QueryLog, Request, ServeConfig};
use wr_tensor::Rng64;
use wr_train::SeqRecModel;

const N_ITEMS: usize = 60;
const MAX_SEQ: usize = 8;
const N_SHARDS: usize = 3;
const VICTIM: usize = 1;
const FAULT_SEED: u64 = 20240613;

fn model() -> Box<dyn SeqRecModel> {
    let mut rng = Rng64::seed_from(33);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 1,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    Box::new(SasRec::new(
        "gw-tracing",
        Box::new(IdTower::new(N_ITEMS, config.dim, &mut rng)),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn cfg() -> GatewayConfig {
    GatewayConfig {
        serve: ServeConfig {
            k: 5,
            max_batch: 4,
            max_seq: MAX_SEQ,
            filter_seen: true,
        },
        ..GatewayConfig::default()
    }
}

fn reqs(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            id: i as u64,
            history: vec![(i % 7) + 1, (i % 5) + 2],
        })
        .collect()
}

fn chaos_rates() -> FaultRates {
    FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.25,
        panic: 0.25,
    }
}

fn chaos_gateway(tel: &Telemetry) -> Gateway {
    Gateway::partitioned(model(), N_SHARDS, cfg())
        .unwrap()
        .with_sleeper(Arc::new(NoSleep))
        .with_telemetry(tel.clone())
        .with_shard_faults(
            VICTIM,
            Arc::new(FaultPlan::with_rates(FAULT_SEED, chaos_rates())),
        )
}

#[test]
fn every_span_carries_the_predictable_batch_trace_identity() {
    let tel = Telemetry::new();
    let gw = Gateway::partitioned(model(), N_SHARDS, cfg())
        .unwrap()
        .with_telemetry(tel.clone());
    gw.serve(&reqs(10));

    let events = tel.tracer.events();
    // One batch span per micro-batch + one span per shard dispatch.
    assert_eq!(events.len(), 3 + 9);
    assert!(events.iter().all(|e| e.trace_id != 0 && e.span_id != 0));

    // Batch spans carry exactly the ids a replay harness would predict:
    // root(first request id of the batch, batch index).
    let predicted: Vec<u64> = [(0u64, 0u64), (4, 1), (8, 2)]
        .iter()
        .map(|&(first, idx)| TraceContext::root(first, idx).trace_id)
        .collect();
    let mut batch_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.cat == "gateway")
        .map(|e| e.trace_id)
        .collect();
    batch_ids.sort_unstable();
    let mut want = predicted.clone();
    want.sort_unstable();
    assert_eq!(batch_ids, want);

    // Every shard span belongs to one of the batch traces, with a span id
    // of its own (the child derivation).
    for e in events.iter().filter(|e| e.cat == "gateway.shard") {
        assert!(predicted.contains(&e.trace_id), "orphan shard span");
        let root = TraceContext::root(
            match e.trace_id {
                t if t == predicted[0] => 0,
                t if t == predicted[1] => 4,
                _ => 8,
            },
            predicted.iter().position(|&p| p == e.trace_id).unwrap() as u64,
        );
        assert_ne!(e.span_id, root.span_id, "child span must get a fresh id");
    }
}

#[test]
fn latency_exemplars_resolve_to_exported_spans() {
    let tel = Telemetry::new();
    let gw = Gateway::partitioned(model(), N_SHARDS, cfg())
        .unwrap()
        .with_telemetry(tel.clone());
    let log = QueryLog::synthetic_zipf(64, 500, N_ITEMS, MAX_SEQ + 2, 1.1, 7).unwrap();
    replay_gateway(&gw, &log, &tel);

    let span_traces: std::collections::BTreeSet<u64> =
        tel.tracer.events().iter().map(|e| e.trace_id).collect();
    let snap = tel.registry.snapshot();
    let (_, lat) = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "gateway.latency_ms")
        .expect("replay must register the latency histogram");
    let exemplars: Vec<u64> = lat.exemplars.iter().flatten().copied().collect();
    assert!(
        !exemplars.is_empty(),
        "a 64-query replay must leave at least one exemplar"
    );
    for id in exemplars {
        assert_ne!(id, 0, "snapshot must never surface the untraced sentinel");
        assert!(
            span_traces.contains(&id),
            "exemplar {id:016x} does not resolve to any exported span"
        );
    }
}

#[test]
fn flight_dump_is_byte_identical_across_thread_counts_and_names_the_victims() {
    let dir = std::env::temp_dir().join(format!("wr_gw_flight_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let requests = reqs(96);

    let run = |threads: usize, path: &std::path::Path| {
        wr_runtime::set_threads(threads);
        // Frozen clock: every flight ts_ns is 0, so the sealed dump can
        // only depend on *which* events fired, never on when.
        let tel = Telemetry::with_clock(Arc::new(MockClock::new()));
        tel.flight.arm_dump(path);
        let gw = chaos_gateway(&tel);
        let responses = gw.serve(&requests);
        wr_runtime::set_threads(1);
        assert!(tel.flight.dumps() > 0, "chaos must trigger a dump");
        responses
    };

    let p1 = dir.join("flight_t1.jsonl");
    let p8 = dir.join("flight_t8.jsonl");
    let r1 = run(1, &p1);
    let r8 = run(8, &p8);
    assert_eq!(r1, r8, "chaos responses must be thread-count-independent");

    let d1 = std::fs::read(&p1).unwrap();
    let d8 = std::fs::read(&p8).unwrap();
    assert!(!d1.is_empty());
    assert_eq!(d1, d8, "flight dumps must be byte-identical at 1 vs 8 threads");

    // The dump names exactly the permanently-panicked victim requests.
    let body = read_dump(&p1).expect("sealed dump must round-trip");
    let oracle = FaultPlan::with_rates(FAULT_SEED, chaos_rates());
    let expected: std::collections::BTreeSet<u64> = requests
        .iter()
        .map(|r| r.id)
        .filter(|&id| oracle.would_panic("serve.row", id, u32::MAX))
        .collect();
    assert!(!expected.is_empty(), "panic rate 0.25 must kill some request");
    let dumped: std::collections::BTreeSet<u64> = body
        .lines()
        .filter(|l| l.contains("\"kind\":\"panic\""))
        .map(|l| {
            let tail = l.split("\"req\":").nth(1).expect("panic event carries req");
            tail.split(',')
                .next()
                .unwrap()
                .parse::<u64>()
                .expect("req is a number")
        })
        .collect();
    assert_eq!(
        dumped, expected,
        "flight dump must list exactly the permanently-panicked victims"
    );

    // Tampering is rejected like WRCK/WRIV: flip one byte mid-file.
    let mut bent = d1.clone();
    let mid = bent.len() / 2;
    bent[mid] ^= 0x01;
    let p_bad = dir.join("flight_bent.jsonl");
    std::fs::write(&p_bad, &bent).unwrap();
    let err = read_dump(&p_bad).expect_err("bit-flip must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    std::fs::remove_dir_all(&dir).ok();
}
