//! The request router: one encoder model, N catalog shards, exact merge.

use std::sync::Arc;

use crate::health::{BreakerConfig, ReplicaCall, ReplicaSet};
use crate::{ShardMode, ShardPlan};
use wr_fault::{RetryPolicy, SharedInjector, Sleeper};
use wr_obs::{Clock, DeadlineBudget, MonotonicClock, Telemetry, TraceContext};
use wr_serve::{
    merge_top_k, BatcherConfig, CatalogShard, EmbeddingCache, MicroBatcher, Request,
    ResilienceConfig, Response, ScoredItem, ServeConfig,
};
use wr_tensor::Tensor;
use wr_train::SeqRecModel;

/// Gateway knobs: the per-shard serving configuration plus the two
/// load-shedding bounds that distinguish a gateway from a lone engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Per-shard serving knobs (`k`, micro-batch bound, `max_seq`,
    /// seen-filtering). The gateway's merge honors the same `k`.
    pub serve: ServeConfig,
    /// Global admission bound: [`Gateway::try_serve`] rejects calls
    /// carrying more requests than this ([`GatewayError::Overloaded`]).
    pub max_queue_depth: usize,
    /// Per-shard backpressure bound: a single fan-out call may hand a
    /// shard at most this many rows; past it the shard rejects and the
    /// affected responses degrade (missing that window's candidates)
    /// instead of failing. Defaults to the micro-batch bound, i.e. never
    /// rejecting — tighten it to shed load per shard.
    pub shard_max_rows: usize,
    /// Bounded retry-with-backoff for shard micro-batches that panic.
    pub retry: RetryPolicy,
    /// Replicas per catalog window (`R`). Each replica is a handle clone
    /// of the window's frozen cache behind its own circuit breaker, so
    /// failover and hedging change *which core answers*, never the bits.
    /// `1` (the default) reproduces the pre-replica gateway exactly —
    /// byte-for-byte and counter-for-counter.
    pub replicas: usize,
    /// Hedge a dispatch whose winning attempt took at least this many
    /// nanoseconds of the gateway clock: one extra strict attempt on a
    /// healthy sibling, bit-compared against the answer in hand
    /// (`gateway.hedge_mismatches` counts disagreements — it must stay
    /// zero). `0` disables hedging.
    pub hedge_threshold_ns: u64,
    /// Per-micro-batch deadline budget in nanoseconds of the gateway
    /// clock; a spent budget sheds the batch (degraded, not failed).
    /// `0` means unlimited.
    pub deadline_ns: u64,
    /// Seed for the replica-rotation hash. Routing is a pure function of
    /// `(router_seed, first request id, shard index)` — no RNG stream —
    /// so a replay with the same seed walks the same replicas.
    pub router_seed: u64,
    /// Per-replica circuit-breaker knobs (consecutive-failure threshold,
    /// half-open cooldown).
    pub breaker: BreakerConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        let serve = ServeConfig::default();
        GatewayConfig {
            serve,
            max_queue_depth: 1024,
            shard_max_rows: serve.max_batch,
            retry: RetryPolicy::default(),
            replicas: 1,
            hedge_threshold_ns: 0,
            deadline_ns: 0,
            router_seed: 0x5EED_0017,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Typed gateway failures.
#[derive(Debug)]
pub enum GatewayError {
    /// The call exceeded [`GatewayConfig::max_queue_depth`]. Nothing was
    /// scored; the caller should shed load.
    Overloaded { depth: usize, limit: usize },
    /// A plan with zero shards.
    NoShards,
    /// More shards than catalog rows — some shard would own nothing.
    EmptyShard { n_items: usize, n_shards: usize },
    /// Per-shard IVF index construction failed.
    Ann(wr_ann::AnnError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Overloaded { depth, limit } => {
                write!(f, "gateway overloaded: {depth} requests exceed queue depth {limit}")
            }
            GatewayError::NoShards => write!(f, "gateway needs at least one shard"),
            GatewayError::EmptyShard { n_items, n_shards } => {
                write!(f, "{n_shards} shards over {n_items} items leaves a shard empty")
            }
            GatewayError::Ann(e) => write!(f, "gateway ANN build: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<wr_ann::AnnError> for GatewayError {
    fn from(e: wr_ann::AnnError) -> Self {
        GatewayError::Ann(e)
    }
}

/// The answer to one [`Request`] through the gateway: up to `k` items
/// (global ids, best first) plus a degradation flag.
///
/// `degraded` means a shard *provably* contributed nothing for this
/// request while its window could still have offered candidates — the
/// shard rejected the fan-out call (backpressure) or its recovery path
/// isolated the request to an empty answer. The flag is conservative:
/// a poisoned-but-answering shard (NaN quarantine fallback) is not
/// detectable at merge time and stays unflagged.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayResponse {
    pub id: u64,
    pub items: Vec<ScoredItem>,
    pub degraded: bool,
}

/// A sharded serving gateway: the catalog cut into [`ShardPlan`] windows,
/// each behind a [`CatalogShard`], with one shared (non-`Sync`) encoder
/// model on the caller thread.
///
/// Per micro-batch the gateway encodes histories once, fans the encoded
/// `users` tensor out to every shard on the `wr-runtime` pool (the shards
/// are `Sync`; the pool tasks never touch the model), and merges the
/// per-shard top-k lists with [`merge_top_k`] — exact, because the
/// windows are disjoint and every shard ranks under the same total order.
pub struct Gateway {
    model: Box<dyn SeqRecModel>,
    /// One replica set per catalog window; `sets[s]` holds `R`
    /// interchangeable [`CatalogShard`] handles over window `s`.
    sets: Vec<ReplicaSet>,
    plan: ShardPlan,
    batcher: MicroBatcher,
    cfg: GatewayConfig,
    telemetry: Option<Telemetry>,
    /// Per-shard span labels, precomputed so the fan-out hot path never
    /// formats strings.
    shard_labels: Vec<String>,
    /// Time source for deadline budgets and hedge decisions. Defaults to
    /// [`MonotonicClock`]; [`Gateway::with_telemetry`] adopts the
    /// telemetry clock so routing and flight timestamps share one
    /// timeline, and tests inject a frozen `MockClock`.
    clock: Arc<dyn Clock>,
}

impl Gateway {
    /// Catalog-partition gateway: `n_shards` contiguous windows over the
    /// model's item representations (balanced, uneven-capable split).
    pub fn partitioned(
        model: Box<dyn SeqRecModel>,
        n_shards: usize,
        cfg: GatewayConfig,
    ) -> Result<Gateway, GatewayError> {
        let items = model.item_representations();
        let plan = ShardPlan::partitioned(items.rows(), n_shards)?;
        let shards = plan
            .ranges()
            .iter()
            .map(|range| CatalogShard::from_window(&items, range.clone(), &cfg.serve))
            .collect();
        Ok(Gateway::assemble(model, shards, plan, cfg))
    }

    /// Replicated gateway: every shard serves the whole catalog through
    /// handle clones of one shared cache (no copies), micro-batches
    /// routed round-robin.
    pub fn replicated(
        model: Box<dyn SeqRecModel>,
        n_shards: usize,
        cfg: GatewayConfig,
    ) -> Result<Gateway, GatewayError> {
        let cache = EmbeddingCache::new(model.item_representations());
        let plan = ShardPlan::replicated(cache.n_items(), n_shards)?;
        let shards = (0..n_shards)
            .map(|_| CatalogShard::from_cache(cache.clone(), &cfg.serve))
            .collect();
        Ok(Gateway::assemble(model, shards, plan, cfg))
    }

    fn assemble(
        model: Box<dyn SeqRecModel>,
        shards: Vec<CatalogShard>,
        plan: ShardPlan,
        cfg: GatewayConfig,
    ) -> Gateway {
        let resilience = ResilienceConfig {
            max_queue_depth: cfg.shard_max_rows,
            retry: cfg.retry,
        };
        let sets: Vec<ReplicaSet> = shards
            .into_iter()
            .map(|s| ReplicaSet::new(s.with_resilience(resilience), cfg.replicas, cfg.breaker))
            .collect();
        let batcher = MicroBatcher::new(BatcherConfig {
            max_batch: cfg.serve.max_batch,
            max_seq: cfg.serve.max_seq,
        });
        let shard_labels = (0..sets.len()).map(|s| format!("shard{s}")).collect();
        Gateway {
            model,
            sets,
            plan,
            batcher,
            cfg,
            telemetry: None,
            shard_labels,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Attach write-only telemetry (builder-style). The gateway records,
    /// per micro-batch: a `batch` span (`gateway` category) plus one span
    /// per shard dispatch, `gateway.requests` / `gateway.batches` /
    /// `gateway.fanout_calls` counters, the `gateway.queue_depth` gauge,
    /// and the degraded-mode counters (`gateway.shard_rejections`,
    /// `gateway.degraded_responses`, `gateway.rejected_overload`). The
    /// shards get a clone for their own `serve.*` recovery counters. All
    /// of it is write-only: the differential suite asserts instrumented
    /// == uninstrumented bit-for-bit.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        // Eager registration at 0, same rationale as ServeEngine: a
        // healthy export must still name every degraded-mode counter so
        // dashboards can alert on them going *from* zero.
        telemetry.registry.counter("gateway.requests");
        telemetry.registry.counter("gateway.batches");
        telemetry.registry.counter("gateway.fanout_calls");
        telemetry.registry.counter("gateway.shard_rejections");
        telemetry.registry.counter("gateway.degraded_responses");
        telemetry.registry.counter("gateway.rejected_overload");
        telemetry.registry.counter("gateway.failovers");
        telemetry.registry.counter("gateway.hedges");
        telemetry.registry.counter("gateway.hedge_mismatches");
        telemetry.registry.counter("gateway.breaker_open");
        telemetry.registry.counter("serve.rejected_overload");
        telemetry.registry.counter("serve.quarantined_rows");
        telemetry.registry.counter("serve.retries");
        telemetry.registry.counter("serve.ann.lists_probed");
        telemetry.registry.counter("serve.ann.rows_scanned");
        for set in &mut self.sets {
            set.map_replicas(|s| s.with_telemetry(telemetry.clone()));
        }
        // Deadline and hedge decisions read the telemetry clock from here
        // on, so routing and flight timestamps share one timeline (and a
        // test's MockClock governs both).
        self.clock = telemetry.clock.clone();
        self.telemetry = Some(telemetry);
        self
    }

    /// Replace the gateway's time source (builder-style). Tests inject a
    /// frozen [`wr_obs::MockClock`] so deadline and hedge decisions run
    /// in virtual time. Call *after* [`Gateway::with_telemetry`], which
    /// also resets the clock to the telemetry's.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Replace every shard's backoff sleeper (builder-style). Tests
    /// inject [`wr_fault::NoSleep`] so retry storms never block.
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        for set in &mut self.sets {
            set.map_replicas(|s| s.with_sleeper(sleeper.clone()));
        }
        self
    }

    /// Arm fault injection on one shard (builder-style): its catalog
    /// window is re-snapshotted through `injector`'s `cache.load` site
    /// (global row ids — the same plan damages the same rows no matter
    /// the shard layout) and its hot path consults the injector's
    /// `serve.row` / `serve.score` sites. The other shards stay clean,
    /// which is exactly the chaos suite's "one shard poisoned" shape.
    pub fn with_shard_faults(mut self, shard: usize, injector: SharedInjector) -> Self {
        let items = self.model.item_representations();
        let n_sets = self.sets.len();
        match self.sets.get_mut(shard) {
            Some(set) => set.map_replicas(|mut s| {
                s.rearm(&items, injector.clone());
                s
            }),
            None => panic!("with_shard_faults: shard {shard} out of range ({n_sets} shards)"),
        }
        self
    }

    /// Arm fault injection on one *replica* of a set without touching its
    /// cache (builder-style): the replica's hot path consults `injector`
    /// while its siblings — and the shared frozen cache — stay clean.
    /// This is the replica-chaos shape: kill one replica per set (e.g.
    /// with [`wr_fault::KillAfter`]), let the breakers route around it,
    /// and the answer bits cannot change because every sibling scores the
    /// same cache.
    pub fn with_replica_faults(
        mut self,
        shard: usize,
        replica: usize,
        injector: SharedInjector,
    ) -> Self {
        let n_sets = self.sets.len();
        let Some(set) = self.sets.get_mut(shard) else {
            panic!("with_replica_faults: shard {shard} out of range ({n_sets} shards)");
        };
        let n_replicas = set.replicas().len();
        match set.replica_mut(replica) {
            Some(r) => r.set_injector(injector),
            None => panic!(
                "with_replica_faults: replica {replica} out of range ({n_replicas} replicas)"
            ),
        }
        self
    }

    /// Switch every shard to IVF retrieval (builder-style): one index per
    /// shard, built over that shard's window with the same `(nlist,
    /// seed)`. At `nprobe = nlist` each per-window probe is bit-identical
    /// to the window's dense scan, so the merged answer stays
    /// bit-identical to the single-engine one — the differential suite's
    /// IVF axis.
    pub fn with_ann(mut self, nlist: usize, nprobe: usize, seed: u64) -> Result<Self, GatewayError> {
        for set in &mut self.sets {
            // One index per *window*, built from the primary's cache and
            // shared (Arc) by every replica — siblings must probe the
            // same lists to stay bit-interchangeable.
            let index = match set.primary() {
                Some(primary) => Arc::new(primary.cache().build_ivf(nlist, seed)?),
                None => continue,
            };
            set.map_replicas(|mut s| {
                s.set_ann(index.clone(), nprobe);
                s
            });
        }
        Ok(self)
    }

    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The primary shard of every replica set, in window order — the
    /// pre-replica view of the gateway.
    pub fn shards(&self) -> Vec<&CatalogShard> {
        self.sets.iter().filter_map(|set| set.primary()).collect()
    }

    /// The replica sets themselves (one per catalog window).
    pub fn sets(&self) -> &[ReplicaSet] {
        &self.sets
    }

    /// Breaker state labels, `[set][replica]` → `"closed"` / `"open"` /
    /// `"half-open"` — the bench CLIs export this as the breaker
    /// trajectory snapshot.
    pub fn breaker_states(&self) -> Vec<Vec<&'static str>> {
        self.sets
            .iter()
            .map(|set| set.health().iter().map(|h| h.state_label()).collect())
            .collect()
    }

    pub fn n_items(&self) -> usize {
        self.plan.n_items()
    }

    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// Answer a batch of queries. Requests are micro-batched in arrival
    /// order; per micro-batch the histories are encoded once and fanned
    /// out to the shards; responses come back in request order.
    pub fn serve(&self, requests: &[Request]) -> Vec<GatewayResponse> {
        let mut responses = Vec::with_capacity(requests.len());
        for (batch_index, group) in self.batcher.plan(requests.len()).into_iter().enumerate() {
            // The plan covers 0..len by contract; the checked slice keeps
            // a buggy plan from panicking mid-batch.
            let Some(slice) = requests.get(group.clone()) else {
                continue;
            };
            // Deterministic trace identity for this micro-batch — pure
            // function of (first request id, batch index), so a replay
            // harness predicts it without plumbing state through us.
            let ctx = TraceContext::root(
                slice.first().map(|r| r.id).unwrap_or(0),
                batch_index as u64,
            );
            let span = self.telemetry.as_ref().map(|tel| {
                tel.registry.counter("gateway.batches").inc();
                tel.registry.counter("gateway.requests").add(slice.len() as u64);
                tel.registry
                    .gauge("gateway.queue_depth")
                    .set((requests.len() - group.end) as f64);
                tel.tracer.span_ctx("batch", "gateway", ctx)
            });
            let contexts: Vec<&[usize]> = slice
                .iter()
                .map(|r| MicroBatcher::sanitize(&r.history))
                .collect();
            let users = self.model.user_representations(&contexts);
            let parts = self.fan_out(slice, &users, batch_index, ctx);
            responses.extend(self.merge_group(slice, parts, ctx));
            drop(span);
        }
        responses
    }

    /// [`Gateway::serve`] behind global admission control: calls carrying
    /// more than [`GatewayConfig::max_queue_depth`] requests are rejected
    /// outright (typed, counted) instead of queuing unbounded work.
    pub fn try_serve(&self, requests: &[Request]) -> Result<Vec<GatewayResponse>, GatewayError> {
        let limit = self.cfg.max_queue_depth;
        if requests.len() > limit {
            if let Some(tel) = &self.telemetry {
                tel.registry.counter("gateway.rejected_overload").inc();
                tel.flight.note(
                    "overload",
                    "gateway.admission",
                    TraceContext::UNTRACED,
                    u64::MAX,
                    u64::MAX,
                    tel.clock.now_ns(),
                );
                tel.flight.trigger("overload");
            }
            return Err(GatewayError::Overloaded {
                depth: requests.len(),
                limit,
            });
        }
        Ok(self.serve(requests))
    }

    /// Dispatch one encoded micro-batch. Partitioned mode fans out to all
    /// shards on the pool (one task per shard — the closure borrows only
    /// `Sync` state; the model stays on this thread). Replicated mode
    /// routes the whole batch to one shard, round-robin by batch index.
    /// Returns `(shard index, per-request responses or None)` — `None`
    /// when the shard shed load ([`ServeError::Overloaded`]).
    fn fan_out(
        &self,
        slice: &[Request],
        users: &Tensor,
        batch_index: usize,
        ctx: TraceContext,
    ) -> Vec<(usize, Option<Vec<Response>>)> {
        // One deadline budget per micro-batch, opened on the gateway
        // clock. With `deadline_ns = 0` this is the unlimited budget and
        // the deadline checks below are dead weight-free comparisons.
        let deadline = DeadlineBudget::started_at(self.clock.now_ns(), self.cfg.deadline_ns);
        if self.plan.mode() == ShardMode::Replicated {
            let chosen = batch_index % self.sets.len().max(1);
            if let Some(tel) = &self.telemetry {
                tel.registry.counter("gateway.fanout_calls").inc();
            }
            return match self.sets.get(chosen) {
                Some(set) => {
                    let sctx = ctx.child(chosen as u64);
                    let _span = self.shard_span(chosen, sctx);
                    let call = ReplicaCall {
                        shard: chosen,
                        slice,
                        users,
                        ctx: sctx,
                        deadline,
                        router_seed: self.cfg.router_seed,
                        hedge_threshold_ns: self.cfg.hedge_threshold_ns,
                        clock: &*self.clock,
                        telemetry: self.telemetry.as_ref(),
                    };
                    vec![(chosen, set.dispatch(&call))]
                }
                None => Vec::new(),
            };
        }
        if let Some(tel) = &self.telemetry {
            tel.registry
                .counter("gateway.fanout_calls")
                .add(self.sets.len() as u64);
        }
        // Borrow only the `Sync` pieces into the pool closure: the replica
        // sets, the labels, the clock, the telemetry handle. `self` itself
        // must stay out — the gateway holds the non-`Sync` encoder model.
        // One pool task per set means each set's breaker state is touched
        // by exactly one thread per batch, keeping trajectories
        // independent of `WR_THREADS`.
        let sets = &self.sets;
        let labels = &self.shard_labels;
        let tel = self.telemetry.as_ref();
        let clock: &dyn Clock = &*self.clock;
        let router_seed = self.cfg.router_seed;
        let hedge_threshold_ns = self.cfg.hedge_threshold_ns;
        let results: Vec<Option<Vec<Response>>> =
            wr_runtime::parallel_map(sets.len(), 1, |s| {
                let sctx = ctx.child(s as u64);
                let _span = tel.map(|t| {
                    t.tracer.span_ctx(
                        labels.get(s).cloned().unwrap_or_default(),
                        "gateway.shard",
                        sctx,
                    )
                });
                let call = ReplicaCall {
                    shard: s,
                    slice,
                    users,
                    ctx: sctx,
                    deadline,
                    router_seed,
                    hedge_threshold_ns,
                    clock,
                    telemetry: tel,
                };
                sets.get(s).and_then(|set| set.dispatch(&call))
            });
        results.into_iter().enumerate().map(|(s, p)| (s, p)).collect()
    }

    /// One span per shard dispatch (precomputed label, `gateway.shard`
    /// category, child trace context) — only when telemetry is attached.
    fn shard_span(&self, s: usize, sctx: TraceContext) -> Option<wr_obs::Span<'_>> {
        let tel = self.telemetry.as_ref()?;
        let label = self.shard_labels.get(s).cloned().unwrap_or_default();
        Some(tel.tracer.span_ctx(label, "gateway.shard", sctx))
    }

    /// Merge per-shard parts back into per-request answers with
    /// [`merge_top_k`]. Windows are disjoint (partitioned) or the part
    /// count is one (replicated), so the merge is exact — no upstream
    /// dedup needed. Missing parts (shard rejection, isolation fallback)
    /// degrade the affected responses.
    fn merge_group(
        &self,
        slice: &[Request],
        mut parts: Vec<(usize, Option<Vec<Response>>)>,
        ctx: TraceContext,
    ) -> Vec<GatewayResponse> {
        let k = self.cfg.serve.k;
        let rejected = parts.iter().filter(|(_, p)| p.is_none()).count();
        if rejected > 0 {
            if let Some(tel) = &self.telemetry {
                tel.registry
                    .counter("gateway.shard_rejections")
                    .add(rejected as u64);
            }
        }
        let mut partials: Vec<Vec<ScoredItem>> = Vec::with_capacity(parts.len());
        let mut out = Vec::with_capacity(slice.len());
        let mut degraded_total = 0u64;
        for (r, req) in slice.iter().enumerate() {
            partials.clear();
            let mut degraded = false;
            for (s, part) in parts.iter_mut() {
                match part {
                    Some(responses) => match responses.get_mut(r) {
                        Some(resp) => {
                            if resp.items.is_empty() && self.window_can_answer(*s, &req.history) {
                                degraded = true;
                            }
                            partials.push(std::mem::take(&mut resp.items));
                        }
                        // A shard answered with the wrong cardinality —
                        // treat the missing slot like a rejection.
                        None => degraded = true,
                    },
                    None => {
                        if self.window_can_answer(*s, &req.history) {
                            degraded = true;
                        }
                    }
                }
            }
            let items = merge_top_k(k, &partials);
            if degraded {
                degraded_total += 1;
                if let Some(tel) = &self.telemetry {
                    tel.flight.note(
                        "degraded",
                        "gateway.merge",
                        ctx,
                        req.id,
                        u64::MAX,
                        tel.clock.now_ns(),
                    );
                }
            }
            out.push(GatewayResponse {
                id: req.id,
                items,
                degraded,
            });
        }
        if degraded_total > 0 {
            if let Some(tel) = &self.telemetry {
                tel.registry
                    .counter("gateway.degraded_responses")
                    .add(degraded_total);
                tel.flight.trigger("degraded");
            }
        }
        out
    }

    /// Could shard `s`'s window have offered at least one candidate for
    /// this history? Conservative: duplicate history entries over-count
    /// the seen rows, so a `false` may be optimistic but a `true` is
    /// certain — degraded responses are never flagged spuriously healthy
    /// the other way around.
    fn window_can_answer(&self, s: usize, history: &[usize]) -> bool {
        if self.cfg.serve.k == 0 {
            return false;
        }
        let Some(range) = self.plan.ranges().get(s) else {
            return false;
        };
        if !self.cfg.serve.filter_seen {
            return !range.is_empty();
        }
        let hits = history.iter().filter(|h| range.contains(h)).count();
        range.len() > hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_tensor::Rng64;

    const N_ITEMS: usize = 45;

    fn model() -> Box<dyn SeqRecModel> {
        let mut rng = Rng64::seed_from(77);
        let config = ModelConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            max_seq: 8,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        Box::new(SasRec::new(
            "gw-unit",
            Box::new(IdTower::new(N_ITEMS, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        ))
    }

    fn cfg() -> GatewayConfig {
        GatewayConfig {
            serve: ServeConfig {
                k: 5,
                max_batch: 4,
                max_seq: 8,
                filter_seen: true,
            },
            ..GatewayConfig::default()
        }
    }

    fn reqs(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i as u64,
                history: vec![(i % 7) + 1, (i % 5) + 2],
            })
            .collect()
    }

    #[test]
    fn partitioned_gateway_answers_in_order_with_global_ids() {
        let gw = Gateway::partitioned(model(), 4, cfg()).unwrap();
        let requests = reqs(11);
        let responses = gw.serve(&requests);
        assert_eq!(responses.len(), 11);
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(req.id, resp.id);
            assert_eq!(resp.items.len(), 5);
            assert!(!resp.degraded);
            for s in &resp.items {
                assert!(s.item < N_ITEMS);
                assert!(!req.history.contains(&s.item), "seen item recommended");
            }
            for w in resp.items.windows(2) {
                assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].item < w[1].item)
                );
            }
        }
    }

    #[test]
    fn replicated_mode_shares_one_cache() {
        let gw = Gateway::replicated(model(), 3, cfg()).unwrap();
        let shards = gw.shards();
        assert!(shards[0].cache().shares_storage_with(shards[1].cache()));
        assert!(shards[0].cache().shares_storage_with(shards[2].cache()));
        // And it answers like a partitioned gateway over the same model.
        let requests = reqs(9);
        let repl = gw.serve(&requests);
        let part = Gateway::partitioned(model(), 3, cfg()).unwrap().serve(&requests);
        assert_eq!(repl, part);
    }

    #[test]
    fn global_admission_control_rejects_typed() {
        let mut c = cfg();
        c.max_queue_depth = 4;
        let gw = Gateway::partitioned(model(), 2, c).unwrap();
        match gw.try_serve(&reqs(5)) {
            Err(GatewayError::Overloaded { depth, limit }) => {
                assert_eq!((depth, limit), (5, 4));
            }
            other => panic!("expected overload, got {:?}", other.map(|r| r.len())),
        }
        assert_eq!(gw.try_serve(&reqs(4)).unwrap().len(), 4);
    }

    #[test]
    fn shard_backpressure_degrades_instead_of_failing() {
        let mut c = cfg();
        // Shards accept at most 2 rows per call, but micro-batches carry
        // up to 4 — every full batch is shed by every shard.
        c.shard_max_rows = 2;
        let tel = Telemetry::new();
        let gw = Gateway::partitioned(model(), 2, c)
            .unwrap()
            .with_telemetry(tel.clone());
        let responses = gw.serve(&reqs(4));
        assert_eq!(responses.len(), 4);
        for resp in &responses {
            assert!(resp.degraded, "shed batch must degrade");
            assert!(resp.items.is_empty());
        }
        let snap = tel.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(counter("gateway.shard_rejections"), 2);
        assert_eq!(counter("gateway.degraded_responses"), 4);
        assert_eq!(counter("serve.rejected_overload"), 2);
        // A batch small enough for the shard bound goes through intact.
        let ok = gw.serve(&reqs(2));
        assert!(ok.iter().all(|r| !r.degraded && r.items.len() == 5));
    }

    #[test]
    fn telemetry_is_write_only_and_sees_traffic() {
        let requests = reqs(10);
        let plain = Gateway::partitioned(model(), 3, cfg()).unwrap().serve(&requests);
        let tel = Telemetry::new();
        let observed = Gateway::partitioned(model(), 3, cfg())
            .unwrap()
            .with_telemetry(tel.clone());
        let got = observed.serve(&requests);
        assert_eq!(
            plain, got,
            "telemetry must not change gateway results"
        );
        let snap = tel.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("gateway.requests"), 10);
        assert_eq!(counter("gateway.batches"), 3); // ceil(10 / 4)
        assert_eq!(counter("gateway.fanout_calls"), 9); // 3 batches × 3 shards
        assert_eq!(counter("gateway.degraded_responses"), 0);
        // Spans: one per batch + one per shard dispatch.
        assert_eq!(tel.tracer.events().len(), 3 + 9);
    }
}
