//! The deterministic catalog partition behind a sharded gateway.

use std::ops::Range;

use crate::GatewayError;

/// How a gateway distributes the catalog across its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Each shard owns a contiguous, disjoint window of item rows; every
    /// micro-batch fans out to all shards and the per-shard top-k lists
    /// are merged exactly. This is the scale-out mode: per-shard scoring
    /// cost shrinks with the window.
    Partitioned,
    /// Every shard holds the whole catalog (handle clones of one shared
    /// cache — no copies); micro-batches are routed round-robin to a
    /// single shard, no merge. The degenerate case, useful for
    /// throughput replication and as the plan's identity check.
    Replicated,
}

/// A deterministic assignment of catalog rows to shards.
///
/// Partitioned windows are contiguous and cover `0..n_items` exactly
/// once, in ascending shard order. When `n_items` is not divisible by the
/// shard count, the first `n_items % n_shards` shards take one extra row
/// (the standard balanced split), so windows differ in width by at most
/// one — the uneven case the differential suite covers explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_items: usize,
    mode: ShardMode,
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Balanced contiguous partition of `n_items` rows into `n_shards`
    /// windows. Every shard must own at least one row — a plan with more
    /// shards than items is a deployment bug, not a degenerate success.
    pub fn partitioned(n_items: usize, n_shards: usize) -> Result<ShardPlan, GatewayError> {
        if n_shards == 0 {
            return Err(GatewayError::NoShards);
        }
        if n_shards > n_items {
            return Err(GatewayError::EmptyShard { n_items, n_shards });
        }
        let base = n_items / n_shards;
        let extra = n_items % n_shards;
        let mut ranges = Vec::with_capacity(n_shards);
        let mut start = 0;
        for s in 0..n_shards {
            let width = base + usize::from(s < extra);
            ranges.push(start..start + width);
            start += width;
        }
        Ok(ShardPlan {
            n_items,
            mode: ShardMode::Partitioned,
            ranges,
        })
    }

    /// Full-catalog window repeated `n_shards` times.
    pub fn replicated(n_items: usize, n_shards: usize) -> Result<ShardPlan, GatewayError> {
        if n_shards == 0 {
            return Err(GatewayError::NoShards);
        }
        Ok(ShardPlan {
            n_items,
            mode: ShardMode::Replicated,
            ranges: vec![0..n_items; n_shards],
        })
    }

    pub fn mode(&self) -> ShardMode {
        self.mode
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The global-id windows, one per shard.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Shard owning global item `id` (partitioned mode; in replicated
    /// mode every shard owns every id and shard 0 is reported).
    pub fn shard_of(&self, id: usize) -> Option<usize> {
        self.ranges.iter().position(|r| r.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once_even_and_uneven() {
        for (n_items, n_shards) in [(12, 3), (157, 8), (7, 7), (100, 1), (9, 2)] {
            let plan = ShardPlan::partitioned(n_items, n_shards).unwrap();
            assert_eq!(plan.n_shards(), n_shards);
            let mut covered = 0;
            for (s, r) in plan.ranges().iter().enumerate() {
                assert_eq!(r.start, covered, "windows must be contiguous");
                assert!(!r.is_empty(), "shard {s} is empty");
                covered = r.end;
            }
            assert_eq!(covered, n_items, "windows must cover the catalog");
            let widths: Vec<usize> = plan.ranges().iter().map(|r| r.len()).collect();
            let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
            assert!(max - min <= 1, "balanced split: widths {widths:?}");
        }
    }

    #[test]
    fn degenerate_plans_are_typed_errors() {
        assert!(matches!(
            ShardPlan::partitioned(10, 0),
            Err(GatewayError::NoShards)
        ));
        assert!(matches!(
            ShardPlan::partitioned(3, 5),
            Err(GatewayError::EmptyShard {
                n_items: 3,
                n_shards: 5
            })
        ));
        assert!(matches!(
            ShardPlan::replicated(10, 0),
            Err(GatewayError::NoShards)
        ));
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let plan = ShardPlan::partitioned(157, 8).unwrap();
        for id in 0..157 {
            let s = plan.shard_of(id).unwrap();
            assert!(plan.ranges()[s].contains(&id));
        }
        assert_eq!(plan.shard_of(157), None);
    }
}
