//! Query-log replay through a [`Gateway`] with latency percentiles,
//! throughput, and the shared `top1_checksum` digest.
//!
//! Mirrors `wr_serve`'s replay: timing flows through the telemetry's
//! [`wr_obs::Clock`], percentiles are [`wr_obs::nearest_rank`] over the
//! raw batch-attributed samples, and the JSON export keeps the
//! `wr_bench::harness` shape (suite `gateway-bench`) with the exact field
//! names `scripts/check.sh` greps — so a sharded replay can be compared
//! to a single-engine `serve-bench` replay by comparing two hex strings.

use wr_obs::{nearest_rank, Histogram, Telemetry};
use wr_serve::{top1_digest, QueryLog, Request};

use crate::{Gateway, GatewayResponse};

/// Latency/throughput summary of one gateway replay. Field semantics
/// match [`wr_serve::ReplayReport`] (batch-attributed latency,
/// measurements vary run to run, responses and `top1_checksum` are
/// deterministic), extended with the gateway-specific shape (`n_shards`)
/// and health (`n_degraded`) columns.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Queries replayed.
    pub n_queries: usize,
    /// Micro-batches dispatched.
    pub n_batches: usize,
    /// Shards fanned out to.
    pub n_shards: usize,
    /// Responses flagged degraded (a shard rejected or isolated them).
    pub n_degraded: usize,
    /// End-to-end wall time of the replay loop, seconds.
    pub total_s: f64,
    /// Queries per second over the whole replay.
    pub qps: f64,
    /// Mean per-query latency, milliseconds.
    pub mean_ms: f64,
    /// Fastest per-query latency, milliseconds.
    pub min_ms: f64,
    /// Latency percentiles (nearest-rank), milliseconds.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// [`top1_digest`] over `(id, top-1 item)` of every response — the
    /// same formula as the single-engine replay, so healthy sharded ==
    /// single-engine is a string equality.
    pub top1_checksum: u64,
}

fn checksum(responses: &[GatewayResponse]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

/// Replay `log` through `gateway` one micro-batch at a time, timing each
/// batch on `telemetry.clock` and observing per-batch wall time into the
/// `gateway.latency_ms` histogram; the whole replay is wrapped in a
/// `replay` span (`gateway` category). The log is split into groups of
/// the gateway's `serve.max_batch` so each timed `serve` call dispatches
/// exactly one packed micro-batch across the shards.
pub fn replay_gateway(
    gateway: &Gateway,
    log: &QueryLog,
    telemetry: &Telemetry,
) -> (Vec<GatewayResponse>, GatewayReport) {
    let clock = &telemetry.clock;
    let latency_hist = telemetry
        .registry
        .histogram("gateway.latency_ms", &Histogram::default_ms_bounds());
    let max_batch = gateway.config().serve.max_batch.max(1);
    let mut responses: Vec<GatewayResponse> = Vec::with_capacity(log.len());
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(log.len());
    let mut n_batches = 0usize;

    let replay_start_ns = clock.now_ns();
    let mut start = 0;
    while start < log.len() {
        let end = (start + max_batch).min(log.len());
        let group: &[Request] = &log.queries[start..end];
        let t_ns = clock.now_ns();
        let answered = gateway.serve(group);
        let ms = clock.now_ns().saturating_sub(t_ns) as f64 / 1e6;
        // Exemplar: each `serve(group)` call sees the group as its batch
        // 0, so this is exactly the trace id `Gateway::serve` minted for
        // the batch span — a hot bucket joins back to its span tree.
        let trace_id = group
            .first()
            .map(|r| wr_obs::TraceContext::root(r.id, 0).trace_id)
            .unwrap_or(0);
        latency_hist.observe_exemplar(ms, trace_id);
        // Every query in the batch waited for the whole batch.
        latencies_ms.extend(std::iter::repeat(ms).take(group.len()));
        responses.extend(answered);
        n_batches += 1;
        start = end;
    }
    let end_ns = clock.now_ns();
    telemetry
        .tracer
        .record("replay", "gateway", replay_start_ns, end_ns);
    let total_s = end_ns.saturating_sub(replay_start_ns) as f64 / 1e9;

    let mut sorted = latencies_ms;
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let report = GatewayReport {
        n_queries: log.len(),
        n_batches,
        n_shards: gateway.plan().n_shards(),
        n_degraded: responses.iter().filter(|r| r.degraded).count(),
        total_s,
        qps: if total_s > 0.0 {
            log.len() as f64 / total_s
        } else {
            0.0
        },
        mean_ms,
        min_ms: sorted.first().copied().unwrap_or(0.0),
        p50_ms: nearest_rank(&sorted, 50.0),
        p95_ms: nearest_rank(&sorted, 95.0),
        p99_ms: nearest_rank(&sorted, 99.0),
        top1_checksum: checksum(&responses),
    };
    (responses, report)
}

impl GatewayReport {
    /// Compact JSON in the `wr_bench::harness` export shape:
    /// `{"suite":"gateway-bench","benches":[{...}]}` with one bench entry
    /// carrying the same percentile/throughput field names as the
    /// single-engine `serve-bench` export plus `shards` / `degraded`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":\"gateway-bench\",\"benches\":[{\"name\":\"replay\",\"iters\":");
        wr_tensor::json::write_f64(&mut out, self.n_queries as f64);
        for (key, val) in [
            ("batches", self.n_batches as f64),
            ("shards", self.n_shards as f64),
            ("degraded", self.n_degraded as f64),
            ("total_s", self.total_s),
            ("qps", self.qps),
            ("mean_ms", self.mean_ms),
            ("min_ms", self.min_ms),
            ("p50_ms", self.p50_ms),
            ("p95_ms", self.p95_ms),
            ("p99_ms", self.p99_ms),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            wr_tensor::json::write_f64(&mut out, val);
        }
        out.push_str(",\"top1_checksum\":\"");
        out.push_str(&format!("{:016x}", self.top1_checksum));
        out.push_str("\"}]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gateway, GatewayConfig};
    use std::sync::Arc;
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_obs::MockClock;
    use wr_serve::ServeConfig;
    use wr_tensor::Rng64;
    use wr_train::SeqRecModel;

    fn model() -> Box<dyn SeqRecModel> {
        let mut rng = Rng64::seed_from(23);
        let config = ModelConfig {
            dim: 8,
            heads: 2,
            blocks: 1,
            max_seq: 6,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        Box::new(SasRec::new(
            "gw-replay-unit",
            Box::new(IdTower::new(25, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        ))
    }

    fn tiny_gateway(n_shards: usize) -> Gateway {
        Gateway::partitioned(
            model(),
            n_shards,
            GatewayConfig {
                serve: ServeConfig {
                    k: 3,
                    max_batch: 8,
                    max_seq: 6,
                    filter_seen: true,
                },
                ..GatewayConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn replay_answers_everything_and_reports() {
        let gw = tiny_gateway(3);
        let log = QueryLog::synthetic(37, 25, 5, 2);
        let (responses, report) = replay_gateway(&gw, &log, &Telemetry::new());
        assert_eq!(responses.len(), 37);
        assert_eq!(report.n_queries, 37);
        assert_eq!(report.n_batches, 5); // ceil(37 / 8)
        assert_eq!(report.n_shards, 3);
        assert_eq!(report.n_degraded, 0);
        assert!(report.total_s > 0.0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
        // Replay responses match a direct serve of the same queries.
        let direct = gw.serve(&log.queries);
        assert_eq!(responses, direct);
    }

    #[test]
    fn mock_clock_makes_the_report_deterministic() {
        let gw = tiny_gateway(2);
        let log = QueryLog::synthetic(20, 25, 5, 3);
        let clock = Arc::new(MockClock::with_tick(1_000_000));
        let tel = Telemetry::with_clock(clock);
        let (_, report) = replay_gateway(&gw, &log, &tel);
        assert_eq!(report.n_batches, 3); // ceil(20 / 8)
        assert_eq!(report.p50_ms, 1.0);
        assert_eq!(report.p99_ms, 1.0);
        assert_eq!(report.mean_ms, 1.0);
        let snap = tel.registry.snapshot();
        let lat = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "gateway.latency_ms")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(lat.count, 3);
        assert!(tel.tracer.events().iter().any(|e| e.name == "replay"));
    }

    #[test]
    fn sharded_checksum_matches_single_engine_checksum() {
        // THE gate in miniature: the gateway replay digest equals the
        // single-engine replay digest over the same trace, because both
        // use the shared top1_digest formula and the merge is exact.
        let log = QueryLog::synthetic(29, 25, 5, 11);
        let (_, gw_report) = replay_gateway(&tiny_gateway(4), &log, &Telemetry::new());
        let engine = wr_serve::ServeEngine::new(
            model(),
            ServeConfig {
                k: 3,
                max_batch: 8,
                max_seq: 6,
                filter_seen: true,
            },
        );
        let (_, engine_report) = wr_serve::replay(&engine, &log);
        assert_eq!(gw_report.top1_checksum, engine_report.top1_checksum);
    }

    #[test]
    fn report_json_parses_in_harness_shape() {
        let gw = tiny_gateway(2);
        let log = QueryLog::synthetic(9, 25, 4, 6);
        let (_, report) = replay_gateway(&gw, &log, &Telemetry::new());
        let parsed = wr_tensor::Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed.get("suite").unwrap().as_str().unwrap(),
            "gateway-bench"
        );
        let benches = parsed.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        let b = &benches[0];
        assert_eq!(b.get("iters").unwrap().as_usize().unwrap(), 9);
        assert_eq!(b.get("shards").unwrap().as_usize().unwrap(), 2);
        for key in ["qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "degraded"] {
            assert!(b.get(key).unwrap().as_f64().is_some(), "{key}");
        }
        assert!(b.get("top1_checksum").unwrap().as_str().is_some());
    }
}
