//! # wr-gateway — sharded serving for the WhitenRec reproduction
//!
//! The paper's central serving artifact — a *frozen* whitened item table —
//! makes horizontal scale-out embarrassingly exact: scoring is one gemm
//! `users·Vᵀ`, so the catalog can be cut into contiguous row windows, each
//! window scored independently, and the per-window top-k lists merged
//! under the workspace's one total order (`total_cmp` descending,
//! ascending item index) into *bit-for-bit* the single-engine answer.
//! This crate is that scale-out layer:
//!
//! * [`ShardPlan`] — the deterministic catalog partition (contiguous,
//!   uneven-capable windows; replicated mode as the degenerate case);
//! * [`Gateway`] — one request router holding one encoder model plus N
//!   [`wr_serve::CatalogShard`] scoring cores. Histories are encoded
//!   *once* on the caller thread (the model is not `Sync` — parameters
//!   live behind `Rc` for the autograd tape), then every micro-batch is
//!   fanned out across the shards on the `wr-runtime` pool and merged
//!   with [`wr_serve::merge_top_k`];
//! * admission control + backpressure — [`Gateway::try_serve`] bounds the
//!   request queue globally ([`GatewayError::Overloaded`]), and each
//!   shard bounds its own per-call rows ([`wr_serve::ServeError`]); a
//!   rejecting or dying shard *degrades* the affected responses (flagged,
//!   counted) instead of failing the request;
//! * [`replay_gateway`] — query-log replay with p50/p95/p99 + QPS and the
//!   shared `top1_checksum` digest, exported in the `wr_bench::harness`
//!   JSON shape (`gateway-bench` in `wr-core` is the CLI).
//!
//! # Determinism contract
//!
//! A healthy partitioned gateway is bit-identical to a single
//! [`wr_serve::ServeEngine`] over the same model: same items, same score
//! bits, same tie order, for every shard count, thread count, and scorer
//! (exact, or IVF at full probe). `tests/differential.rs` pins this on a
//! 2048-query replay; `tests/chaos.rs` pins the degraded-mode contract
//! (one shard poisoned → surviving shards' contributions bit-identical to
//! the fault-free run, per-seed-deterministic checksums).

mod gateway;
mod health;
mod plan;
mod replay;

pub use gateway::{Gateway, GatewayConfig, GatewayError, GatewayResponse};
pub use health::{BreakerConfig, HealthTracker, ReplicaSet};
pub use plan::{ShardMode, ShardPlan};
pub use replay::{replay_gateway, GatewayReport};
