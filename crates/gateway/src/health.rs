//! Replica health: per-replica circuit breakers and the replica-set
//! dispatch loop (failover, hedging, deadline enforcement).
//!
//! # Determinism argument
//!
//! Every *routing* decision here is a pure function of `(router seed,
//! first request id of the batch, shard index)` plus breaker state that
//! is itself driven only by deterministic failures — no RNG stream, no
//! wall clock on the decision path. Time enters in exactly two places,
//! both through the caller's [`wr_obs::Clock`] handle: deadline expiry
//! and the hedge threshold. Under a frozen `MockClock` both read zero
//! elapsed, so tests are bit-for-bit reproducible; under the production
//! `MonotonicClock` they change only *which replica* answers — and every
//! replica of a set scores the same frozen window through the same
//! shared cache, so the answer bits cannot change (the whitened item
//! table is immutable; replication is free of divergence by
//! construction). That is why the differential gate holds at every
//! `(shards, replicas, threads)` combination.
//!
//! # Breaker state machine
//!
//! ```text
//!            failure (< threshold)         cooldown elapses
//!   Closed ──────────────────────► Closed'      (allow() observes it)
//!     ▲  │ failure (= threshold)                      │
//!     │  └───────────────► Open ──────────────► HalfOpen
//!     │ success                ▲                      │
//!     └────────────────────────┼──────────────────────┤ probe succeeds
//!                              └──────────────────────┘ probe fails
//! ```
//!
//! `Open` replicas are skipped by dispatch, so a permanently dead
//! replica costs `failure_threshold` failed batches once, not a retry
//! storm per request. After `cooldown_ns` of virtual time the next
//! `allow()` moves the breaker to `HalfOpen`: probes flow again, one
//! success re-closes, one failure re-opens for another cooldown.

use std::sync::Mutex;

use wr_obs::{Clock, DeadlineBudget, Telemetry, TraceContext};
use wr_serve::{CatalogShard, Request, Response, ServeError};
use wr_tensor::Tensor;

/// Circuit-breaker knobs, per replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive strict-dispatch failures that open the breaker.
    pub failure_threshold: u32,
    /// Nanoseconds (of the gateway clock's timeline) an open breaker
    /// waits before letting a half-open probe through.
    pub cooldown_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ns: 50_000_000, // 50 ms
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { failures: u32 },
    Open { until_ns: u64 },
    HalfOpen,
}

/// One replica's consecutive-failure circuit breaker. All transitions
/// happen under a short mutex that is never held across another call
/// (wr-check R7); a poisoned lock is recovered, never propagated — the
/// breaker is availability machinery and must not add failure modes.
#[derive(Debug)]
pub struct HealthTracker {
    cfg: BreakerConfig,
    state: Mutex<BreakerState>,
}

impl HealthTracker {
    pub fn new(cfg: BreakerConfig) -> Self {
        HealthTracker {
            cfg,
            state: Mutex::new(BreakerState::Closed { failures: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerState> {
        // Poison recovery: a panic while holding this lock can only have
        // happened between two plain assignments, so the state is valid.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// May this replica be tried at clock reading `now_ns`? An `Open`
    /// breaker whose cooldown has elapsed transitions to `HalfOpen`
    /// (probe mode) and answers yes.
    pub fn allow(&self, now_ns: u64) -> bool {
        let mut state = self.lock();
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ns } => {
                if now_ns >= until_ns {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A strict dispatch on this replica succeeded: close the breaker
    /// and forget the failure streak.
    pub fn record_success(&self) {
        *self.lock() = BreakerState::Closed { failures: 0 };
    }

    /// A strict dispatch failed (panicked past its retry budget) at
    /// clock reading `now_ns`. Returns `true` when this failure *opened*
    /// the breaker — the caller counts and flight-records that edge.
    pub fn record_failure(&self, now_ns: u64) -> bool {
        let mut state = self.lock();
        match *state {
            BreakerState::Closed { failures } => {
                let failures = failures.saturating_add(1);
                if failures >= self.cfg.failure_threshold {
                    *state = BreakerState::Open {
                        until_ns: now_ns.saturating_add(self.cfg.cooldown_ns),
                    };
                    true
                } else {
                    *state = BreakerState::Closed { failures };
                    false
                }
            }
            // A failed half-open probe re-opens for another cooldown.
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    until_ns: now_ns.saturating_add(self.cfg.cooldown_ns),
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// The state as an export label: `"closed"`, `"open"`, `"half-open"`.
    pub fn state_label(&self) -> &'static str {
        match *self.lock() {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// SplitMix64 finalizer — the workspace's standard bit mixer, used here
/// to turn `(router seed, request id, shard)` into a rotation start so
/// replica load spreads without an RNG stream.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Everything one dispatch needs from the gateway, bundled so the pool
/// closure borrows a single `Sync` view.
pub(crate) struct ReplicaCall<'a> {
    /// Shard (replica-set) index, for the rotation hash and event labels.
    pub shard: usize,
    pub slice: &'a [Request],
    pub users: &'a Tensor,
    pub ctx: TraceContext,
    pub deadline: DeadlineBudget,
    pub router_seed: u64,
    /// Hedge a slow-but-successful primary past this many elapsed
    /// nanoseconds; `0` disables hedging.
    pub hedge_threshold_ns: u64,
    pub clock: &'a dyn Clock,
    pub telemetry: Option<&'a Telemetry>,
}

impl ReplicaCall<'_> {
    fn first_id(&self) -> u64 {
        self.slice.first().map(|r| r.id).unwrap_or(0)
    }

    fn note(&self, kind: &'static str, req: u64, replica: u64) {
        if let Some(tel) = self.telemetry {
            tel.flight
                .note(kind, "gateway.replica", self.ctx, req, replica, tel.clock.now_ns());
        }
    }

    fn count(&self, name: &'static str) {
        if let Some(tel) = self.telemetry {
            tel.registry.counter(name).inc();
        }
    }
}

/// Bit-level equality of two response vectors — the hedge assertion.
/// Score comparison is on the `f32` bit patterns, not float equality.
fn bits_identical(a: &[Response], b: &[Response]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.id == y.id
                && x.items.len() == y.items.len()
                && x.items
                    .iter()
                    .zip(&y.items)
                    .all(|(p, q)| p.item == q.item && p.score.to_bits() == q.score.to_bits())
        })
}

/// One catalog window behind `R` interchangeable [`CatalogShard`]
/// replicas (handle clones of the same frozen cache) plus a
/// [`HealthTracker`] per replica.
pub struct ReplicaSet {
    replicas: Vec<CatalogShard>,
    health: Vec<HealthTracker>,
}

impl ReplicaSet {
    /// `primary` plus `n_replicas - 1` handle-clone replicas (minimum 1
    /// total), each with a fresh closed breaker.
    pub fn new(primary: CatalogShard, n_replicas: usize, breaker: BreakerConfig) -> Self {
        let n = n_replicas.max(1);
        let mut replicas = Vec::with_capacity(n);
        for _ in 1..n {
            replicas.push(primary.replica());
        }
        replicas.insert(0, primary);
        let health = (0..n).map(|_| HealthTracker::new(breaker)).collect();
        ReplicaSet { replicas, health }
    }

    pub fn primary(&self) -> Option<&CatalogShard> {
        self.replicas.first()
    }

    pub fn replicas(&self) -> &[CatalogShard] {
        &self.replicas
    }

    pub fn health(&self) -> &[HealthTracker] {
        &self.health
    }

    /// Rebuild every replica through `f` (builder plumbing: telemetry,
    /// sleeper, resilience attach). Breaker state is untouched — builders
    /// run before traffic, when every breaker is closed anyway.
    pub(crate) fn map_replicas(&mut self, mut f: impl FnMut(CatalogShard) -> CatalogShard) {
        let replicas = std::mem::take(&mut self.replicas);
        self.replicas = replicas.into_iter().map(&mut f).collect();
    }

    pub(crate) fn replica_mut(&mut self, r: usize) -> Option<&mut CatalogShard> {
        self.replicas.get_mut(r)
    }

    /// Rotation start for this batch: pure hash of `(seed, first request
    /// id, shard)` — no RNG stream, no clock, so a replay recomputes it.
    fn rotation_start(&self, call: &ReplicaCall<'_>) -> usize {
        let n = self.replicas.len().max(1);
        let h = splitmix(
            call.router_seed
                ^ call.first_id().wrapping_mul(0x9E3779B97F4A7C15)
                ^ (call.shard as u64).wrapping_mul(0xD1B54A32D192ED03),
        );
        (h % n as u64) as usize
    }

    /// Serve one encoded micro-batch through the healthiest replica that
    /// will take it. Returns `None` when the set sheds the batch
    /// (backpressure on the final candidate, or a spent deadline) — the
    /// gateway degrades those responses, exactly as it did pre-replica.
    ///
    /// Candidates are walked in rotation order, breaker-gated; every
    /// candidate but the last goes through the *strict* path
    /// ([`CatalogShard::try_serve_replica`]) so a dead replica surfaces
    /// as a typed failure and the next sibling answers bit-identically.
    /// The final candidate uses the absorbing legacy path
    /// ([`CatalogShard::try_serve_encoded_ctx`]) so a set with one
    /// usable replica behaves byte-for-byte like the pre-replica
    /// gateway (same counters, same per-request isolation).
    pub(crate) fn dispatch(&self, call: &ReplicaCall<'_>) -> Option<Vec<Response>> {
        let now0 = call.clock.now_ns();
        let n = self.replicas.len();
        let start = self.rotation_start(call);
        let mut candidates: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            let idx = (start + i) % n.max(1);
            if self.health.get(idx).is_some_and(|h| h.allow(now0)) {
                candidates.push(idx);
            }
        }
        if candidates.is_empty() {
            // Every breaker is open. Refusing to answer would degrade the
            // whole window for a cooldown; forcing one absorbing attempt
            // keeps availability and lets its success close a breaker.
            candidates.push(start.min(n.saturating_sub(1)));
        }
        let last_pos = candidates.len().saturating_sub(1);
        for (pos, &idx) in candidates.iter().enumerate() {
            let Some(replica) = self.replicas.get(idx) else {
                continue;
            };
            if pos == last_pos {
                // Last usable candidate: absorb panics into per-request
                // isolation rather than fail the window (legacy behavior;
                // with R=1 this is the only path, bit- and
                // counter-identical to the pre-replica gateway).
                let t0 = call.clock.now_ns();
                let part = replica.try_serve_encoded_ctx(call.slice, call.users, call.ctx).ok();
                if part.is_some() {
                    if let Some(h) = self.health.get(idx) {
                        h.record_success();
                    }
                    self.maybe_hedge(call, idx, &candidates, part.as_deref(), t0);
                }
                return part;
            }
            let t0 = call.clock.now_ns();
            match replica.try_serve_replica(call.slice, call.users, call.ctx, call.deadline, t0) {
                Ok(responses) => {
                    if let Some(h) = self.health.get(idx) {
                        h.record_success();
                    }
                    self.maybe_hedge(call, idx, &candidates, Some(&responses), t0);
                    return Some(responses);
                }
                Err(ServeError::Panicked { .. }) => {
                    let opened = self
                        .health
                        .get(idx)
                        .is_some_and(|h| h.record_failure(call.clock.now_ns()));
                    call.count("gateway.failovers");
                    call.note("failover", call.first_id(), idx as u64);
                    if opened {
                        call.count("gateway.breaker_open");
                        call.note("breaker", call.first_id(), idx as u64);
                        if let Some(tel) = call.telemetry {
                            tel.flight.trigger("breaker-open");
                        }
                    }
                    // Fall through to the next candidate: same window,
                    // same cache, bit-identical answer.
                }
                Err(ServeError::Overloaded { .. }) => {
                    // Backpressure is load, not ill-health: no breaker
                    // penalty, try the next sibling.
                }
                Err(ServeError::DeadlineExceeded { .. }) => {
                    // The budget is spent; burning more replicas answers
                    // after the caller hung up. Shed the batch.
                    call.note("deadline", call.first_id(), idx as u64);
                    return None;
                }
            }
        }
        None
    }

    /// Hedge a slow-but-successful attempt: when the winning replica
    /// took longer than the hedge threshold, fire one more strict
    /// attempt on the next allowed sibling and *assert* (via counter,
    /// never a panic — this is the hot path) that the two answers are
    /// bit-identical. The first finite answer — the one already in hand
    /// — wins either way; the hedge buys the breaker an extra health
    /// observation and pins the replica-interchangeability invariant in
    /// production, not just in tests.
    fn maybe_hedge(
        &self,
        call: &ReplicaCall<'_>,
        winner: usize,
        candidates: &[usize],
        responses: Option<&[Response]>,
        t0: u64,
    ) {
        if call.hedge_threshold_ns == 0 {
            return;
        }
        let elapsed = call.clock.now_ns().saturating_sub(t0);
        if elapsed < call.hedge_threshold_ns {
            return;
        }
        let Some(&hedge_idx) = candidates.iter().find(|&&i| i != winner) else {
            return; // no sibling to hedge on
        };
        let Some(replica) = self.replicas.get(hedge_idx) else {
            return;
        };
        call.count("gateway.hedges");
        call.note("hedge", call.first_id(), hedge_idx as u64);
        let now = call.clock.now_ns();
        match replica.try_serve_replica(call.slice, call.users, call.ctx, call.deadline, now) {
            Ok(hedged) => {
                if let Some(h) = self.health.get(hedge_idx) {
                    h.record_success();
                }
                let identical = responses.is_some_and(|r| bits_identical(r, &hedged));
                if !identical {
                    // Replicas disagreeing on a frozen cache is a real
                    // bug (or genuine divergence); surface it loudly but
                    // keep serving the primary's answer.
                    call.count("gateway.hedge_mismatches");
                    call.note("hedge-mismatch", call.first_id(), hedge_idx as u64);
                    if let Some(tel) = call.telemetry {
                        tel.flight.trigger("hedge-mismatch");
                    }
                }
            }
            Err(ServeError::Panicked { .. }) => {
                let opened = self
                    .health
                    .get(hedge_idx)
                    .is_some_and(|h| h.record_failure(call.clock.now_ns()));
                if opened {
                    call.count("gateway.breaker_open");
                    call.note("breaker", call.first_id(), hedge_idx as u64);
                    if let Some(tel) = call.telemetry {
                        tel.flight.trigger("breaker-open");
                    }
                }
            }
            Err(_) => {} // overload/deadline on a hedge: drop it silently
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let t = HealthTracker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ns: 1_000,
        });
        assert!(t.allow(0));
        assert_eq!(t.state_label(), "closed");
        assert!(!t.record_failure(10));
        assert!(!t.record_failure(20));
        assert!(t.record_failure(30), "third consecutive failure opens");
        assert_eq!(t.state_label(), "open");
        assert!(!t.allow(30));
        assert!(!t.allow(1029), "cooldown not yet elapsed");
        // Cooldown elapses → half-open probe allowed.
        assert!(t.allow(1030));
        assert_eq!(t.state_label(), "half-open");
        // Probe succeeds → closed, streak forgotten.
        t.record_success();
        assert_eq!(t.state_label(), "closed");
        assert!(!t.record_failure(2000), "streak restarted");
    }

    #[test]
    fn failed_half_open_probe_reopens_for_another_cooldown() {
        let t = HealthTracker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ns: 500,
        });
        assert!(t.record_failure(0));
        assert!(t.allow(500));
        assert_eq!(t.state_label(), "half-open");
        assert!(t.record_failure(500), "failed probe re-opens");
        assert!(!t.allow(999));
        assert!(t.allow(1_000));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t = HealthTracker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ns: 100,
        });
        assert!(!t.record_failure(0));
        t.record_success();
        assert!(!t.record_failure(1), "streak was reset");
        assert!(t.record_failure(2));
    }

    #[test]
    fn further_failures_while_open_do_not_re_trigger() {
        let t = HealthTracker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ns: 1_000,
        });
        assert!(t.record_failure(0), "first failure opens");
        assert!(!t.record_failure(10), "already open: no new open edge");
        assert_eq!(t.state_label(), "open");
    }

    #[test]
    fn rotation_is_a_pure_function_of_seed_request_and_shard() {
        // Two sets built the same way rotate identically; changing any
        // hash input moves the start for at least some batch.
        let mix = |seed: u64, id: u64, shard: u64| {
            splitmix(
                seed ^ id.wrapping_mul(0x9E3779B97F4A7C15)
                    ^ shard.wrapping_mul(0xD1B54A32D192ED03),
            ) % 3
        };
        for id in 0..64u64 {
            assert_eq!(mix(7, id, 1), mix(7, id, 1));
        }
        let a: Vec<u64> = (0..64).map(|id| mix(7, id, 1)).collect();
        let b: Vec<u64> = (0..64).map(|id| mix(8, id, 1)).collect();
        let c: Vec<u64> = (0..64).map(|id| mix(7, id, 2)).collect();
        assert_ne!(a, b, "seed must matter");
        assert_ne!(a, c, "shard must matter");
    }
}
