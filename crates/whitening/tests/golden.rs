//! Golden-file regression tests for the whitening numerics.
//!
//! The fixtures under `tests/golden/` pin the exact outputs of full ZCA
//! whitening (G=1, Eq. 4–6 of the paper) and relaxed group whitening
//! (G=4) on a fixed 32×8 input. Any change to the eigendecomposition,
//! covariance, or group plumbing that shifts results by more than 1e-6
//! fails here — catching silent numeric drift that property tests
//! (whiteness-error bounds) would let through.
//!
//! The *input* matrix is itself a committed fixture, not regenerated from
//! the RNG at test time, so changes to `Rng64` cannot silently invalidate
//! the expectations. To regenerate all three files after an intentional
//! numeric change, run:
//!
//! ```text
//! WR_UPDATE_GOLDEN=1 cargo test -p wr-whiten --test golden
//! ```
//!
//! and commit the diff (the test still asserts on the fresh values in the
//! same run, and fails loudly so an update can't pass CI unnoticed).

use std::path::{Path, PathBuf};

use wr_tensor::Tensor;
use wr_whiten::{GroupWhitening, WhiteningMethod, DEFAULT_EPS};

const TOLERANCE: f32 = 1e-6;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Plain-text matrix format: one row per line, `{:.8e}` values separated
/// by single spaces. 8 significant hex-free digits round-trip f32 exactly
/// ([f32; every value has ≤9 significant decimal digits], and `parse`
/// returns the nearest float, which is the original).
fn save_matrix(path: &Path, t: &Tensor) {
    let mut out = String::new();
    for r in 0..t.rows() {
        for (c, v) in t.row(r).iter().enumerate() {
            if c > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{v:.8e}"));
        }
        out.push('\n');
    }
    std::fs::write(path, out).unwrap();
}

fn load_matrix(path: &Path) -> Tensor {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    let rows: Vec<Vec<f32>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.split_whitespace()
                .map(|v| v.parse().unwrap())
                .collect()
        })
        .collect();
    let (r, c) = (rows.len(), rows[0].len());
    assert!(rows.iter().all(|row| row.len() == c), "ragged fixture");
    Tensor::from_vec(rows.into_iter().flatten().collect(), &[r, c])
}

fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.dims(), want.dims(), "{what}: shape");
    for r in 0..want.rows() {
        for c in 0..want.cols() {
            let (g, w) = (got.at2(r, c), want.at2(r, c));
            assert!(
                (g - w).abs() <= TOLERANCE,
                "{what}: [{r}][{c}] drifted: got {g:.8e}, golden {w:.8e} (|Δ| = {:.2e} > {TOLERANCE:.0e})",
                (g - w).abs()
            );
        }
    }
}

fn check_or_update(name: &str, got: &Tensor, update: bool) {
    let path = golden_dir().join(name);
    if update {
        save_matrix(&path, got);
        eprintln!("golden fixture rewritten: {}", path.display());
    } else {
        assert_close(got, &load_matrix(&path), name);
    }
}

#[test]
fn whitening_outputs_match_golden_fixtures() {
    let update = std::env::var("WR_UPDATE_GOLDEN").is_ok();
    let input = load_matrix(&golden_dir().join("input_32x8.txt"));
    assert_eq!(input.dims(), &[32, 8]);

    let zca = GroupWhitening::fit(&input, 1, WhiteningMethod::Zca, DEFAULT_EPS).apply(&input);
    check_or_update("zca_g1.txt", &zca, update);

    let grouped = GroupWhitening::fit(&input, 4, WhiteningMethod::Zca, DEFAULT_EPS).apply(&input);
    check_or_update("group_g4.txt", &grouped, update);

    assert!(
        !update,
        "WR_UPDATE_GOLDEN set: fixtures rewritten; unset it, inspect the diff, and re-run"
    );
}

/// The committed expectations themselves must describe *correct* whitening,
/// not merely frozen output: golden ZCA has identity covariance, and the
/// grouped output whitens each 2-dim group block.
#[test]
fn golden_fixtures_are_actually_white() {
    let zca = load_matrix(&golden_dir().join("zca_g1.txt"));
    let cov = wr_linalg::covariance_of_rows(&zca, 0.0);
    for i in 0..8 {
        for j in 0..8 {
            let expect = if i == j { 1.0 } else { 0.0 };
            assert!(
                (cov.at2(i, j) - expect).abs() < 5e-3,
                "golden ZCA covariance [{i}][{j}] = {}",
                cov.at2(i, j)
            );
        }
    }
    let grouped = load_matrix(&golden_dir().join("group_g4.txt"));
    let gcov = wr_linalg::covariance_of_rows(&grouped, 0.0);
    // G=4 over 8 dims → 2-dim groups along the diagonal are whitened;
    // cross-group covariance is unconstrained.
    for g in 0..4 {
        for i in 0..2 {
            for j in 0..2 {
                let (r, c) = (2 * g + i, 2 * g + j);
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (gcov.at2(r, c) - expect).abs() < 5e-3,
                    "golden group covariance [{r}][{c}] = {}",
                    gcov.at2(r, c)
                );
            }
        }
    }
}
