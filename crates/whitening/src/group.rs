//! Relaxed (group) whitening — Eq. (5).

use crate::{WhiteningMethod, WhiteningTransform};
use wr_tensor::Tensor;

/// Relaxed whitening with `G` dimension groups: ZCA (or another method)
/// applied independently within each contiguous block of `d/G` dimensions,
/// leaving cross-group correlations intact.
///
/// `G = 1` recovers full whitening; larger `G` preserves more of the
/// original text semantics at the cost of embedding uniformity (Fig. 4).
#[derive(Debug, Clone)]
pub struct GroupWhitening {
    transforms: Vec<WhiteningTransform>,
    group_size: usize,
    groups: usize,
}

impl GroupWhitening {
    /// Fit on `x: [n, d]`. `d` must be divisible by `groups`.
    ///
    /// Groups are independent ZCA problems (covariance + eigendecomposition
    /// per `d/G` block), so they fan out across the [`wr_runtime`] pool; the
    /// per-group solves are untouched and results are stitched in group
    /// order, so the fit is bit-identical for any `WR_THREADS`.
    pub fn fit(x: &Tensor, groups: usize, method: WhiteningMethod, eps: f32) -> Self {
        assert!(groups >= 1, "need at least one group");
        let d = x.cols();
        assert!(
            d % groups == 0,
            "dimension {d} not divisible into {groups} groups"
        );
        let group_size = d / groups;
        let transforms = wr_runtime::parallel_map(groups, 1, |h| {
            let block = x.slice_cols(h * group_size, (h + 1) * group_size);
            WhiteningTransform::fit(&block, method, eps)
        });
        GroupWhitening {
            transforms,
            group_size,
            groups,
        }
    }

    /// Apply to rows of `x: [m, d]`, one pool task per group.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.cols(),
            self.group_size * self.groups,
            "dimension mismatch in group apply"
        );
        let parts: Vec<Tensor> = wr_runtime::parallel_map(self.groups, 1, |h| {
            let block = x.slice_cols(h * self.group_size, (h + 1) * self.group_size);
            self.transforms[h].apply(&block)
        });
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat_cols(&refs)
    }

    pub fn groups(&self) -> usize {
        self.groups
    }

    pub fn group_size(&self) -> usize {
        self.group_size
    }
}

/// One-shot convenience: fit on `x` and transform `x` itself.
pub fn group_whiten(x: &Tensor, groups: usize, method: WhiteningMethod, eps: f32) -> Tensor {
    GroupWhitening::fit(x, groups, method, eps).apply(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_linalg::covariance_of_rows;
    use wr_tensor::{Rng64, Tensor};

    fn correlated(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let mixer = Tensor::randn(&[d, d], &mut rng);
        Tensor::randn(&[n, d], &mut rng).matmul(&mixer)
    }

    #[test]
    fn g1_equals_full_whitening() {
        let x = correlated(400, 8, 1);
        let grouped = group_whiten(&x, 1, WhiteningMethod::Zca, 1e-6);
        let full = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6).apply(&x);
        assert!(grouped.sub(&full).frob_norm() < 1e-3);
    }

    #[test]
    fn within_group_decorrelated_cross_group_not() {
        let x = correlated(2000, 8, 2);
        let z = group_whiten(&x, 2, WhiteningMethod::Zca, 1e-6);
        let cov = covariance_of_rows(&z, 0.0);
        // within-group blocks ≈ identity
        for block in 0..2 {
            let o = block * 4;
            for i in 0..4 {
                for j in 0..4 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    let got = cov.at2(o + i, o + j);
                    assert!(
                        (got - expect).abs() < 0.08,
                        "within-group cov[{}][{}] = {got}",
                        o + i,
                        o + j
                    );
                }
            }
        }
        // cross-group correlation survives somewhere
        let mut max_cross = 0.0f32;
        for i in 0..4 {
            for j in 4..8 {
                max_cross = max_cross.max(cov.at2(i, j).abs());
            }
        }
        assert!(max_cross > 0.05, "cross-group correlation was destroyed ({max_cross})");
    }

    #[test]
    fn more_groups_preserve_more_semantics() {
        // Distortion from the (centered) input grows as G shrinks.
        let x = correlated(600, 16, 3);
        let centered = x.sub_row_broadcast(&x.mean_rows());
        // Compare normalized representations: relaxed whitening should keep
        // pairwise geometry closer to the original than full whitening does.
        let cos_orig = crate::average_pairwise_cosine(&centered, 200, 7);
        let cos_g1 = crate::average_pairwise_cosine(
            &group_whiten(&x, 1, WhiteningMethod::Zca, 1e-6),
            200,
            7,
        );
        let cos_g8 = crate::average_pairwise_cosine(
            &group_whiten(&x, 8, WhiteningMethod::Zca, 1e-6),
            200,
            7,
        );
        // Full whitening pushes average cosine toward 0; relaxed whitening
        // stays closer to the raw geometry.
        assert!(
            (cos_g8 - cos_orig).abs() <= (cos_g1 - cos_orig).abs() + 1e-3,
            "orig {cos_orig}, g1 {cos_g1}, g8 {cos_g8}"
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_groups_rejected() {
        let x = Tensor::zeros(&[10, 7]);
        group_whiten(&x, 2, WhiteningMethod::Zca, 1e-5);
    }

    #[test]
    fn group_whitening_is_bit_identical_across_thread_counts() {
        let x = correlated(300, 16, 9);
        let fresh = correlated(40, 16, 10);
        let run = |threads: usize| {
            wr_runtime::set_threads(threads);
            let gw = GroupWhitening::fit(&x, 8, WhiteningMethod::Zca, 1e-6);
            (gw.apply(&x), gw.apply(&fresh))
        };
        let (self_1, fresh_1) = run(1);
        let (self_8, fresh_8) = run(8);
        wr_runtime::set_threads(1);
        assert_eq!(self_1.data(), self_8.data());
        assert_eq!(fresh_1.data(), fresh_8.data());
    }

    #[test]
    fn fit_apply_on_new_data() {
        let x = correlated(500, 6, 5);
        let gw = GroupWhitening::fit(&x, 3, WhiteningMethod::Zca, 1e-6);
        assert_eq!(gw.groups(), 3);
        assert_eq!(gw.group_size(), 2);
        let fresh = correlated(50, 6, 6);
        let z = gw.apply(&fresh);
        assert_eq!(z.dims(), &[50, 6]);
        assert_eq!(z.non_finite_count(), 0);
    }
}
