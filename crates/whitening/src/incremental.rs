//! Incremental whitening: fold newly arrived items into a fitted
//! transform without refitting from scratch.
//!
//! The paper's cold-start motivation is exactly this scenario —
//! "e-commerce platforms introduce thousands of new products daily." A
//! production deployment keeps running mean/covariance moments and refits
//! the whitening matrix on demand; re-deriving it from the moments costs
//! one `d × d` eigendecomposition instead of an `n × d` pass.

use crate::{WhiteningMethod, WhiteningTransform};
use wr_linalg::sym_eig;
use wr_tensor::Tensor;

/// Running first/second moments of item embeddings, updatable one batch at
/// a time, from which a [`WhiteningTransform`] can be derived at any point.
#[derive(Debug, Clone)]
pub struct IncrementalWhitening {
    dim: usize,
    count: f64,
    /// Σx per dimension.
    sum: Vec<f64>,
    /// Σ x xᵀ (upper triangle including diagonal, row-major packed).
    cross: Vec<f64>,
    eps: f32,
}

impl IncrementalWhitening {
    pub fn new(dim: usize, eps: f32) -> Self {
        IncrementalWhitening {
            dim,
            count: 0.0,
            sum: vec![0.0; dim],
            cross: vec![0.0; dim * (dim + 1) / 2],
            eps,
        }
    }

    /// Fold a batch of rows into the moments.
    pub fn update(&mut self, x: &Tensor) {
        assert_eq!(x.cols(), self.dim, "dimension mismatch in update");
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut k = 0;
            for i in 0..self.dim {
                self.sum[i] += row[i] as f64;
                for j in i..self.dim {
                    self.cross[k] += row[i] as f64 * row[j] as f64;
                    k += 1;
                }
            }
            self.count += 1.0;
        }
    }

    /// Items folded in so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Derive the ZCA transform from the current moments.
    ///
    /// Panics with fewer than 2 items (covariance undefined).
    pub fn transform(&self) -> WhiteningTransform {
        assert!(self.count >= 2.0, "need at least two items");
        let n = self.count;
        let mean: Vec<f32> = self.sum.iter().map(|&s| (s / n) as f32).collect();
        // Cov = E[xxᵀ] − μμᵀ + εI.
        let mut cov = Tensor::zeros(&[self.dim, self.dim]);
        let mut k = 0;
        for i in 0..self.dim {
            for j in i..self.dim {
                let e_xy = self.cross[k] / n;
                let c = (e_xy - (self.sum[i] / n) * (self.sum[j] / n)) as f32;
                *cov.at2_mut(i, j) = c;
                *cov.at2_mut(j, i) = c;
                k += 1;
            }
        }
        for i in 0..self.dim {
            *cov.at2_mut(i, i) += self.eps;
        }
        // wr-check: allow(R1) — cov is symmetric by construction (mirrored
        // writes above) and Jacobi rotation on a symmetric matrix converges.
        let eig = sym_eig(&cov).expect("incremental covariance eigendecomposition");
        let eps = self.eps;
        let w = eig.rebuild_with(|l| 1.0 / l.max(eps).sqrt());
        WhiteningTransform {
            mean: Tensor::from_vec(mean, &[self.dim]),
            w,
            method: WhiteningMethod::Zca,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whiteness_error;
    use wr_tensor::Rng64;

    fn correlated(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let mix = Tensor::randn(&[d, d], &mut rng).scale(0.4).add(&Tensor::eye(d));
        Tensor::randn(&[n, d], &mut rng).matmul(&mix)
    }

    #[test]
    fn matches_batch_fit() {
        let x = correlated(500, 8, 1);
        let batch = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-5);

        let mut inc = IncrementalWhitening::new(8, 1e-5);
        // Feed in uneven chunks.
        inc.update(&x.slice_rows(0, 100));
        inc.update(&x.slice_rows(100, 101));
        inc.update(&x.slice_rows(101, 500));
        assert_eq!(inc.count(), 500);
        let t = inc.transform();

        let za = batch.apply(&x);
        let zb = t.apply(&x);
        let rel = za.sub(&zb).frob_norm() / za.frob_norm();
        assert!(rel < 1e-2, "incremental vs batch differ by {rel}");
    }

    #[test]
    fn new_items_improve_the_estimate() {
        // Fit on a small prefix, then fold in the rest: whiteness of the
        // full set under the updated transform must improve.
        let x = correlated(600, 6, 2);
        let mut inc = IncrementalWhitening::new(6, 1e-5);
        inc.update(&x.slice_rows(0, 30));
        let early = inc.transform();
        let err_early = whiteness_error(&early.apply(&x));

        inc.update(&x.slice_rows(30, 600));
        let late = inc.transform();
        let err_late = whiteness_error(&late.apply(&x));
        assert!(
            err_late < err_early,
            "more data should whiten better: {err_early} -> {err_late}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two items")]
    fn requires_two_items() {
        let inc = IncrementalWhitening::new(4, 1e-5);
        inc.transform();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_width() {
        let mut inc = IncrementalWhitening::new(4, 1e-5);
        inc.update(&Tensor::zeros(&[3, 5]));
    }
}
