//! Normalizing-flow Gaussianization (the BERT-flow row of Table VI).
//!
//! BERT-flow learns an invertible map from the embedding distribution to a
//! latent Gaussian and uses the latents as sentence representations. We
//! train a small RealNVP-style stack of affine coupling layers by maximum
//! likelihood on the item-embedding matrix and emit the latents.

use crate::{WhiteningMethod, WhiteningTransform};
use wr_autograd::{Graph, Var};
use wr_nn::{Mlp, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};

/// One affine coupling layer: the `keep` half passes through; the other
/// half is scaled/shifted by networks of the kept half. `swap` alternates
/// which half is transformed between layers.
#[derive(Debug, Clone)]
struct Coupling {
    s_net: Mlp,
    t_net: Mlp,
    swap: bool,
}

impl Coupling {
    fn new(half: usize, hidden: usize, swap: bool, rng: &mut Rng64) -> Self {
        Coupling {
            s_net: Mlp::new(&[half, hidden, half], false, 0.0, rng),
            t_net: Mlp::new(&[half, hidden, half], false, 0.0, rng),
            swap,
        }
    }

    /// Returns `(y, log_scale_sum)` where `log_scale_sum` is a graph node
    /// holding Σ log-scales (the layer's log-det contribution summed over
    /// the whole batch).
    fn forward(&self, sess: &mut Session, x: Var, dim: usize) -> (Var, Var) {
        let g = sess.graph;
        let half = dim / 2;
        let (keep, change) = if self.swap {
            (g.slice_cols(x, half, dim), g.slice_cols(x, 0, half))
        } else {
            (g.slice_cols(x, 0, half), g.slice_cols(x, half, dim))
        };
        // Bounded log-scale keeps the flow numerically tame.
        let s = g.tanh(self.s_net.forward(sess, keep));
        let t = self.t_net.forward(sess, keep);
        let scaled = g.add(g.mul(change, g.exp(s)), t);
        let y = if self.swap {
            g.concat_cols(&[scaled, keep])
        } else {
            g.concat_cols(&[keep, scaled])
        };
        (y, g.sum_all(s))
    }
}

impl Module for Coupling {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.s_net.params();
        ps.extend(self.t_net.params());
        ps
    }
}

/// A fitted flow-based whitening: standardize, then push through the
/// trained coupling stack.
#[derive(Debug, Clone)]
pub struct FlowWhitening {
    standardizer: WhiteningTransform,
    layers: Vec<Coupling>,
    dim: usize,
    /// Final negative log-likelihood per sample, for diagnostics.
    pub final_nll: f32,
}

/// Training hyper-parameters for [`FlowWhitening::fit`].
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    pub layers: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f32,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            layers: 4,
            hidden: 64,
            epochs: 8,
            batch: 256,
            lr: 1e-3,
        }
    }
}

impl FlowWhitening {
    /// Train on `x: [n, d]` (d must be even) and return the fitted flow.
    pub fn fit(x: &Tensor, config: FlowConfig, seed: u64) -> Self {
        let d = x.cols();
        assert!(d % 2 == 0, "flow whitening needs an even dimension");
        assert!(config.layers >= 1, "flow whitening needs at least one coupling layer");
        let mut rng = Rng64::seed_from(seed);
        // Per-dimension standardization first (BN) so the flow starts near
        // a reasonable scale.
        let standardizer = WhiteningTransform::fit(x, WhiteningMethod::BatchNorm, 1e-5);
        let xs = standardizer.apply(x);

        let layers: Vec<Coupling> = (0..config.layers)
            .map(|i| Coupling::new(d / 2, config.hidden, i % 2 == 1, &mut rng))
            .collect();

        // Adam state per parameter id.
        let all_params: Vec<Param> = layers.iter().flat_map(|l| l.params()).collect();
        let mut m: Vec<Tensor> = all_params
            .iter()
            .map(|p| Tensor::zeros(&p.dims()))
            .collect();
        let mut v: Vec<Tensor> = all_params
            .iter()
            .map(|p| Tensor::zeros(&p.dims()))
            .collect();
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let mut step_no = 0usize;

        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut final_nll = f32::INFINITY;

        for _epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_nll = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch) {
                let batch = xs.gather_rows(chunk);
                let bsz = chunk.len() as f32;

                let g = Graph::new();
                let mut sess = Session::train(&g, rng.fork());
                let mut h = g.constant(batch);
                let mut logdet_sum: Option<Var> = None;
                for layer in &layers {
                    let (y, ls) = layer.forward(&mut sess, h, d);
                    h = y;
                    logdet_sum = Some(match logdet_sum {
                        Some(acc) => g.add(acc, ls),
                        None => ls,
                    });
                }
                // NLL/sample = 0.5·Σ y² / n − logdet / n (+ const).
                let sq = g.mul(h, h);
                let energy = g.scale(g.sum_all(sq), 0.5 / bsz);
                // wr-check: allow(R1) — Some because config.layers >= 1
                // is asserted at entry, so the layer loop ran.
                let logdet = g.scale(logdet_sum.expect("≥1 layer"), 1.0 / bsz);
                let loss = g.sub(energy, logdet);
                epoch_nll += g.value(loss).item() as f64;
                batches += 1;

                g.backward(loss);
                step_no += 1;
                let bias1 = 1.0 - b1.powi(step_no as i32);
                let bias2 = 1.0 - b2.powi(step_no as i32);
                for (p, var) in sess.bindings() {
                    let Some(grad) = g.grad(*var) else { continue };
                    let idx = all_params
                        .iter()
                        .position(|q| q.id() == p.id())
                        // wr-check: allow(R1) — every bound param came from
                        // `layers`, the same source as `all_params`.
                        .expect("bound param not in registry");
                    let mt = &mut m[idx];
                    mt.scale_(b1);
                    mt.axpy_(1.0 - b1, &grad);
                    let vt = &mut v[idx];
                    vt.scale_(b2);
                    let g2 = grad.mul(&grad);
                    vt.axpy_(1.0 - b2, &g2);
                    let update: Vec<f32> = mt
                        .data()
                        .iter()
                        .zip(vt.data())
                        .map(|(&mi, &vi)| {
                            let mhat = mi / bias1;
                            let vhat = vi / bias2;
                            -config.lr * mhat / (vhat.sqrt() + eps)
                        })
                        .collect();
                    let delta = Tensor::from_vec(update, &grad.dims().to_vec());
                    p.update(|t| t.add_assign_(&delta));
                }
            }
            final_nll = (epoch_nll / batches as f64) as f32;
        }

        FlowWhitening {
            standardizer,
            layers,
            dim: d,
            final_nll,
        }
    }

    /// Transform rows of `x` into flow latents.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        let xs = self.standardizer.apply(x);
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let mut h = g.constant(xs);
        for layer in &self.layers {
            let (y, _) = layer.forward(&mut sess, h, self.dim);
            h = y;
        }
        g.value(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whiteness_error;

    fn skewed_data(n: usize, d: usize, seed: u64) -> Tensor {
        // Correlated + non-Gaussian (squared components mixed in).
        let mut rng = Rng64::seed_from(seed);
        let mut x = Tensor::randn(&[n, d], &mut rng);
        for r in 0..n {
            let base = x.at2(r, 0);
            for (j, v) in x.row_mut(r).iter_mut().enumerate() {
                if j > 0 {
                    *v = 0.5 * *v + 0.8 * base + 0.3 * base * base;
                }
            }
        }
        x
    }

    #[test]
    fn training_reduces_nll() {
        let x = skewed_data(512, 8, 1);
        let short = FlowWhitening::fit(
            &x,
            FlowConfig {
                epochs: 1,
                ..FlowConfig::default()
            },
            7,
        );
        let long = FlowWhitening::fit(
            &x,
            FlowConfig {
                epochs: 10,
                ..FlowConfig::default()
            },
            7,
        );
        assert!(
            long.final_nll < short.final_nll,
            "NLL did not improve: {} -> {}",
            short.final_nll,
            long.final_nll
        );
    }

    #[test]
    fn flow_improves_whiteness() {
        let x = skewed_data(512, 8, 2);
        let before = whiteness_error(&x);
        let flow = FlowWhitening::fit(&x, FlowConfig::default(), 3);
        let z = flow.apply(&x);
        let after = whiteness_error(&z);
        assert_eq!(z.dims(), &[512, 8]);
        assert_eq!(z.non_finite_count(), 0);
        assert!(after < before, "whiteness {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "even dimension")]
    fn odd_dimension_rejected() {
        let x = Tensor::zeros(&[10, 7]);
        FlowWhitening::fit(&x, FlowConfig::default(), 1);
    }
}
