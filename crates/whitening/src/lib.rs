//! Whitening transformations for pre-trained item text embeddings.
//!
//! Implements §IV of the paper plus the ablations of Table VI:
//!
//! * [`WhiteningMethod::Zca`] — `Φ = D Λ^{-1/2} Dᵀ` (Eq. 4), the default.
//! * [`WhiteningMethod::Pca`] — `Φ = Λ^{-1/2} Dᵀ` (rotates into the
//!   eigenbasis; suffers stochastic axis swapping, Table VI).
//! * [`WhiteningMethod::Cholesky`] — `Φ = L⁻¹` from `Σ = L Lᵀ`.
//! * [`WhiteningMethod::BatchNorm`] — per-dimension standardization only
//!   (no decorrelation).
//! * [`group_whiten`] — relaxed whitening with `G` dimension groups (Eq. 5).
//! * [`FlowWhitening`] — a small normalizing flow trained by maximum
//!   likelihood (our stand-in for BERT-flow).
//!
//! Convention: embedding matrices are **row-sample**: `[n_items, d]`. The
//! paper writes the transposed layout `X ∈ R^{d_t×|I|}`; all formulas here
//! are the row-layout equivalents, and the whitened output satisfies
//! `cov(Z) ≈ I_d`.

mod ensemble;
mod flow;
mod group;
mod incremental;
mod metrics;
mod observed;
mod transform;

pub use ensemble::EnsembleMode;
pub use flow::FlowWhitening;
pub use group::{group_whiten, GroupWhitening};
pub use incremental::IncrementalWhitening;
pub use observed::{observed_group_whiten, record_embedding_health};
pub use metrics::{
    average_pairwise_cosine, pairwise_cosine_cdf, pairwise_cosines, whiteness_error,
};
pub use transform::{WhiteningMethod, WhiteningTransform};

/// Default covariance regularizer `ε` (added to the diagonal before
/// factorization, as in the paper's Σ definition).
pub const DEFAULT_EPS: f32 = 1e-5;
