//! Fitted linear whitening transforms.

use wr_linalg::{cholesky, covariance_of_rows, solve_lower_triangular, sym_eig};
use wr_tensor::Tensor;

/// The non-parametric whitening operators compared in Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhiteningMethod {
    /// Zero-phase component analysis: `W = D Λ^{-1/2} Dᵀ`. Rotation back to
    /// the original axes keeps whitened features closest to the input.
    Zca,
    /// Principal component analysis: `W = D Λ^{-1/2}` (row layout), i.e.
    /// project onto eigenvectors then rescale. Axes are permuted to
    /// eigen-order.
    Pca,
    /// Cholesky whitening: `W = L⁻ᵀ` from `Σ = L Lᵀ`.
    Cholesky,
    /// BatchNorm-style: per-dimension `1/σ` scaling, no decorrelation.
    BatchNorm,
}

impl WhiteningMethod {
    pub const ALL: [WhiteningMethod; 4] = [
        WhiteningMethod::Zca,
        WhiteningMethod::Pca,
        WhiteningMethod::Cholesky,
        WhiteningMethod::BatchNorm,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            WhiteningMethod::Zca => "ZCA",
            WhiteningMethod::Pca => "PCA",
            WhiteningMethod::Cholesky => "CD",
            WhiteningMethod::BatchNorm => "BN",
        }
    }
}

/// A fitted affine whitening: `z = (x − μ) W` for row vectors `x`.
///
/// Pre-computed once from the full item-embedding matrix (the paper's
/// "pre-processing step"; §IV-E notes this costs nothing at training time).
#[derive(Debug, Clone)]
pub struct WhiteningTransform {
    /// Feature mean, length `d`.
    pub mean: Tensor,
    /// `[d, d]` whitening matrix applied on the right of centered rows.
    pub w: Tensor,
    pub method: WhiteningMethod,
}

impl WhiteningTransform {
    /// Fit on `x: [n, d]` (rows are items). `eps` regularizes Σ's diagonal.
    ///
    /// Panics when the eigen/Cholesky decomposition fails, which for a
    /// covariance matrix with `eps > 0` indicates non-finite inputs.
    pub fn fit(x: &Tensor, method: WhiteningMethod, eps: f32) -> Self {
        assert!(x.rank() == 2, "fit expects [n, d]");
        assert!(x.rows() >= 2, "need at least two samples to whiten");
        let d = x.cols();
        let mean = x.mean_rows();
        let cov = covariance_of_rows(x, eps);

        let w = match method {
            WhiteningMethod::Zca => {
                // wr-check: allow(R1) — covariance_of_rows is symmetric by
                // construction; Jacobi on symmetric matrices converges.
                let eig = sym_eig(&cov).expect("covariance eigendecomposition failed");
                eig.rebuild_with(|l| 1.0 / l.max(eps).sqrt())
            }
            WhiteningMethod::Pca => {
                // wr-check: allow(R1) — same symmetry argument as ZCA above.
                let eig = sym_eig(&cov).expect("covariance eigendecomposition failed");
                // Row layout: z = c D Λ^{-1/2}; scale eigenvector columns.
                let mut w = eig.vectors.clone();
                for j in 0..d {
                    let s = 1.0 / eig.values[j].max(eps).sqrt();
                    for i in 0..d {
                        *w.at2_mut(i, j) *= s;
                    }
                }
                w
            }
            WhiteningMethod::Cholesky => {
                // wr-check: allow(R1) — cov carries the +eps ridge from
                // covariance_of_rows, making it positive definite.
                let l = cholesky(&cov).expect("covariance Cholesky failed");
                // zᵀ = L⁻¹ cᵀ  ⇒  z = c L⁻ᵀ; compute L⁻¹ once.
                let linv = solve_lower_triangular(&l, &Tensor::eye(d));
                linv.transpose()
            }
            WhiteningMethod::BatchNorm => {
                let var = x.var_rows();
                let mut w = Tensor::zeros(&[d, d]);
                for i in 0..d {
                    *w.at2_mut(i, i) = 1.0 / (var.data()[i] + eps).sqrt();
                }
                w
            }
        };

        WhiteningTransform { mean, w, method }
    }

    /// Apply to rows of `x: [m, d]`.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.mean.numel(), "dimension mismatch in apply");
        x.sub_row_broadcast(&self.mean).matmul(&self.w)
    }

    /// Dimensionality this transform was fitted for.
    pub fn dim(&self) -> usize {
        self.mean.numel()
    }

    /// The inverse ("coloring") transform: maps whitened rows back to the
    /// original distribution, `x = z·W⁻¹ + μ` (the WC-transform direction
    /// of Siarohin et al., cited by the paper as \[36\]).
    ///
    /// Computed via the pseudoinverse so it also behaves for
    /// ε-regularized, nearly singular fits.
    pub fn coloring_matrix(&self) -> Tensor {
        // wr-check: allow(R1) — pinv only fails on shape errors; w is
        // square d x d by construction of every fit path.
        wr_linalg::pinv(&self.w).expect("whitening matrix pseudoinverse")
    }

    /// Apply the inverse transform to whitened rows.
    pub fn uncolor(&self, z: &Tensor) -> Tensor {
        assert_eq!(z.cols(), self.dim(), "dimension mismatch in uncolor");
        z.matmul(&self.coloring_matrix()).add_row_broadcast(&self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_linalg::covariance_of_rows;
    use wr_tensor::Rng64;

    /// Anisotropic sample matrix: strong shared direction + small noise.
    fn anisotropic(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let shared = Tensor::randn(&[1, d], &mut rng).scale(4.0);
        let mut x = Tensor::zeros(&[n, d]);
        for r in 0..n {
            let a = 1.0 + 0.3 * rng.normal();
            for (j, v) in x.row_mut(r).iter_mut().enumerate() {
                *v = a * shared.data()[j] + 0.3 * rng.normal();
            }
        }
        x
    }

    fn cov_error_from_identity(z: &Tensor) -> f32 {
        let d = z.cols();
        let cov = covariance_of_rows(z, 0.0);
        cov.sub(&Tensor::eye(d)).frob_norm() / (d as f32).sqrt()
    }

    #[test]
    fn zca_whitens_to_identity_covariance() {
        let x = anisotropic(800, 12, 1);
        let t = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6);
        let z = t.apply(&x);
        assert!(cov_error_from_identity(&z) < 0.05);
        // mean ≈ 0
        assert!(z.mean_rows().frob_norm() < 1e-3);
    }

    #[test]
    fn pca_whitens_to_identity_covariance() {
        let x = anisotropic(800, 12, 2);
        let t = WhiteningTransform::fit(&x, WhiteningMethod::Pca, 1e-6);
        let z = t.apply(&x);
        assert!(cov_error_from_identity(&z) < 0.05);
    }

    #[test]
    fn cholesky_whitens_to_identity_covariance() {
        let x = anisotropic(800, 12, 3);
        let t = WhiteningTransform::fit(&x, WhiteningMethod::Cholesky, 1e-6);
        let z = t.apply(&x);
        assert!(cov_error_from_identity(&z) < 0.05);
    }

    #[test]
    fn batchnorm_standardizes_but_keeps_correlation() {
        let x = anisotropic(800, 6, 4);
        let t = WhiteningTransform::fit(&x, WhiteningMethod::BatchNorm, 1e-6);
        let z = t.apply(&x);
        // diagonal ≈ 1 …
        let cov = covariance_of_rows(&z, 0.0);
        for i in 0..6 {
            assert!((cov.at2(i, i) - 1.0).abs() < 0.05, "var {} = {}", i, cov.at2(i, i));
        }
        // … but off-diagonals stay large (no decorrelation).
        let mut max_off = 0.0f32;
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    max_off = max_off.max(cov.at2(i, j).abs());
                }
            }
        }
        assert!(max_off > 0.5, "BN unexpectedly decorrelated (max off-diag {max_off})");
    }

    #[test]
    fn zca_is_closest_to_input_among_rotations() {
        // ZCA's defining property: among whitening transforms, it minimizes
        // distortion from the original data. Check vs PCA on the same input.
        let x = anisotropic(600, 8, 5);
        let zca = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6).apply(&x);
        let pca = WhiteningTransform::fit(&x, WhiteningMethod::Pca, 1e-6).apply(&x);
        let centered = x.sub_row_broadcast(&x.mean_rows());
        let d_zca = zca.sub(&centered).frob_norm();
        let d_pca = pca.sub(&centered).frob_norm();
        assert!(d_zca <= d_pca + 1e-3, "ZCA {d_zca} should distort less than PCA {d_pca}");
    }

    #[test]
    fn apply_is_affine() {
        // apply(αx + c) relationships: check apply on mean gives ~0 vector.
        let x = anisotropic(300, 5, 6);
        let t = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6);
        let mu = t.mean.reshape(&[1, 5]);
        let z = t.apply(&mu);
        assert!(z.frob_norm() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn fit_requires_samples() {
        let x = Tensor::zeros(&[1, 4]);
        WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-5);
    }

    #[test]
    fn coloring_inverts_whitening() {
        let x = anisotropic(400, 10, 8);
        for method in [WhiteningMethod::Zca, WhiteningMethod::Cholesky] {
            let t = WhiteningTransform::fit(&x, method, 1e-6);
            let z = t.apply(&x);
            let back = t.uncolor(&z);
            let rel = back.sub(&x).frob_norm() / x.frob_norm();
            assert!(rel < 1e-2, "{:?}: roundtrip error {rel}", method);
        }
    }

    #[test]
    fn methods_have_names() {
        for m in WhiteningMethod::ALL {
            assert!(!m.name().is_empty());
        }
    }
}
