//! Observability wrappers: whitening with spans and embedding-health
//! telemetry.
//!
//! The paper's Recall-vs-isotropy story is *diagnostic*: whitening should
//! drive mean pairwise cosine from ≈0.85 toward 0 and the covariance
//! condition number toward 1. These wrappers make that observable per run
//! — [`observed_group_whiten`] times fit/apply with tracer spans and
//! records a [`wr_obs::EmbeddingHealth`] gauge set for the matrix before
//! (`<prefix>.pre.*`) and after (`<prefix>.post.*`) the transform.
//! Telemetry is write-only: the returned tensor is exactly what
//! [`group_whiten`] produces.

use wr_obs::{EmbeddingHealth, HealthConfig, Telemetry};
use wr_tensor::Tensor;

use crate::{GroupWhitening, WhiteningMethod};

/// Compute [`EmbeddingHealth`] for `x` (row-sample `[n, d]`) and record it
/// under `prefix` in `telemetry.registry`. Returns the health struct so
/// drivers can also print it. Degenerate inputs (fewer than 2 rows) are
/// reported as an `Err` without recording anything.
pub fn record_embedding_health(
    telemetry: &Telemetry,
    prefix: &str,
    x: &Tensor,
) -> Result<EmbeddingHealth, String> {
    let dims = x.dims();
    if dims.len() != 2 {
        return Err(format!("embedding health wants a 2-D matrix, got {dims:?}"));
    }
    let _span = telemetry.tracer.span(format!("{prefix}.health"), "whiten");
    let health = EmbeddingHealth::compute(x.data(), dims[0], dims[1], &HealthConfig::default())?;
    health.record(&telemetry.registry, prefix);
    Ok(health)
}

/// [`crate::group_whiten`] with telemetry: `whiten.fit` / `whiten.apply`
/// spans on the tracer, and pre/post [`EmbeddingHealth`] gauges under
/// `<prefix>.pre` / `<prefix>.post`.
///
/// Health recording failures (degenerate shapes) are swallowed — the
/// transform must behave identically with and without telemetry.
pub fn observed_group_whiten(
    x: &Tensor,
    groups: usize,
    method: WhiteningMethod,
    eps: f32,
    telemetry: &Telemetry,
    prefix: &str,
) -> Tensor {
    let _ = record_embedding_health(telemetry, &format!("{prefix}.pre"), x);
    let gw = {
        let _span = telemetry.tracer.span("whiten.fit", "whiten");
        GroupWhitening::fit(x, groups, method, eps)
    };
    let z = {
        let _span = telemetry.tracer.span("whiten.apply", "whiten");
        gw.apply(x)
    };
    let _ = record_embedding_health(telemetry, &format!("{prefix}.post"), &z);
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_EPS;
    use wr_tensor::Rng64;

    /// Anisotropic fixture: random rows pushed toward a common direction,
    /// mimicking the pre-trained text-embedding cone the paper measures.
    fn anisotropic(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let mut x = Tensor::randn(&[n, d], &mut rng);
        for r in 0..n {
            let row = x.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                // Shared offset direction + per-dim scale spread.
                *v = *v * (1.0 + c as f32 * 0.3) + 3.0;
            }
        }
        x
    }

    #[test]
    fn whitening_lowers_cosine_and_condition_number() {
        let x = anisotropic(200, 8, 41);
        let tel = Telemetry::new();
        let z = observed_group_whiten(&x, 1, WhiteningMethod::Zca, DEFAULT_EPS, &tel, "whiten");
        assert_eq!(z.dims(), x.dims());

        let snap = tel.registry.snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        let pre_cos = gauge("whiten.pre.mean_pairwise_cosine");
        let post_cos = gauge("whiten.post.mean_pairwise_cosine");
        let pre_cond = gauge("whiten.pre.condition_number");
        let post_cond = gauge("whiten.post.condition_number");
        // The paper's direction: whitening reduces anisotropy and
        // ill-conditioning.
        assert!(
            post_cos < pre_cos,
            "cosine should drop: pre {pre_cos} post {post_cos}"
        );
        assert!(
            pre_cos > 0.5,
            "fixture should be anisotropic, got cosine {pre_cos}"
        );
        assert!(
            post_cos.abs() < 0.2,
            "whitened cosine should be near zero, got {post_cos}"
        );
        assert!(
            post_cond < pre_cond,
            "condition number should drop: pre {pre_cond} post {post_cond}"
        );
        assert!(
            post_cond < 2.0,
            "whitened covariance should be near-identity, got {post_cond}"
        );

        // Spans: pre-health, fit, apply, post-health.
        let names: Vec<String> = tel.tracer.events().iter().map(|e| e.name.clone()).collect();
        for want in ["whiten.pre.health", "whiten.fit", "whiten.apply", "whiten.post.health"] {
            assert!(names.iter().any(|n| n == want), "missing span {want}: {names:?}");
        }
    }

    #[test]
    fn observed_output_is_bit_identical_to_unobserved() {
        let x = anisotropic(64, 6, 9);
        let tel = Telemetry::new();
        let observed =
            observed_group_whiten(&x, 2, WhiteningMethod::Zca, DEFAULT_EPS, &tel, "whiten");
        let plain = crate::group_whiten(&x, 2, WhiteningMethod::Zca, DEFAULT_EPS);
        assert_eq!(observed.data(), plain.data());
    }

    #[test]
    fn health_cross_checks_the_eval_crate_semantics() {
        // wr-obs carries its own eigensolver (it sits below wr-linalg);
        // make sure its condition number agrees with the tensor-stack one.
        let x = anisotropic(128, 6, 77);
        let tel = Telemetry::new();
        let h = record_embedding_health(&tel, "x", &x).unwrap();
        let reference = wr_eval::item_condition_number(&x).unwrap() as f64;
        let ratio = h.condition_number / reference;
        assert!(
            ratio > 0.9 && ratio < 1.1,
            "obs condition number {} vs wr-eval {} (ratio {ratio})",
            h.condition_number,
            reference
        );
    }
}
