//! Embedding-geometry statistics used throughout the paper's analysis.

use wr_tensor::{Rng64, Tensor};

/// `‖cov(Z) − I‖_F / √d` — 0 for perfectly whitened rows.
pub fn whiteness_error(z: &Tensor) -> f32 {
    let d = z.cols();
    let cov = wr_linalg::covariance_of_rows(z, 0.0);
    cov.sub(&Tensor::eye(d)).frob_norm() / (d as f32).sqrt()
}

/// Cosine similarities of `samples` random distinct row pairs.
pub fn pairwise_cosines(x: &Tensor, samples: usize, seed: u64) -> Vec<f32> {
    assert!(x.rank() == 2 && x.rows() >= 2, "need at least two rows");
    let mut rng = Rng64::seed_from(seed);
    let n = x.rows();
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let i = rng.below(n);
        let mut j = rng.below(n);
        while j == i {
            j = rng.below(n);
        }
        out.push(cosine(x.row(i), x.row(j)));
    }
    out
}

/// Mean cosine similarity over sampled item pairs (the paper's ≈0.85
/// anisotropy statistic, §III-B).
pub fn average_pairwise_cosine(x: &Tensor, samples: usize, seed: u64) -> f32 {
    let cs = pairwise_cosines(x, samples, seed);
    cs.iter().sum::<f32>() / cs.len() as f32
}

/// Empirical CDF of pairwise cosine similarities evaluated on a fixed grid
/// (Fig. 4). Returns `(grid, cdf)` with `cdf[k] = P(cos ≤ grid[k])`.
pub fn pairwise_cosine_cdf(
    x: &Tensor,
    samples: usize,
    grid_points: usize,
    seed: u64,
) -> (Vec<f32>, Vec<f32>) {
    let mut cs = pairwise_cosines(x, samples, seed);
    cs.sort_by(|a, b| a.total_cmp(b));
    let grid: Vec<f32> = (0..grid_points)
        .map(|k| -1.0 + 2.0 * k as f32 / (grid_points - 1) as f32)
        .collect();
    let cdf = grid
        .iter()
        .map(|&g| {
            let count = cs.partition_point(|&c| c <= g);
            count as f32 / cs.len() as f32
        })
        .collect();
    (grid, cdf)
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot = wr_tensor::dot(a, b);
    let na = wr_tensor::dot(a, a).sqrt();
    let nb = wr_tensor::dot(b, b).sqrt();
    // wr-check: allow(R5) — exact zero-norm guard before the division;
    // a tolerance here would silently zero out tiny-but-real vectors.
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whiteness_of_gaussian_is_small() {
        let mut rng = Rng64::seed_from(1);
        let z = Tensor::randn(&[3000, 8], &mut rng);
        assert!(whiteness_error(&z) < 0.1);
    }

    #[test]
    fn whiteness_of_anisotropic_is_large() {
        let mut rng = Rng64::seed_from(2);
        let mut x = Tensor::randn(&[500, 8], &mut rng);
        for r in 0..500 {
            let base = x.at2(r, 0) * 10.0;
            for v in x.row_mut(r) {
                *v += base;
            }
        }
        assert!(whiteness_error(&x) > 1.0);
    }

    #[test]
    fn cosine_of_identical_rows_is_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0], &[3, 2]);
        let avg = average_pairwise_cosine(&x, 50, 3);
        assert!((avg - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_of_random_rows_near_zero() {
        let mut rng = Rng64::seed_from(4);
        let x = Tensor::randn(&[400, 64], &mut rng);
        let avg = average_pairwise_cosine(&x, 500, 5);
        assert!(avg.abs() < 0.1, "avg cosine {avg}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut rng = Rng64::seed_from(6);
        let x = Tensor::randn(&[200, 64], &mut rng);
        let (grid, cdf) = pairwise_cosine_cdf(&x, 1000, 41, 7);
        assert_eq!(grid.len(), 41);
        assert_eq!(cdf.len(), 41);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(cdf[0] >= 0.0 && cdf[40] <= 1.0 + 1e-6);
        // random vectors: nearly everything below cos=0.5
        let idx = grid.iter().position(|&g| g >= 0.5).unwrap();
        assert!(cdf[idx] > 0.99);
    }

    #[test]
    fn zero_rows_yield_zero_cosine() {
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(average_pairwise_cosine(&x, 10, 1), 0.0);
    }
}
