//! Ensemble strategies for combining whitened views (Table VII).

/// How WhitenRec+ merges the projected fully-whitened and relaxed-whitened
/// item representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleMode {
    /// Element-wise summation (Eq. 6; the default and overall best).
    Sum,
    /// Concatenate the two projections, then a linear map back to `d`.
    Concat,
    /// Learned scalar attention over the two views.
    Attn,
}

impl EnsembleMode {
    pub const ALL: [EnsembleMode; 3] = [EnsembleMode::Sum, EnsembleMode::Concat, EnsembleMode::Attn];

    pub fn name(&self) -> &'static str {
        match self {
            EnsembleMode::Sum => "Sum",
            EnsembleMode::Concat => "Concat",
            EnsembleMode::Attn => "Attn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(EnsembleMode::Sum.name(), "Sum");
        assert_eq!(EnsembleMode::ALL.len(), 3);
    }
}
