//! Minimal JSON writing helpers for telemetry exports.
//!
//! `wr-obs` sits below `wr-runtime` (the pool is instrumented with it), and
//! `wr-tensor` depends on `wr-runtime`, so this crate cannot use
//! `wr_tensor::json` without closing a dependency cycle. These helpers
//! write the same dialect — shortest round-trip floats, `null` for
//! non-finite values — and every export is parse-validated against
//! `wr_tensor::Json::parse` by the workspace-root integration tests.

/// Append `v` as a JSON number: shortest representation that round-trips
/// (Rust's `{:?}` for floats), integers without a trailing `.0`, and
/// `null` for NaN/±inf (JSON has no encoding for them).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // wr-check: allow(R5) — exact integrality test chooses the integer
    // formatting; both branches print the same value.
    if v.trunc() == v && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v:?}"));
    }
}

/// Append `s` as a quoted JSON string with the mandatory escapes.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> String {
        let mut s = String::new();
        write_f64(&mut s, v);
        s
    }

    #[test]
    fn numbers_round_trip_compactly() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(3.0), "3");
        assert_eq!(f(-17.0), "-17");
        assert_eq!(f(0.1), "0.1");
        assert_eq!(f(1.5e-9), "1.5e-9");
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
