//! Hierarchical span timing with Chrome `trace_event` and JSONL export.
//!
//! A [`Tracer`] records [`TraceEvent`]s — named, categorized intervals
//! measured with the tracer's [`Clock`]. Spans are RAII guards
//! ([`Tracer::span`]): the interval starts at construction and is recorded
//! on drop, so nesting follows lexical scope. Hierarchy is not stored
//! explicitly; Chrome's trace viewer reconstructs it from interval
//! containment per thread (`ph: "X"` complete events on the same `tid`
//! stack visually), which is exactly the paper-trail we want: open the
//! exported file in Perfetto (<https://ui.perfetto.dev>) or
//! `about:tracing` and the epoch → step → pool-job structure is visible
//! without any schema work.
//!
//! Thread attribution: each OS thread is assigned a small stable `tid` in
//! first-seen order (the debug representation of [`std::thread::ThreadId`]
//! keys the map — identity only, never parsed). Under `WR_THREADS=1`
//! every event lands on `tid` 0, making single-threaded traces fully
//! deterministic under a [`crate::MockClock`] — the golden-fixture tests
//! rely on that.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::jsonw::{write_f64, write_str};
use crate::trace::TraceContext;

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    /// Category shown as the event's `cat` in trace viewers (e.g. "train",
    /// "serve", "whiten").
    pub cat: &'static str,
    /// Start, nanoseconds on the tracer's clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero-duration spans are legal and kept).
    pub dur_ns: u64,
    /// Stable per-thread id, first-seen order.
    pub tid: u64,
    /// Owning request-batch trace id ([`TraceContext`]); 0 = untraced.
    pub trace_id: u64,
    /// Span id within the trace; 0 = untraced.
    pub span_id: u64,
}

#[derive(Debug, Default)]
struct TracerInner {
    events: Vec<TraceEvent>,
    tids: BTreeMap<String, u64>,
}

/// Collects spans into an in-memory event buffer (bounded by `capacity`;
/// overflow increments a drop counter instead of growing without limit).
pub struct Tracer {
    clock: Arc<dyn Clock>,
    capacity: usize,
    inner: Mutex<TracerInner>,
    dropped: AtomicU64,
}

/// Default event-buffer capacity (events beyond this are counted, not kept).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// RAII span guard: measures from construction to drop on the owning
/// tracer's clock and records the completed interval.
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: Option<String>,
    cat: &'static str,
    start_ns: u64,
    ctx: Option<TraceContext>,
}

impl Tracer {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_capacity(clock, DEFAULT_TRACE_CAPACITY)
    }

    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Tracer {
            clock,
            capacity,
            inner: Mutex::new(TracerInner::default()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Open a span; the interval ends (and is recorded) when the returned
    /// guard drops.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name: Some(name.into()),
            cat,
            start_ns: self.clock.now_ns(),
            ctx: None,
        }
    }

    /// [`Self::span`] tagged with a request-scoped [`TraceContext`]: the
    /// recorded event carries the context's trace/span ids, so exports
    /// can be joined against histogram exemplars and flight events.
    pub fn span_ctx(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ctx: TraceContext,
    ) -> Span<'_> {
        Span {
            tracer: self,
            name: Some(name.into()),
            cat,
            start_ns: self.clock.now_ns(),
            ctx: Some(ctx),
        }
    }

    /// Record a completed interval directly (used by the span guard, and
    /// by call sites that already hold start/end timestamps).
    pub fn record(&self, name: impl Into<String>, cat: &'static str, start_ns: u64, end_ns: u64) {
        self.push(name.into(), cat, start_ns, end_ns, 0, 0);
    }

    /// [`Self::record`] tagged with a [`TraceContext`].
    pub fn record_ctx(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        ctx: TraceContext,
    ) {
        self.push(name.into(), cat, start_ns, end_ns, ctx.trace_id, ctx.span_id);
    }

    fn push(
        &self,
        name: String,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        trace_id: u64,
        span_id: u64,
    ) {
        let tid_key = format!("{:?}", std::thread::current().id());
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let next_tid = inner.tids.len() as u64;
        let tid = *inner.tids.entry(tid_key).or_insert(next_tid);
        inner.events.push(TraceEvent {
            name,
            cat,
            ts_ns: start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            tid,
            trace_id,
            span_id,
        });
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .events
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .events
            .clone()
    }

    /// Chrome `trace_event` JSON (the object form):
    /// `{"traceEvents":[{name,cat,ph:"X",ts,dur,pid,tid}],"displayTimeUnit":"ms"}`
    /// with `ts`/`dur` in microseconds as the format requires. Load it in
    /// `about:tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_str(&mut out, &e.name);
            out.push_str(",\"cat\":");
            write_str(&mut out, if e.cat.is_empty() { "default" } else { e.cat });
            out.push_str(",\"ph\":\"X\",\"ts\":");
            write_f64(&mut out, e.ts_ns as f64 / 1e3);
            out.push_str(",\"dur\":");
            write_f64(&mut out, e.dur_ns as f64 / 1e3);
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            if e.trace_id != 0 {
                // Chrome's viewer shows per-event args; the ids are hex
                // strings so they survive JSON's f64 number range.
                out.push_str(",\"args\":{\"trace_id\":");
                write_str(&mut out, &format!("{:016x}", e.trace_id));
                out.push_str(",\"span_id\":");
                write_str(&mut out, &format!("{:016x}", e.span_id));
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"");
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(",\"wrObsDroppedEvents\":");
            out.push_str(&dropped.to_string());
        }
        out.push('}');
        out
    }

    /// One JSON object per line (`\n`-terminated), for log shippers:
    /// `{"name":…,"cat":…,"ts_us":…,"dur_us":…,"tid":…}` plus hex
    /// `trace_id`/`span_id` on traced events.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            write_event_json(&mut out, &e, "ts_us", "dur_us");
            out.push('\n');
        }
        out
    }

    /// The last `limit` recorded events as one `wr-trace-recent/v1` JSON
    /// document — the `/traces/recent` payload of [`crate::serve_http`].
    pub fn recent_json(&self, limit: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(limit);
        let mut out = String::from("{\"format\":\"wr-trace-recent/v1\",\"events\":[");
        for (i, e) in events.iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_event_json(&mut out, e, "ts_us", "dur_us");
        }
        out.push_str("]}");
        out
    }
}

/// Shared JSONL/recent event shape (µs timestamps, hex trace ids).
fn write_event_json(out: &mut String, e: &TraceEvent, ts_key: &str, dur_key: &str) {
    out.push_str("{\"name\":");
    write_str(out, &e.name);
    out.push_str(",\"cat\":");
    write_str(out, if e.cat.is_empty() { "default" } else { e.cat });
    out.push_str(",\"");
    out.push_str(ts_key);
    out.push_str("\":");
    write_f64(out, e.ts_ns as f64 / 1e3);
    out.push_str(",\"");
    out.push_str(dur_key);
    out.push_str("\":");
    write_f64(out, e.dur_ns as f64 / 1e3);
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    if e.trace_id != 0 {
        out.push_str(",\"trace_id\":");
        write_str(out, &format!("{:016x}", e.trace_id));
        out.push_str(",\"span_id\":");
        write_str(out, &format!("{:016x}", e.span_id));
    }
    out.push('}');
}

impl Span<'_> {
    /// End the span now instead of at scope exit.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(name) = self.name.take() {
            let end = self.tracer.clock.now_ns();
            match self.ctx {
                Some(ctx) => self.tracer.record_ctx(name, self.cat, self.start_ns, end, ctx),
                None => self.tracer.record(name, self.cat, self.start_ns, end),
            }
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn mock_tracer(tick: u64) -> (Arc<MockClock>, Tracer) {
        let clock = Arc::new(MockClock::with_tick(tick));
        let tracer = Tracer::new(clock.clone() as Arc<dyn Clock>);
        (clock, tracer)
    }

    #[test]
    fn span_records_on_drop_with_mock_durations() {
        let (clock, tracer) = mock_tracer(0);
        {
            let _s = tracer.span("work", "test");
            clock.advance(1500);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[0].dur_ns, 1500);
        assert_eq!(events[0].tid, 0);
    }

    #[test]
    fn nested_spans_record_inner_first_with_contained_intervals() {
        let (clock, tracer) = mock_tracer(0);
        {
            let _outer = tracer.span("outer", "test");
            clock.advance(10);
            {
                let _inner = tracer.span("inner", "test");
                clock.advance(5);
            }
            clock.advance(10);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        // Drop order: inner completes before outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        let (inner, outer) = (&events[0], &events[1]);
        assert_eq!(inner.ts_ns, 10);
        assert_eq!(inner.dur_ns, 5);
        assert_eq!(outer.ts_ns, 0);
        assert_eq!(outer.dur_ns, 25);
        // Containment — what the trace viewer uses to nest them.
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn zero_duration_span_is_kept() {
        let (_clock, tracer) = mock_tracer(0);
        tracer.span("instant", "test").end();
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns, 0);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let clock = Arc::new(MockClock::new());
        let tracer = Tracer::with_capacity(clock as Arc<dyn Clock>, 2);
        for i in 0..5 {
            tracer.span(format!("s{i}"), "test").end();
        }
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.dropped(), 3);
        assert!(tracer.to_chrome_json().contains("\"wrObsDroppedEvents\":3"));
    }

    #[test]
    fn chrome_export_uses_microseconds() {
        let (clock, tracer) = mock_tracer(0);
        {
            let _s = tracer.span("q", "serve");
            clock.advance(2500); // 2.5 us
        }
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":2.5"), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
    }

    #[test]
    fn jsonl_is_one_event_per_line() {
        let (_clock, tracer) = mock_tracer(100);
        tracer.span("a", "t").end();
        tracer.span("b", "t").end();
        let jsonl = tracer.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"name\":\"b\""));
    }

    #[test]
    fn ctx_spans_carry_trace_ids_into_every_export() {
        use crate::trace::TraceContext;
        let (clock, tracer) = mock_tracer(0);
        let ctx = TraceContext::root(5, 0);
        {
            let _s = tracer.span_ctx("batch", "serve", ctx);
            clock.advance(1000);
        }
        tracer.span("plain", "serve").end();
        let events = tracer.events();
        assert_eq!(events[0].trace_id, ctx.trace_id);
        assert_eq!(events[0].span_id, ctx.span_id);
        assert_eq!(events[1].trace_id, 0, "plain spans stay untraced");
        let hex = format!("{:016x}", ctx.trace_id);
        assert!(tracer.to_chrome_json().contains(&hex));
        assert!(tracer.to_jsonl().contains(&hex));
        assert!(tracer.recent_json(16).contains(&hex));
        // The untraced event exports without an args/trace_id block.
        assert_eq!(tracer.to_chrome_json().matches("trace_id").count(), 1);
    }

    #[test]
    fn recent_json_keeps_only_the_tail() {
        let (_clock, tracer) = mock_tracer(10);
        for i in 0..10 {
            tracer.span(format!("s{i}"), "t").end();
        }
        let doc = tracer.recent_json(3);
        assert!(doc.starts_with("{\"format\":\"wr-trace-recent/v1\""));
        assert!(!doc.contains("\"s6\"") && doc.contains("\"s7\""));
        assert!(doc.contains("\"s8\"") && doc.contains("\"s9\""));
    }

    #[test]
    fn record_accepts_explicit_intervals_and_saturates_backwards_time() {
        let (_clock, tracer) = mock_tracer(0);
        tracer.record("direct", "t", 100, 250);
        tracer.record("clamped", "t", 300, 200); // end < start → dur 0
        let events = tracer.events();
        assert_eq!(events[0].dur_ns, 150);
        assert_eq!(events[1].dur_ns, 0);
    }
}
