//! Deterministic request-scoped trace identity.
//!
//! A [`TraceContext`] names one request batch's journey through the
//! serving stack: the gateway mints a root context per micro-batch
//! (`Gateway::serve` / `ServeEngine::serve`), derives a child per shard
//! fan-out call, and hands the ids down to the spans, histogram
//! exemplars, and flight-recorder events the batch produces — so a p99
//! bucket, a retry, or a quarantine can be joined back to the exact
//! exported span tree that owns it.
//!
//! Ids are **pure functions of `(request id, batch index)`** — the same
//! SplitMix64 finalizer `wr_fault::FaultPlan` and `wr_tensor::Rng64` use
//! for seeding, with no RNG state and no wall clock. Two replays of the
//! same query log mint the same trace ids at any `WR_THREADS`, which is
//! what lets the differential suites run bit-identically with tracing
//! armed, and lets a replay harness predict the trace id of any batch
//! without plumbing state through the engine.
//!
//! `0` is reserved as the "untraced" sentinel (plain spans, empty
//! exemplar slots); derivation remaps a zero hash to 1, so a minted id is
//! never 0.

/// Trace identity carried through one request batch. `Copy`, two words —
/// cheap to pass by value through every serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identity of the whole request batch; shared by every span and
    /// event the batch produces. Never 0 for a minted context.
    pub trace_id: u64,
    /// Identity of the current operation within the trace. Never 0 for a
    /// minted context.
    pub span_id: u64,
}

// Distinct salts keep the trace-id and span-id hash streams independent
// (same idiom as wr-fault's per-hook salts).
const SALT_TRACE: u64 = 0x7A5C_E001;
const SALT_SPAN: u64 = 0x7A5C_E002;

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Reserve 0 as the untraced sentinel.
fn nonzero(v: u64) -> u64 {
    if v == 0 {
        1
    } else {
        v
    }
}

impl TraceContext {
    /// The "no trace" sentinel (both ids 0): spans stay plain, exemplar
    /// slots stay empty. Lets ctx-threaded call paths keep one signature
    /// whether or not the caller minted an identity.
    pub const UNTRACED: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this context carries a minted identity.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }

    /// Mint the root context for a micro-batch: derived from the id of
    /// the batch's first request and the batch's index within the call.
    /// Deterministic — a replay harness computes the same ids without
    /// threading state through the engine.
    pub fn root(request_id: u64, batch_index: u64) -> Self {
        let trace_id = nonzero(splitmix(
            request_id
                ^ batch_index.wrapping_mul(0x9E3779B97F4A7C15)
                ^ SALT_TRACE.wrapping_mul(0xD1B54A32D192ED03),
        ));
        TraceContext {
            trace_id,
            span_id: nonzero(splitmix(trace_id ^ SALT_SPAN)),
        }
    }

    /// Derive the child context for sub-operation `seq` (e.g. shard
    /// index in a fan-out): same trace, new span id.
    pub fn child(&self, seq: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: nonzero(splitmix(
                self.span_id ^ seq.wrapping_mul(0x9E3779B97F4A7C15) ^ SALT_SPAN,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_deterministic_and_distinct() {
        assert_eq!(TraceContext::root(7, 0), TraceContext::root(7, 0));
        assert_ne!(
            TraceContext::root(7, 0).trace_id,
            TraceContext::root(8, 0).trace_id
        );
        assert_ne!(
            TraceContext::root(7, 0).trace_id,
            TraceContext::root(7, 1).trace_id
        );
    }

    #[test]
    fn ids_are_never_zero() {
        for req in 0..200u64 {
            for batch in 0..4u64 {
                let ctx = TraceContext::root(req, batch);
                assert_ne!(ctx.trace_id, 0);
                assert_ne!(ctx.span_id, 0);
                for s in 0..8u64 {
                    let child = ctx.child(s);
                    assert_ne!(child.span_id, 0);
                }
            }
        }
    }

    #[test]
    fn children_share_the_trace_and_get_fresh_spans() {
        let root = TraceContext::root(42, 3);
        let a = root.child(0);
        let b = root.child(1);
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(b.trace_id, root.trace_id);
        assert_ne!(a.span_id, b.span_id);
        assert_ne!(a.span_id, root.span_id);
        // Re-deriving the same child gives the same id (replay stability).
        assert_eq!(root.child(0), a);
    }
}
