//! Always-on flight recorder: a bounded ring of recent structured events.
//!
//! Metrics aggregate and spans sample durations, but neither answers the
//! post-mortem question "what exactly happened around the failure?". The
//! [`FlightRecorder`] keeps the last [`DEFAULT_FLIGHT_CAPACITY`]
//! structured [`FlightEvent`]s — span ends, fault injections, retries,
//! quarantines, overload rejections, degradations — each carrying the
//! owning [`TraceContext`] ids, and snapshots the ring to a **sealed**
//! JSON artifact when a serving layer declares an incident
//! ([`FlightRecorder::trigger`]): a request degrades, a shard panics
//! permanently, or the gateway rejects on overload.
//!
//! Recording is write-only and panic-free: one short mutex push per
//! event, no clock reads (callers pass timestamps from their telemetry
//! clock), and dump I/O failures are counted, never raised — telemetry
//! must not take down the serving path it observes.
//!
//! **Determinism.** The dump body is a *sorted* projection of the ring
//! (stable total order over the event fields, sequence numbers assigned
//! after sorting), so two replays of the same seeded workload under a
//! [`crate::MockClock`] produce byte-identical dumps at any
//! `WR_THREADS` — the same contract the WRCK/WRIV artifacts obey. Dumps
//! are CRC-sealed via [`wr_fault::seal_lines`] and written with
//! [`wr_fault::write_atomic`]; [`read_dump`] rejects truncation and
//! bit-flips exactly like the checkpoint loaders.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::jsonw::write_str;
use crate::trace::TraceContext;

/// Default ring capacity. Sized so a degraded 2048-query replay keeps
/// every incident-relevant event (faults are injected at a few percent
/// per row) while bounding memory to tens of kilobytes.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Document format tag of a flight dump's header line.
pub const FLIGHT_FORMAT: &str = "wr-flight/v1";

/// One structured incident-context event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event taxonomy: `"span"`, `"fault"`, `"retry"`, `"panic"`,
    /// `"quarantine"`, `"overload"`, `"degraded"`.
    pub kind: &'static str,
    /// Emitting site (an injector site like `serve.row`, or a span name
    /// like `gateway.shard1`).
    pub site: String,
    /// Owning trace ids (0 = untraced).
    pub trace_id: u64,
    pub span_id: u64,
    /// Request id the event concerns (`u64::MAX` = not request-scoped).
    pub req: u64,
    /// Batch index the event concerns (`u64::MAX` = not batch-scoped).
    pub batch: u64,
    /// Timestamp on the caller's telemetry clock, nanoseconds.
    pub ts_ns: u64,
}

#[derive(Debug, Default)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    /// Events ever recorded (including those evicted from the ring).
    total: u64,
}

/// Bounded ring of recent [`FlightEvent`]s with sealed-dump snapshots.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
    dump_path: Mutex<Option<PathBuf>>,
    dumps: AtomicU64,
    dump_failures: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner::default()),
            dump_path: Mutex::new(None),
            dumps: AtomicU64::new(0),
            dump_failures: AtomicU64::new(0),
        }
    }

    /// Record one event (write-only hot-path API). Oldest events are
    /// evicted once the ring is full; `total()` keeps counting them.
    pub fn note(
        &self,
        kind: &'static str,
        site: &str,
        ctx: TraceContext,
        req: u64,
        batch: u64,
        ts_ns: u64,
    ) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(FlightEvent {
            kind,
            site: site.to_string(),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            req,
            batch,
            ts_ns,
        });
        inner.total += 1;
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .ring
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .total
    }

    /// Copy of the retained events in recording order (read API — the
    /// wr-check R9 rule confines calls to obs, benches, and tests).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Arm incident dumps: every [`Self::trigger`] snapshots the ring to
    /// `path` (sealed, atomic, last trigger wins).
    pub fn arm_dump(&self, path: impl Into<PathBuf>) {
        *self
            .dump_path
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(path.into());
    }

    /// Sealed dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Dump attempts that failed on I/O (counted, never raised).
    pub fn dump_failures(&self) -> u64 {
        self.dump_failures.load(Ordering::Relaxed)
    }

    /// Deterministic JSON-lines snapshot of the ring: a header line
    /// (`{"format":"wr-flight/v1",...}`) followed by one event object
    /// per line in a stable sorted order, sequence numbers assigned
    /// after sorting — byte-identical across thread counts for a
    /// deterministic workload on a mock clock.
    pub fn snapshot_json(&self, reason: &str) -> String {
        let mut events = self.events();
        let total = self.total();
        events.sort_by(|a, b| {
            (a.trace_id, a.span_id, a.kind, &a.site, a.req, a.batch, a.ts_ns).cmp(&(
                b.trace_id, b.span_id, b.kind, &b.site, b.req, b.batch, b.ts_ns,
            ))
        });
        let mut out = String::from("{\"format\":\"");
        out.push_str(FLIGHT_FORMAT);
        out.push_str("\",\"reason\":");
        write_str(&mut out, reason);
        out.push_str(",\"total\":");
        out.push_str(&total.to_string());
        out.push_str(",\"events\":");
        out.push_str(&events.len().to_string());
        out.push_str("}\n");
        for (seq, e) in events.iter().enumerate() {
            out.push_str("{\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"kind\":");
            write_str(&mut out, e.kind);
            out.push_str(",\"site\":");
            write_str(&mut out, &e.site);
            out.push_str(",\"trace_id\":");
            write_str(&mut out, &format!("{:016x}", e.trace_id));
            out.push_str(",\"span_id\":");
            write_str(&mut out, &format!("{:016x}", e.span_id));
            out.push_str(",\"req\":");
            out.push_str(&e.req.to_string());
            out.push_str(",\"batch\":");
            out.push_str(&e.batch.to_string());
            out.push_str(",\"ts_ns\":");
            out.push_str(&e.ts_ns.to_string());
            out.push_str("}\n");
        }
        out
    }

    /// Declare an incident: snapshot the ring to the armed dump path,
    /// CRC-sealed and atomically replaced. A no-op when unarmed; I/O
    /// failures are counted in [`Self::dump_failures`] and swallowed —
    /// the serving path that declared the incident must keep serving.
    pub fn trigger(&self, reason: &str) {
        let path = self
            .dump_path
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        let Some(path) = path else { return };
        let sealed = wr_fault::seal_lines(self.snapshot_json(reason));
        match wr_fault::write_atomic(&path, sealed.as_bytes()) {
            Ok(()) => {
                self.dumps.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dump_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Read a sealed flight dump back, verifying the CRC footer: truncation
/// or a flipped bit is an `InvalidData` error, exactly like the WRCK /
/// WRIV loaders. Returns the dump body (header + event lines).
pub fn read_dump(path: &Path) -> std::io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    // Dumps are always written sealed, so a missing footer *is*
    // truncation (verify_lines alone passes footer-less text through).
    if !text.contains(wr_fault::CRC_LINE_PREFIX) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "flight dump is missing its CRC footer (truncated?)",
        ));
    }
    let body = wr_fault::verify_lines(&text)?;
    if !body.starts_with("{\"format\":\"wr-flight/v1\"") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a wr-flight/v1 dump",
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(req: u64) -> TraceContext {
        TraceContext::root(req, 0)
    }

    #[test]
    fn ring_retains_the_newest_capacity_events() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.note("retry", "serve.row", ctx(i), i, 0, 0);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total(), 5);
        let reqs: Vec<u64> = fr.events().iter().map(|e| e.req).collect();
        assert_eq!(reqs, vec![2, 3, 4]);
    }

    #[test]
    fn snapshot_is_sorted_and_insertion_order_independent() {
        let a = FlightRecorder::new();
        let b = FlightRecorder::new();
        let events: [(u64, &'static str); 3] = [(3, "panic"), (1, "retry"), (2, "quarantine")];
        for &(req, kind) in &events {
            a.note(kind, "serve.row", ctx(req), req, 0, 0);
        }
        for &(req, kind) in events.iter().rev() {
            b.note(kind, "serve.row", ctx(req), req, 0, 0);
        }
        assert_eq!(a.snapshot_json("x"), b.snapshot_json("x"));
        assert!(a.snapshot_json("x").starts_with("{\"format\":\"wr-flight/v1\""));
    }

    #[test]
    fn trigger_writes_a_sealed_dump_that_read_dump_round_trips() {
        let dir = std::env::temp_dir().join(format!("wr-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let fr = FlightRecorder::new();
        fr.note("degraded", "gateway.shard1", ctx(9), 9, 2, 0);
        fr.trigger("degraded"); // unarmed yet? no — arm first
        fr.arm_dump(&path);
        fr.trigger("degraded");
        assert_eq!(fr.dumps(), 1);
        let body = read_dump(&path).unwrap();
        assert!(body.contains("\"reason\":\"degraded\""));
        assert!(body.contains("\"site\":\"gateway.shard1\""));
        assert!(body.contains("\"batch\":2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_dumps_are_rejected_like_wrck() {
        let dir = std::env::temp_dir().join(format!("wr-flight-tamper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let fr = FlightRecorder::new();
        fr.note("panic", "serve.row", ctx(4), 4, 1, 0);
        fr.arm_dump(&path);
        fr.trigger("panic");
        let sealed = std::fs::read_to_string(&path).unwrap();

        // Truncation that drops the CRC footer entirely.
        let truncated: String = sealed.lines().take(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, truncated).unwrap();
        let err = read_dump(&path).expect_err("footer-less dump must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Truncation inside the body (footer intact, CRC mismatch).
        let cut = sealed.replace("\"site\":\"serve.row\"", "\"site\":\"serve.ro\"");
        std::fs::write(&path, cut).unwrap();
        let err = read_dump(&path).expect_err("truncated body must be detected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A single flipped bit.
        let mut flipped = sealed.clone().into_bytes();
        flipped[10] ^= 1;
        std::fs::write(&path, &flipped).unwrap();
        let err = read_dump(&path).expect_err("bit flip must be detected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unarmed_trigger_is_a_counted_noop_and_failures_do_not_raise() {
        let fr = FlightRecorder::new();
        fr.note("overload", "gateway", ctx(1), u64::MAX, u64::MAX, 0);
        fr.trigger("overload"); // unarmed: nothing written, nothing raised
        assert_eq!(fr.dumps(), 0);
        // Arm an unwritable path: failure is counted, not raised.
        fr.arm_dump("/nonexistent-dir-zz/flight.json");
        fr.trigger("overload");
        assert_eq!(fr.dumps(), 0);
        assert_eq!(fr.dump_failures(), 1);
    }
}
