//! `wr-obs` — std-only observability for the WhitenRec reproduction.
//!
//! Six pieces, all global-free and pool-safe:
//!
//! * [`registry`] — a [`Registry`] of [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s with per-bucket trace-id **exemplars**;
//!   lock-sharded lookup, lock-free observation, deterministic
//!   name-sorted [`Snapshot`] with compact JSON export (`wr-obs/v1`).
//! * [`clock`] + [`span`] — the [`Clock`] trait ([`MonotonicClock`] in
//!   production, [`MockClock`] in tests) and a [`Tracer`] of RAII
//!   [`Span`]s exporting Chrome `trace_event` JSON (Perfetto /
//!   `about:tracing`) and JSONL.
//! * [`trace`] — [`TraceContext`]: deterministic request-scoped
//!   trace/span ids (SplitMix64 of request id + batch index — no RNG,
//!   no wall clock) propagated through the serving stack.
//! * [`flight`] — [`FlightRecorder`]: an always-on bounded ring of
//!   recent structured events, snapshotted to CRC-sealed JSON artifacts
//!   on degradation/permanent-panic/overload incidents.
//! * [`http`] — [`serve_http`]: a read-only live telemetry endpoint
//!   (`/metrics`, `/traces/recent`, `/flight`, `/health`) on a blocking
//!   `TcpListener` thread, plus the [`http_get`] scrape client.
//! * [`health`] — [`EmbeddingHealth`]: the paper's anisotropy
//!   diagnostics (mean pairwise cosine, top-k singular mass, condition
//!   number, uniformity/alignment) computed on raw `f32` matrices and
//!   recordable as gauges.
//!
//! **Layering.** This crate sits at the very bottom of the workspace —
//! its only dependency is `wr-fault` (itself dependency-free), for the
//! CRC-sealed atomic flight dumps — and `wr-runtime` (which everything
//! else builds on) depends on it to time pool jobs. That is why the
//! health module carries its own small f64 eigensolver instead of using
//! `wr-linalg`, and why JSON is written by local helpers instead of
//! `wr_tensor::json` (same dialect; parse-compatibility is asserted by
//! root integration tests).
//!
//! **Determinism contract.** Telemetry is strictly write-only with
//! respect to computation: nothing in this crate is ever read back into
//! a result-producing path. `wr-check`'s R4 rule pins the only
//! production wall-clock reads to this crate, R9 confines the
//! registry/tracer/flight *read* APIs to obs/bench/test code, and the
//! serve/runtime differential suites assert bit-identical results with
//! instrumentation attached and across `WR_THREADS` settings.

pub mod clock;
pub mod flight;
pub mod health;
pub mod http;
mod jsonw;
pub mod registry;
pub mod span;
pub mod trace;

pub use clock::{Clock, DeadlineBudget, MockClock, MonotonicClock};
pub use flight::{read_dump, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHT_FORMAT};
pub use health::{alignment, EmbeddingHealth, HealthConfig};
pub use http::{http_get, serve_http, ObsServer};
pub use registry::{
    nearest_rank, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    EXEMPLARS_PER_BUCKET, FAULT_COUNTERS,
};
pub use span::{Span, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};
pub use trace::TraceContext;

use std::sync::Arc;

/// One shared clock + registry + tracer + flight recorder, threaded
/// through an instrumented pipeline as a unit. Cheap to clone pieces out
/// of (everything is an `Arc`); construct one per experiment/benchmark
/// run.
#[derive(Clone)]
pub struct Telemetry {
    pub clock: Arc<dyn Clock>,
    pub registry: Arc<Registry>,
    pub tracer: Arc<Tracer>,
    pub flight: Arc<FlightRecorder>,
}

impl Telemetry {
    /// Production telemetry on a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Telemetry on a caller-supplied clock (tests pass a [`MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let tracer = Arc::new(Tracer::new(clock.clone()));
        Telemetry {
            clock,
            registry: Arc::new(Registry::new()),
            tracer,
            flight: Arc::new(FlightRecorder::new()),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("tracer", &self.tracer)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_shares_one_clock_between_tracer_and_caller() {
        let clock = Arc::new(MockClock::new());
        let tel = Telemetry::with_clock(clock.clone());
        {
            let _s = tel.tracer.span("tick", "test");
            clock.advance(42);
        }
        assert_eq!(tel.tracer.events()[0].dur_ns, 42);
        assert_eq!(tel.clock.now_ns(), 42);
    }

    #[test]
    fn telemetry_clones_share_state() {
        let tel = Telemetry::new();
        let tel2 = tel.clone();
        tel.registry.counter("n").inc();
        assert_eq!(tel2.registry.counter("n").get(), 1);
    }
}
