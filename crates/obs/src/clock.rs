//! Time sources for telemetry.
//!
//! Every timing measurement in the workspace flows through the [`Clock`]
//! trait; `wr-check`'s R4 rule confines direct `Instant::now` /
//! `SystemTime::now` calls to this crate (and benches), so instrumented
//! crates cannot accidentally read wall-clock in a result-producing path.
//! [`MonotonicClock`] is the production source; [`MockClock`] is a
//! hand-advanced source that makes span and latency tests fully
//! deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond counter. Implementations must be cheap to read
/// and safe to share across the pool's worker threads.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Monotonic:
    /// successive reads on any thread never decrease.
    fn now_ns(&self) -> u64;
}

/// Production clock: nanoseconds since the clock's construction, measured
/// with [`std::time::Instant`]. This is the only production call site of
/// `Instant::now` in the workspace (R4 allowlist).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Deterministic test clock: a shared atomic counter advanced manually
/// ([`MockClock::advance`]) and/or automatically by a fixed `tick` on every
/// read. With `tick = 0` (the [`MockClock::new`] default) time is frozen
/// until advanced, so spans measure exactly the durations a test scripts —
/// including zero.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
    tick: u64,
}

impl MockClock {
    /// Frozen clock starting at 0 ns; only [`advance`](Self::advance) moves it.
    pub fn new() -> Self {
        MockClock {
            now: AtomicU64::new(0),
            tick: 0,
        }
    }

    /// Auto-ticking clock: every `now_ns` read returns the current value and
    /// then advances by `tick_ns`, giving successive reads 0, t, 2t, …
    pub fn with_tick(tick_ns: u64) -> Self {
        MockClock {
            now: AtomicU64::new(0),
            tick: tick_ns,
        }
    }

    /// Move time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.tick, Ordering::SeqCst)
    }
}

/// A per-request time budget in the [`Clock`]'s virtual timeline.
///
/// The budget is pure data — `(start_ns, budget_ns)` — so it is `Copy`,
/// crosses pool-task boundaries for free, and never reads a clock itself:
/// callers pass the *current* `now_ns` into every query. Under a frozen
/// [`MockClock`] elapsed time is exactly what the test scripts (including
/// zero), which keeps deadline-aware routing deterministic. `budget_ns =
/// 0` means unlimited — the production default when no deadline was set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineBudget {
    /// Clock reading when the request entered the system.
    pub start_ns: u64,
    /// Nanoseconds the request may spend; `0` = no deadline.
    pub budget_ns: u64,
}

impl DeadlineBudget {
    /// A budget of `budget_ns` starting at clock reading `start_ns`.
    pub fn started_at(start_ns: u64, budget_ns: u64) -> Self {
        DeadlineBudget { start_ns, budget_ns }
    }

    /// No deadline: `expired` is always false, `remaining_ns` is `u64::MAX`.
    pub fn unlimited() -> Self {
        DeadlineBudget {
            start_ns: 0,
            budget_ns: 0,
        }
    }

    pub fn is_unlimited(&self) -> bool {
        self.budget_ns == 0
    }

    /// Nanoseconds spent since `start_ns` at clock reading `now_ns`
    /// (saturating — a clock rewind reads as zero elapsed, never a panic).
    pub fn elapsed_ns(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.start_ns)
    }

    /// Whether the budget is spent at clock reading `now_ns`.
    pub fn expired(&self, now_ns: u64) -> bool {
        self.budget_ns != 0 && self.elapsed_ns(now_ns) >= self.budget_ns
    }

    /// Nanoseconds left at clock reading `now_ns`; `u64::MAX` when
    /// unlimited, `0` when expired.
    pub fn remaining_ns(&self, now_ns: u64) -> u64 {
        if self.budget_ns == 0 {
            return u64::MAX;
        }
        self.budget_ns.saturating_sub(self.elapsed_ns(now_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_frozen_until_advanced() {
        let clock = MockClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 250);
    }

    #[test]
    fn mock_clock_auto_tick_strides_reads() {
        let clock = MockClock::with_tick(10);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 10);
        clock.advance(100);
        assert_eq!(clock.now_ns(), 120);
    }

    #[test]
    fn deadline_budget_expires_in_virtual_time() {
        let clock = MockClock::new();
        let budget = DeadlineBudget::started_at(clock.now_ns(), 1_000);
        assert!(!budget.expired(clock.now_ns()));
        assert_eq!(budget.remaining_ns(clock.now_ns()), 1_000);
        clock.advance(400);
        assert_eq!(budget.elapsed_ns(clock.now_ns()), 400);
        assert_eq!(budget.remaining_ns(clock.now_ns()), 600);
        clock.advance(600);
        assert!(budget.expired(clock.now_ns()));
        assert_eq!(budget.remaining_ns(clock.now_ns()), 0);
    }

    #[test]
    fn unlimited_budget_never_expires() {
        let budget = DeadlineBudget::unlimited();
        assert!(budget.is_unlimited());
        assert!(!budget.expired(u64::MAX));
        assert_eq!(budget.remaining_ns(u64::MAX), u64::MAX);
        // A clock reading before start_ns saturates to zero elapsed.
        let late_start = DeadlineBudget::started_at(500, 100);
        assert_eq!(late_start.elapsed_ns(10), 0);
        assert!(!late_start.expired(10));
    }

    #[test]
    fn clocks_are_object_safe() {
        use std::sync::Arc;
        let clocks: Vec<Arc<dyn Clock>> =
            vec![Arc::new(MonotonicClock::new()), Arc::new(MockClock::new())];
        for c in &clocks {
            let _ = c.now_ns();
        }
    }
}
