//! Embedding-health diagnostics: the paper's anisotropy statistics as
//! continuously recordable gauges.
//!
//! WhitenRec's argument is diagnostic: pre-trained text embeddings are
//! anisotropic — mean pairwise cosine ≈ 0.85, singular-value mass
//! concentrated in a few directions, ill-conditioned covariance — and
//! whitening fixes exactly that. This module computes those statistics on
//! a raw row-major `f32` matrix so any layer can record them against a
//! [`crate::Registry`] without depending on the tensor stack (`wr-obs`
//! sits *below* `wr-runtime`, which `wr-tensor` depends on; the small
//! amount of f64 linear algebra here — covariance + cyclic Jacobi
//! eigenvalues — is deliberately self-contained and mirrors
//! `wr_linalg`'s semantics, cross-checked by tests at the whitening
//! layer).
//!
//! Metrics (embeddings `x_1 … x_n ∈ R^d`, `Σ` the column-centered
//! population covariance, eigenvalues `λ_1 ≥ … ≥ λ_d ≥ 0`, singular
//! values `σ_i = √λ_i`):
//!
//! * **mean pairwise cosine** — `E[cos(x_i, x_j)]` over sampled `i ≠ j`
//!   pairs; the paper's headline anisotropy number (≈0.85 raw, ≈0 white).
//! * **top-k singular mass** — `Σ_{i≤k} σ_i / Σ_i σ_i`: how much of the
//!   spectrum the leading `k` directions hold (≈1 collapsed, `k/d` white).
//! * **condition number** — `λ_max / max(λ_min, floor)`, same floor
//!   semantics as `wr_eval::item_condition_number` (→ 1 when whitened).
//! * **uniformity** — `log E[exp(−2‖x̂_i − x̂_j‖²)]` over sampled pairs of
//!   L2-normalized rows (Wang & Isola); lower = more uniform.
//! * **alignment** — `E[‖x̂_i − ŷ_i‖²]` over row-aligned pairs of two
//!   matrices (e.g. user representation vs. target item), see
//!   [`alignment`].
//!
//! Pair sampling uses a fixed-seed splitmix64 stream, so every value here
//! is a pure function of the input matrix — health gauges never introduce
//! run-to-run jitter into metric snapshots.

use crate::registry::Registry;

/// Knobs for [`EmbeddingHealth::compute`].
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Number of sampled `i ≠ j` pairs for the cosine and uniformity
    /// estimates (capped at `n·(n−1)` implicitly by sampling with
    /// replacement; the estimate is what matters, not exhaustiveness).
    pub pair_samples: usize,
    /// `k` for the top-k singular-mass ratio (clamped to the dimension).
    pub top_k: usize,
    /// Seed for the deterministic pair-sampling stream.
    pub seed: u64,
    /// Floor applied to the smallest eigenvalue in the condition number,
    /// matching `wr_linalg::condition_number`'s default.
    pub cond_floor: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            pair_samples: 2048,
            top_k: 10,
            seed: 7,
            cond_floor: 1e-10,
        }
    }
}

/// The computed diagnostics for one embedding matrix.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingHealth {
    pub rows: usize,
    pub cols: usize,
    pub mean_pairwise_cosine: f64,
    pub top_k_singular_mass: f64,
    /// The `k` actually used (config `top_k` clamped to `cols`).
    pub top_k: usize,
    pub condition_number: f64,
    pub uniformity: f64,
}

/// splitmix64: tiny, seedable, and good enough for pair sampling.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0); modulo bias is irrelevant at these sizes.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn row(data: &[f32], cols: usize, i: usize) -> &[f32] {
    &data[i * cols..(i + 1) * cols]
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| *x as f64 * *y as f64)
        .sum()
}

/// Column-centered population covariance (d×d, row-major f64).
fn covariance(data: &[f32], rows: usize, cols: usize) -> Vec<f64> {
    let mut mean = vec![0.0f64; cols];
    for i in 0..rows {
        for (m, v) in mean.iter_mut().zip(row(data, cols, i)) {
            *m += *v as f64;
        }
    }
    for m in &mut mean {
        *m /= rows as f64;
    }
    let mut cov = vec![0.0f64; cols * cols];
    for i in 0..rows {
        let r = row(data, cols, i);
        for a in 0..cols {
            let da = r[a] as f64 - mean[a];
            for b in a..cols {
                cov[a * cols + b] += da * (r[b] as f64 - mean[b]);
            }
        }
    }
    let scale = 1.0 / rows as f64;
    for a in 0..cols {
        for b in a..cols {
            let v = cov[a * cols + b] * scale;
            cov[a * cols + b] = v;
            cov[b * cols + a] = v;
        }
    }
    cov
}

/// Eigenvalues of a symmetric matrix by cyclic Jacobi rotations, returned
/// descending. Values only — no vectors — which keeps this ~50 lines.
fn jacobi_eigenvalues(mut a: Vec<f64>, d: usize) -> Vec<f64> {
    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for p in 0..d {
            for q in (p + 1)..d {
                off += a[p * d + q] * a[p * d + q];
            }
        }
        if off.sqrt() <= 1e-12 * (1.0 + frobenius(&a, d)) {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    eig.sort_by(|x, y| y.total_cmp(x));
    eig
}

fn frobenius(a: &[f64], d: usize) -> f64 {
    (0..d * d).map(|i| a[i] * a[i]).sum::<f64>().sqrt()
}

/// Deterministic sampled `i ≠ j` index pairs (with replacement).
fn sample_pairs(rows: usize, samples: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = SplitMix64(seed);
    let mut pairs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let i = rng.below(rows);
        let mut j = rng.below(rows);
        if j == i {
            j = (j + 1) % rows;
        }
        pairs.push((i, j));
    }
    pairs
}

impl EmbeddingHealth {
    /// Compute all diagnostics for a row-major `rows × cols` matrix.
    ///
    /// Errors (rather than panicking) on shape mismatch, fewer than two
    /// rows, or zero columns — health probes must never take down the
    /// pipeline they observe.
    pub fn compute(
        data: &[f32],
        rows: usize,
        cols: usize,
        cfg: &HealthConfig,
    ) -> Result<EmbeddingHealth, String> {
        if cols == 0 || rows < 2 {
            return Err(format!(
                "embedding health needs at least 2 rows and 1 column, got {rows}x{cols}"
            ));
        }
        if data.len() != rows * cols {
            return Err(format!(
                "embedding health: data length {} != {rows}x{cols}",
                data.len()
            ));
        }

        let pairs = sample_pairs(rows, cfg.pair_samples.max(1), cfg.seed);

        // Mean pairwise cosine over sampled pairs (zero-norm rows skipped).
        let mut cos_sum = 0.0;
        let mut cos_n = 0usize;
        // Uniformity: log E exp(-2 ||x̂ - ŷ||²) over the same pairs.
        let mut unif_sum = 0.0;
        let mut unif_n = 0usize;
        for &(i, j) in &pairs {
            let a = row(data, cols, i);
            let b = row(data, cols, j);
            let na = dot(a, a).sqrt();
            let nb = dot(b, b).sqrt();
            if na > 0.0 && nb > 0.0 {
                let cos = dot(a, b) / (na * nb);
                cos_sum += cos;
                cos_n += 1;
                // ||x̂ - ŷ||² = 2 - 2 cos for unit vectors.
                unif_sum += (-2.0 * (2.0 - 2.0 * cos)).exp();
                unif_n += 1;
            }
        }
        let mean_pairwise_cosine = if cos_n > 0 {
            cos_sum / cos_n as f64
        } else {
            0.0
        };
        let uniformity = if unif_n > 0 {
            (unif_sum / unif_n as f64).ln()
        } else {
            0.0
        };

        // Spectrum of the covariance.
        let cov = covariance(data, rows, cols);
        let eig = jacobi_eigenvalues(cov, cols);
        let lambda_max = eig.first().copied().unwrap_or(0.0).max(0.0);
        let lambda_min = eig.last().copied().unwrap_or(0.0).max(0.0);
        let condition_number = lambda_max / lambda_min.max(cfg.cond_floor);

        let sigmas: Vec<f64> = eig.iter().map(|l| l.max(0.0).sqrt()).collect();
        let total: f64 = sigmas.iter().sum();
        let k = cfg.top_k.clamp(1, cols);
        let top: f64 = sigmas.iter().take(k).sum();
        let top_k_singular_mass = if total > 0.0 { top / total } else { 0.0 };

        Ok(EmbeddingHealth {
            rows,
            cols,
            mean_pairwise_cosine,
            top_k_singular_mass,
            top_k: k,
            condition_number,
            uniformity,
        })
    }

    /// Record every diagnostic as a gauge under `prefix` (e.g.
    /// `whiten.pre.condition_number`).
    pub fn record(&self, registry: &Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}.mean_pairwise_cosine"))
            .set(self.mean_pairwise_cosine);
        registry
            .gauge(&format!("{prefix}.top_k_singular_mass"))
            .set(self.top_k_singular_mass);
        registry
            .gauge(&format!("{prefix}.top_k"))
            .set(self.top_k as f64);
        registry
            .gauge(&format!("{prefix}.condition_number"))
            .set(self.condition_number);
        registry
            .gauge(&format!("{prefix}.uniformity"))
            .set(self.uniformity);
        registry.gauge(&format!("{prefix}.rows")).set(self.rows as f64);
        registry.gauge(&format!("{prefix}.cols")).set(self.cols as f64);
    }
}

/// Alignment (Wang & Isola): mean squared distance `E[‖x̂_i − ŷ_i‖²]`
/// between L2-normalized row-aligned pairs of two `rows × cols` matrices
/// (e.g. user representations vs. their target-item embeddings). Lower is
/// better-aligned. Zero-norm rows are skipped.
pub fn alignment(a: &[f32], b: &[f32], rows: usize, cols: usize) -> Result<f64, String> {
    if a.len() != rows * cols || b.len() != rows * cols {
        return Err(format!(
            "alignment: lengths {} / {} != {rows}x{cols}",
            a.len(),
            b.len()
        ));
    }
    if rows == 0 || cols == 0 {
        return Err("alignment needs a non-empty matrix pair".into());
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..rows {
        let ra = row(a, cols, i);
        let rb = row(b, cols, i);
        let na = dot(ra, ra).sqrt();
        let nb = dot(rb, rb).sqrt();
        if na > 0.0 && nb > 0.0 {
            let mut d2 = 0.0;
            for (x, y) in ra.iter().zip(rb.iter()) {
                let dxy = *x as f64 / na - *y as f64 / nb;
                d2 += dxy * dxy;
            }
            sum += d2;
            n += 1;
        }
    }
    if n == 0 {
        return Err("alignment: every row pair had a zero norm".into());
    }
    Ok(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random matrix in [-0.5, 0.5).
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64(seed);
        (0..rows * cols)
            .map(|_| (rng.next() >> 11) as f32 / (1u64 << 53) as f32 - 0.5)
            .collect()
    }

    #[test]
    fn identical_rows_are_maximally_anisotropic() {
        let rows = 16;
        let cols = 4;
        let one_row = [0.3f32, -1.2, 0.7, 2.0];
        let data: Vec<f32> = (0..rows).flat_map(|_| one_row).collect();
        let h = EmbeddingHealth::compute(&data, rows, cols, &HealthConfig::default()).unwrap();
        assert!(
            (h.mean_pairwise_cosine - 1.0).abs() < 1e-9,
            "cosine {} should be 1 for identical rows",
            h.mean_pairwise_cosine
        );
        // All rows identical → zero covariance in every direction except
        // numerically; the spectrum is degenerate and the floor kicks in.
        assert!(h.top_k_singular_mass <= 1.0 + 1e-12);
    }

    #[test]
    fn isotropic_random_data_has_low_cosine_and_condition() {
        let data = random_matrix(512, 8, 11);
        let cfg = HealthConfig {
            top_k: 2,
            ..HealthConfig::default()
        };
        let h = EmbeddingHealth::compute(&data, 512, 8, &cfg).unwrap();
        assert!(
            h.mean_pairwise_cosine.abs() < 0.15,
            "iid rows should be near-orthogonal on average, got {}",
            h.mean_pairwise_cosine
        );
        assert!(
            h.condition_number < 3.0,
            "iid covariance should be well-conditioned, got {}",
            h.condition_number
        );
        // 2 of 8 roughly equal directions ≈ 1/4 of the mass.
        assert!(h.top_k_singular_mass > 0.15 && h.top_k_singular_mass < 0.4);
    }

    #[test]
    fn collapsed_data_is_flagged_by_every_spectral_metric() {
        // Rank-1 structure plus a whisper of noise: x_i = s_i * u + eps.
        let rows = 256;
        let cols = 8;
        let u: Vec<f64> = (0..cols).map(|c| (c as f64 + 1.0).sin()).collect();
        let mut rng = SplitMix64(3);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            // Positive scales: every row points the same way, so the mean
            // pairwise cosine saturates as well as the spectrum collapsing.
            let s = ((rng.next() % 1000) as f64 + 1.0) / 1000.0;
            for uc in &u {
                let eps = ((rng.next() % 1000) as f64 / 1000.0 - 0.5) * 1e-3;
                data.push((s * uc + eps) as f32);
            }
        }
        let cfg = HealthConfig {
            top_k: 1,
            ..HealthConfig::default()
        };
        let h = EmbeddingHealth::compute(&data, rows, cols, &cfg).unwrap();
        assert!(
            h.mean_pairwise_cosine.abs() > 0.5,
            "rank-1 rows are parallel up to sign, got {}",
            h.mean_pairwise_cosine
        );
        assert!(
            h.top_k_singular_mass > 0.9,
            "one direction should hold the mass, got {}",
            h.top_k_singular_mass
        );
        assert!(
            h.condition_number > 1e3,
            "collapsed spectrum should be ill-conditioned, got {}",
            h.condition_number
        );
    }

    #[test]
    fn jacobi_matches_known_eigenvalues() {
        // [[2,1],[1,2]] → eigenvalues 3 and 1.
        let eig = jacobi_eigenvalues(vec![2.0, 1.0, 1.0, 2.0], 2);
        assert!((eig[0] - 3.0).abs() < 1e-10);
        assert!((eig[1] - 1.0).abs() < 1e-10);
        // Diagonal matrix passes through.
        let eig = jacobi_eigenvalues(vec![5.0, 0.0, 0.0, 0.5], 2);
        assert!((eig[0] - 5.0).abs() < 1e-12);
        assert!((eig[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn health_is_deterministic() {
        let data = random_matrix(64, 6, 42);
        let cfg = HealthConfig::default();
        let a = EmbeddingHealth::compute(&data, 64, 6, &cfg).unwrap();
        let b = EmbeddingHealth::compute(&data, 64, 6, &cfg).unwrap();
        assert_eq!(a.mean_pairwise_cosine.to_bits(), b.mean_pairwise_cosine.to_bits());
        assert_eq!(a.condition_number.to_bits(), b.condition_number.to_bits());
        assert_eq!(a.uniformity.to_bits(), b.uniformity.to_bits());
    }

    #[test]
    fn degenerate_shapes_error_instead_of_panicking() {
        assert!(EmbeddingHealth::compute(&[], 0, 4, &HealthConfig::default()).is_err());
        assert!(EmbeddingHealth::compute(&[1.0], 1, 1, &HealthConfig::default()).is_err());
        assert!(EmbeddingHealth::compute(&[1.0; 6], 2, 4, &HealthConfig::default()).is_err());
    }

    #[test]
    fn record_writes_every_gauge() {
        let data = random_matrix(32, 4, 5);
        let h = EmbeddingHealth::compute(&data, 32, 4, &HealthConfig::default()).unwrap();
        let reg = Registry::new();
        h.record(&reg, "emb");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
        for want in [
            "emb.mean_pairwise_cosine",
            "emb.top_k_singular_mass",
            "emb.condition_number",
            "emb.uniformity",
            "emb.rows",
            "emb.cols",
        ] {
            assert!(names.contains(&want), "missing gauge {want}");
        }
    }

    #[test]
    fn alignment_is_zero_for_identical_and_two_for_opposite() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let b = vec![2.0f32, 0.0, 0.0, 3.0]; // same directions, different norms
        let al = alignment(&a, &b, 2, 2).unwrap();
        assert!(al.abs() < 1e-12);
        let c = vec![-1.0f32, 0.0, 0.0, -1.0];
        let al = alignment(&a, &c, 2, 2).unwrap();
        assert!((al - 4.0).abs() < 1e-9); // ||x̂ + x̂||² = 4 for unit rows
        assert!(alignment(&a, &b, 3, 2).is_err());
    }
}
