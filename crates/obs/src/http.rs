//! Live telemetry endpoint: a std-only, read-only HTTP/1.1 server.
//!
//! [`serve_http`] binds a blocking [`TcpListener`] on its own thread (the
//! one long-lived thread the workspace allows outside `wr-runtime`'s
//! pool — an accept loop cannot run as a bounded pool job, and obs sits
//! *below* the runtime in the dependency order) and answers four GET
//! routes from the owning [`Telemetry`]:
//!
//! | route            | payload                                         |
//! |------------------|-------------------------------------------------|
//! | `/metrics`       | `wr-obs/v1` registry snapshot JSON              |
//! | `/traces/recent` | last 256 trace events (`wr-trace-recent/v1`)    |
//! | `/flight`        | flight-recorder ring (`wr-flight/v1` lines)     |
//! | `/health`        | `{"status":"ok"}` liveness probe                |
//!
//! The server is strictly **read-only**: it snapshots, it never mutates,
//! and it runs entirely off the serving hot path — scraping concurrently
//! with a replay cannot change a single served bit. Responses close the
//! connection (`Connection: close`) so the handler loop stays a simple
//! accept → answer → drop cycle with no keep-alive state.
//!
//! [`http_get`] is the matching std-only scrape client, used by the
//! check.sh smoke (via the bench binaries' `--obs-*` flags) and by tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::Telemetry;

/// Events returned by `/traces/recent`.
const RECENT_TRACE_LIMIT: usize = 256;

/// Handle to a running telemetry endpoint; dropping it (or calling
/// [`ObsServer::shutdown`]) stops the accept loop and joins the thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer").field("addr", &self.addr).finish()
    }
}

impl ObsServer {
    /// The bound address — with port 0 in the bind string, this is where
    /// the kernel actually put us (print it for scrapers).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Start the read-only telemetry endpoint on `addr` (e.g.
/// `"127.0.0.1:0"` for an ephemeral port). The returned handle owns the
/// listener thread; the `Telemetry` is cloned (its parts are `Arc`s) so
/// the endpoint observes the live registry/tracer/flight state.
pub fn serve_http(addr: &str, telemetry: &Telemetry) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let tel = telemetry.clone();
    let handle = std::thread::Builder::new()
        .name("wr-obs-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = handle_conn(&mut stream, &tel);
            }
        })?;
    Ok(ObsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(stream: &mut TcpStream, tel: &Telemetry) -> std::io::Result<()> {
    // One read is enough for a GET request line; we only route on it.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = route(path, tel);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(path: &str, tel: &Telemetry) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => ("200 OK", "application/json", tel.registry.to_json()),
        "/traces/recent" => (
            "200 OK",
            "application/json",
            tel.tracer.recent_json(RECENT_TRACE_LIMIT),
        ),
        "/flight" => (
            "200 OK",
            "application/x-ndjson",
            tel.flight.snapshot_json("live"),
        ),
        "/health" => ("200 OK", "application/json", "{\"status\":\"ok\"}".to_string()),
        _ => (
            "404 Not Found",
            "application/json",
            "{\"error\":\"unknown route\"}".to_string(),
        ),
    }
}

/// Std-only scrape client: `GET path` against `addr`, returning the
/// response body. Fails on non-200 statuses.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status_ok = head
        .lines()
        .next()
        .is_some_and(|line| line.contains(" 200 "));
    if !status_ok {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Other,
            format!("non-200 response for {path}: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    #[test]
    fn endpoint_serves_all_routes_and_shuts_down() {
        let tel = Telemetry::new();
        tel.registry.counter("gateway.requests").add(3);
        let ctx = TraceContext::root(1, 0);
        tel.tracer.span_ctx("batch", "gateway", ctx).end();
        tel.flight.note("degraded", "gateway.shard0", ctx, 1, 0, 0);

        let server = serve_http("127.0.0.1:0", &tel).expect("bind ephemeral");
        let addr = server.addr().to_string();

        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("\"format\":\"wr-obs/v1\""));
        assert!(metrics.contains("\"gateway.requests\":3"));

        let traces = http_get(&addr, "/traces/recent").unwrap();
        assert!(traces.contains("wr-trace-recent/v1"));
        assert!(traces.contains(&format!("{:016x}", ctx.trace_id)));

        let flight = http_get(&addr, "/flight").unwrap();
        assert!(flight.contains("\"format\":\"wr-flight/v1\""));
        assert!(flight.contains("\"kind\":\"degraded\""));

        let health = http_get(&addr, "/health").unwrap();
        assert_eq!(health, "{\"status\":\"ok\"}");

        let err = http_get(&addr, "/nope").expect_err("404 must error");
        assert_eq!(err.kind(), std::io::ErrorKind::Other);

        server.shutdown();
        // After shutdown the port no longer answers.
        assert!(http_get(&addr, "/health").is_err());
    }

    #[test]
    fn scrapes_observe_live_state() {
        let tel = Telemetry::new();
        let server = serve_http("127.0.0.1:0", &tel).unwrap();
        let addr = server.addr().to_string();
        assert!(!http_get(&addr, "/metrics").unwrap().contains("\"late.counter\""));
        tel.registry.counter("late.counter").inc();
        assert!(http_get(&addr, "/metrics").unwrap().contains("\"late.counter\":1"));
    }
}
