//! Global-free metric registry: counters, gauges, fixed-bucket histograms.
//!
//! A [`Registry`] is an explicit value (usually behind an `Arc` inside
//! [`crate::Telemetry`]) — there is no process-global state, so tests and
//! parallel experiments each own an isolated metric namespace. Lookup is
//! lock-sharded (FNV-1a of the metric name picks one of [`SHARDS`]
//! mutex-guarded maps) and handles are `Arc`s to lock-free atomics, so the
//! hot path — a worker thread bumping a counter or observing a histogram
//! sample — never contends on the registry locks and is safe to call from
//! inside `wr-runtime` pool jobs.
//!
//! Everything here is strictly write-only with respect to computation: no
//! metric value is ever read back into a result-producing path
//! (`wr-check` R4 enforces the absence of clock reads outside
//! `crates/obs`; the differential suites assert bit-identity with
//! telemetry attached).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::jsonw::{write_f64, write_str};

/// Monotonic event count. `u64`, relaxed atomics — ordering between
/// metric writes is irrelevant, only the totals are.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins scalar (f64 bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bound histogram with explicit underflow/overflow buckets.
///
/// For ascending `bounds = [b0, …, bn]` there are `n + 2` buckets:
/// bucket 0 counts samples `< b0` (underflow), bucket `i` counts
/// `b(i-1) <= v < b(i)`, and the last bucket counts `v >= bn` (overflow).
/// `count`/`sum`/`min`/`max` are tracked exactly alongside the buckets.
/// Observation is lock-free (one `fetch_add` plus CAS loops for the
/// extrema), so pool workers can observe concurrently; totals are exact,
/// percentiles are bucket-resolution estimates.
///
/// Each bucket additionally retains the last [`EXEMPLARS_PER_BUCKET`]
/// trace ids observed into it ([`Histogram::observe_exemplar`]) in a
/// tiny lock-free ring — id 0 is the empty sentinel — so a latency
/// bucket links directly to the traces that landed there. Exemplars are
/// copied, never reset, by [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    exemplars: Vec<BucketExemplars>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Trace ids retained per bucket (last-k, lock-free overwrite).
pub const EXEMPLARS_PER_BUCKET: usize = 4;

/// One bucket's exemplar ring: a wrapping cursor picks the slot to
/// overwrite, so concurrent writers never block and the ring always
/// holds the most recent `EXEMPLARS_PER_BUCKET` distinct observations.
#[derive(Debug, Default)]
struct BucketExemplars {
    cursor: AtomicU64,
    slots: [AtomicU64; EXEMPLARS_PER_BUCKET],
}

impl BucketExemplars {
    fn store(&self, trace_id: u64) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % EXEMPLARS_PER_BUCKET;
        if let Some(slot) = self.slots.get(at) {
            slot.store(trace_id, Ordering::Relaxed);
        }
    }

    /// Occupied slots in slot order (0 = empty sentinel, skipped).
    fn load(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&id| id != 0)
            .collect()
    }
}

/// Point-in-time copy of one histogram, used for snapshots and JSON.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    /// Per-bucket retained trace ids (parallel to `buckets`; empty vec =
    /// no exemplars observed into that bucket yet).
    pub exemplars: Vec<Vec<u64>>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    /// `bounds` must be finite and strictly ascending (checked).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..bounds.len() + 1)
                .map(|_| BucketExemplars::default())
                .collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Log-spaced default bounds for durations in milliseconds:
    /// 0.001 ms … 100 s, three buckets per decade.
    pub fn default_ms_bounds() -> Vec<f64> {
        let mut bounds = Vec::new();
        let mut decade = 1e-3;
        for _ in 0..9 {
            for m in [1.0, 2.0, 5.0] {
                bounds.push(decade * m);
            }
            decade *= 10.0;
        }
        bounds
    }

    fn bucket_index(&self, v: f64) -> usize {
        for (i, b) in self.bounds.iter().enumerate() {
            if v < *b {
                return i;
            }
        }
        self.bounds.len() // overflow (NaN compares false against every bound)
    }

    /// Record one sample. NaN samples are counted in the overflow bucket
    /// (they compare false against every bound) and excluded from the
    /// extrema; this keeps observation panic-free on hostile inputs.
    pub fn observe(&self, v: f64) {
        self.observe_exemplar(v, 0);
    }

    /// [`Self::observe`] that also retains `trace_id` in the target
    /// bucket's exemplar ring (0 = no exemplar, plain observation).
    /// Lock-free like `observe` — safe from pool workers.
    pub fn observe_exemplar(&self, v: f64, trace_id: u64) {
        let idx = self.bucket_index(v);
        // `idx ≤ bounds.len()` and `buckets.len() == bounds.len() + 1` by
        // construction; the checked form keeps the hot path panic-free.
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        if trace_id != 0 {
            if let Some(ring) = self.exemplars.get(idx) {
                ring.store(trace_id);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.cas_f64(&self.sum_bits, |cur| cur + v);
        self.cas_f64(&self.min_bits, |cur| if v < cur { v } else { cur });
        self.cas_f64(&self.max_bits, |cur| if v > cur { v } else { cur });
    }

    fn cas_f64(&self, cell: &AtomicU64, f: impl Fn(f64) -> f64) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observed sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Largest observed sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile estimated at bucket resolution: the value
    /// returned is the upper bound of the bucket holding the target rank,
    /// except that the unbounded edge buckets report the exact observed
    /// extremum (underflow → `min`, overflow → `max`). Empty histograms
    /// report 0.0.
    pub fn percentile(&self, p: f64) -> f64 {
        let snap = self.snapshot();
        snap.percentile(p)
    }

    /// Point-in-time copy. The snapshot's `count` is computed from the
    /// bucket loads themselves — not read from the separate `count`
    /// atomic — so `count == sum(buckets)` holds in every snapshot even
    /// while concurrent `observe` calls are mid-flight between their
    /// bucket and counter increments. Exemplar rings are copied, never
    /// reset: snapshotting is read-only on the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        // A racing first observation may have bumped its bucket before
        // its min/max CAS landed; an empty snapshot must still read as
        // all-zeros, so the extrema follow the bucket-derived count.
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (self.min(), self.max())
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            exemplars: self.exemplars.iter().map(|e| e.load()).collect(),
            buckets,
            count,
            sum: self.sum(),
            min,
            max,
        }
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket i; the edge buckets are unbounded on
                // one side, so they report the exact observed extremum.
                if i == 0 {
                    return self.min;
                }
                return match self.bounds.get(i) {
                    Some(b) => b.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// rank `ceil(p/100 · n)` (1-based, clamped). This is the single
/// percentile definition shared by [`Histogram`] (at bucket resolution)
/// and `wr-serve`'s exact latency percentiles.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

const SHARDS: usize = 8;

#[derive(Debug, Clone)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Lock-sharded, name-addressed metric store. See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<BTreeMap<String, Entry>>; SHARDS],
}

/// Point-in-time, name-sorted copy of every metric in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn shard_of(name: &str) -> usize {
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SHARDS as u64) as usize
}

/// Names of the fault-tolerance counters every observed binary exports.
///
/// They are registered eagerly (at zero) by
/// [`Registry::register_fault_counters`] so a metrics export always shows
/// the full recovery surface — a clean run reads `fault.injected: 0`, not
/// a missing key. The incrementing sites live in their own crates: the
/// chaos bridge in the binaries (`fault.injected`), the serving engine
/// (`serve.*`), and the resumable trainer (`train.resumes`).
pub const FAULT_COUNTERS: [&str; 5] = [
    "fault.injected",
    "serve.rejected_overload",
    "serve.quarantined_rows",
    "serve.retries",
    "train.resumes",
];

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Eagerly create every [`FAULT_COUNTERS`] entry at zero, so metric
    /// exports carry the whole fault-tolerance surface even on runs where
    /// nothing went wrong.
    pub fn register_fault_counters(&self) {
        for name in FAULT_COUNTERS {
            self.counter(name);
        }
    }

    fn entry(&self, name: &str, make: impl FnOnce() -> Entry) -> Entry {
        // `shard_of` reduces modulo the shard count; the checked lookup
        // (falling back to shard 0) keeps this panic-free regardless.
        let slot = self.shards.get(shard_of(name)).unwrap_or(&self.shards[0]);
        let mut shard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        shard
            .entry(name.to_string())
            .or_insert_with(make)
            .clone()
    }

    /// Get or create the counter `name`.
    ///
    /// If `name` is already registered as a *different* metric kind, the
    /// kind collision is tallied in `obs.kind_collisions` and a detached
    /// instance is returned: its increments are not exported, but telemetry
    /// misuse must never take down the serving path that emitted it.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.entry(name, || Entry::Counter(Arc::new(Counter::new()))) {
            Entry::Counter(c) => c,
            _ => {
                self.note_kind_collision();
                Arc::new(Counter::new())
            }
        }
    }

    /// Get or create the gauge `name` (same kind rules as [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.entry(name, || Entry::Gauge(Arc::new(Gauge::new()))) {
            Entry::Gauge(g) => g,
            _ => {
                self.note_kind_collision();
                Arc::new(Gauge::new())
            }
        }
    }

    /// Get or create the histogram `name`. `bounds` is used only on first
    /// creation; later callers receive the existing instance. Kind
    /// collisions degrade to a detached instance (see [`Self::counter`]).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        match self.entry(name, || Entry::Histogram(Arc::new(Histogram::new(bounds)))) {
            Entry::Histogram(h) => h,
            _ => {
                self.note_kind_collision();
                Arc::new(Histogram::new(bounds))
            }
        }
    }

    /// Adopt an externally owned histogram under `name` (e.g. the runtime
    /// pool's job timers live in the pool and are adopted into whichever
    /// registry snapshots them). First registration wins; re-adopting the
    /// same instance is a no-op. Kind collisions leave the registry
    /// untouched and hand back the caller's own instance.
    pub fn adopt_histogram(&self, name: &str, h: &Arc<Histogram>) -> Arc<Histogram> {
        match self.entry(name, || Entry::Histogram(h.clone())) {
            Entry::Histogram(existing) => existing,
            _ => {
                self.note_kind_collision();
                h.clone()
            }
        }
    }

    /// Count a metric registered under one kind and requested as another.
    /// The counter makes the misuse visible in every snapshot without
    /// making registration fallible on the hot path.
    fn note_kind_collision(&self) {
        if let Entry::Counter(c) =
            self.entry("obs.kind_collisions", || Entry::Counter(Arc::new(Counter::new())))
        {
            c.inc();
        }
    }

    /// Name-sorted copy of every metric. Deterministic given deterministic
    /// metric values: shards are walked in order and each shard's map is
    /// already sorted, so only the final merge-sort by name is needed.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            for (name, entry) in shard.iter() {
                match entry {
                    Entry::Counter(c) => snap.counters.push((name.clone(), c.get())),
                    Entry::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                    Entry::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
                }
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Serialize a fresh [`Snapshot`] — see [`Snapshot::to_json`].
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl Snapshot {
    /// Compact JSON:
    /// `{"format":"wr-obs/v1","counters":{…},"gauges":{…},"histograms":{name:{count,sum,min,max,mean,p50,p95,p99,bounds,buckets}}}`.
    ///
    /// The dialect matches `wr_tensor::json` (shortest round-trip floats,
    /// `null` for non-finite) so downstream tooling parses it with the
    /// same parser as every other artifact in the repo.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"format\":\"wr-obs/v1\",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            for (key, val) in [
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("mean", h.mean()),
                ("p50", h.percentile(50.0)),
                ("p95", h.percentile(95.0)),
                ("p99", h.percentile(99.0)),
            ] {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                write_f64(&mut out, val);
            }
            out.push_str(",\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_f64(&mut out, *b);
            }
            out.push_str("],\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            // Exemplars: per-bucket retained trace ids, hex strings in
            // the same formatting as the trace exports so a bucket can
            // be joined to its span tree with a text match.
            out.push_str("],\"exemplars\":[");
            for (j, ids) in h.exemplars.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (m, id) in ids.iter().enumerate() {
                    if m > 0 {
                        out.push(',');
                    }
                    write_str(&mut out, &format!("{id:016x}"));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("jobs").get(), 5);
        let g = reg.gauge("depth");
        g.set(3.5);
        assert_eq!(reg.gauge("depth").get(), 3.5);
    }

    #[test]
    fn kind_conflict_degrades_to_detached_instance() {
        let reg = Registry::new();
        reg.counter("x").inc();
        // Requesting "x" as a gauge must not panic (telemetry misuse can
        // never take down a serving thread); the caller gets a detached
        // instance whose writes do not reach the exported snapshot…
        let g = reg.gauge("x");
        g.set(7.0);
        let snap = reg.snapshot();
        assert!(snap.gauges.iter().all(|(name, _)| name != "x"));
        assert!(snap.counters.iter().any(|(name, v)| name == "x" && *v == 1));
        // …and the collision itself is observable.
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == "obs.kind_collisions" && *v == 1));
    }

    #[test]
    fn histogram_buckets_split_at_bounds() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 9.9, 10.0, 50.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // underflow (<1): 0.5 | [1,10): 1.0, 2.0, 9.9 | overflow (>=10): 10.0, 50.0
        assert_eq!(s.buckets, vec![1, 3, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 50.0);
        assert!((s.sum - 73.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_underflow_and_overflow_extremes() {
        let h = Histogram::new(&[1.0]);
        h.observe(-100.0);
        h.observe(1e9);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1]);
        assert_eq!(s.min, -100.0);
        assert_eq!(s.max, 1e9);
        // p99 lands in the overflow bucket → exact observed max.
        assert_eq!(s.percentile(99.0), 1e9);
        // p50 lands in the underflow bucket → clamped to observed min.
        assert_eq!(s.percentile(50.0), -100.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zeros() {
        let h = Histogram::new(&[1.0, 2.0]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.buckets, vec![0, 0, 0]);
    }

    #[test]
    fn histogram_nan_goes_to_overflow_without_poisoning_extrema() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1]);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.5);
    }

    #[test]
    fn histogram_percentiles_track_bucket_edges() {
        let h = Histogram::new(&Histogram::default_ms_bounds());
        for i in 0..100 {
            h.observe(0.05 + (i as f64) * 0.001); // all in [0.05, 0.15)
        }
        let p50 = h.percentile(50.0);
        assert!(p50 >= 0.05 && p50 <= 0.2, "p50 = {p50}");
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&xs, 50.0), 50.0);
        assert_eq!(nearest_rank(&xs, 95.0), 95.0);
        assert_eq!(nearest_rank(&xs, 99.0), 99.0);
        assert_eq!(nearest_rank(&xs, 100.0), 100.0);
        assert_eq!(nearest_rank(&[7.5], 50.0), 7.5);
        assert_eq!(nearest_rank(&[], 50.0), 0.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_json_shaped() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(1.25);
        reg.histogram("h.lat", &[1.0, 2.0]).observe(1.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        let json = snap.to_json();
        assert!(json.starts_with("{\"format\":\"wr-obs/v1\""));
        assert!(json.contains("\"a.first\":2"));
        assert!(json.contains("\"m.mid\":1.25"));
        assert!(json.contains("\"h.lat\":{\"count\":1"));
    }

    #[test]
    fn exemplars_retain_last_k_per_bucket_and_survive_snapshots() {
        let h = Histogram::new(&[1.0, 10.0]);
        // Six exemplars into the middle bucket: only the last 4 survive.
        for id in 1..=6u64 {
            h.observe_exemplar(5.0, id);
        }
        h.observe_exemplar(0.5, 77); // underflow bucket
        h.observe(20.0); // overflow, no exemplar
        let s1 = h.snapshot();
        assert_eq!(s1.exemplars.len(), s1.buckets.len());
        assert_eq!(s1.exemplars[0], vec![77]);
        let mut mid = s1.exemplars[1].clone();
        mid.sort_unstable();
        assert_eq!(mid, vec![3, 4, 5, 6], "ring keeps the last 4");
        assert!(s1.exemplars[2].is_empty(), "plain observe leaves no exemplar");
        // Snapshotting does not reset the rings.
        let s2 = h.snapshot();
        assert_eq!(s1.exemplars, s2.exemplars);
        // And the ids appear as hex strings in the JSON export.
        let reg = Registry::new();
        reg.adopt_histogram("lat", &Arc::new(h));
        let json = reg.to_json();
        assert!(json.contains("\"exemplars\":[["), "{json}");
        assert!(json.contains(&format!("\"{:016x}\"", 77)), "{json}");
    }

    #[test]
    fn concurrent_observe_never_breaks_the_snapshot_count_invariant() {
        // Regression: `snapshot()` used to read the count atomic
        // separately from the bucket loads, so a snapshot taken between
        // an observer's bucket increment and its count increment violated
        // `count == sum(buckets)`. The count is now derived from the
        // loaded buckets themselves.
        let h = Arc::new(Histogram::new(&[1.0, 10.0, 100.0]));
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = h.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let v = ((w * 1000 + i) % 200) as f64;
                        h.observe_exemplar(v, i + 1);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..2000 {
            let s = h.snapshot();
            let bucket_sum: u64 = s.buckets.iter().sum();
            assert_eq!(
                s.count, bucket_sum,
                "snapshot count must equal the sum of its own bucket loads"
            );
        }
        stop.store(1, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
        // Quiesced: the exact atomics agree with the buckets again.
        let s = h.snapshot();
        assert_eq!(s.count, h.count());
    }

    #[test]
    fn registry_is_shareable_across_handles() {
        let reg = Arc::new(Registry::new());
        let c1 = reg.counter("shared");
        let c2 = reg.counter("shared");
        c1.inc();
        c2.inc();
        assert_eq!(reg.counter("shared").get(), 2);
    }
}
