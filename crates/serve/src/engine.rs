//! The serving engine: checkpoint → shared cache → batched top-k answers,
//! hardened for degraded-mode operation (admission control, per-batch
//! panic containment, NaN/Inf quarantine, bounded retry).
//!
//! The engine is a thin composition: the (non-`Sync`) model encodes
//! histories on the caller thread, and a full-catalog [`CatalogShard`]
//! — the `Sync` scoring core shared with the sharded gateway — does
//! everything after the encode (scoring, quarantine, top-k extraction,
//! fault hooks). The per-batch retry/isolation loop stays up here so a
//! genuine panic in the model forward is contained too.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use crate::{BatcherConfig, CatalogShard, MicroBatcher, ScoredItem};
use wr_ann::IvfIndex;
use wr_fault::{RetryPolicy, SharedInjector, Sleeper};
use wr_nn::{load_params, restore_params, CheckpointError};
use wr_obs::{DeadlineBudget, Telemetry, TraceContext};
use wr_tensor::Tensor;
use wr_train::SeqRecModel;

/// One top-k query: an opaque request id plus the user's session history
/// (most recent item last, the convention of `wr_data`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub history: Vec<usize>,
}

/// The answer to one [`Request`]: up to `k` items, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: u64,
    pub items: Vec<ScoredItem>,
}

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Recommendations per query.
    pub k: usize,
    /// Micro-batch row bound.
    pub max_batch: usize,
    /// Padded sequence length (must equal the model's training `max_seq`).
    pub max_seq: usize,
    /// Exclude items already in the user's history from the candidates
    /// (the RecBole convention the offline eval uses).
    pub filter_seen: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: 10,
            max_batch: 64,
            max_seq: 20,
            filter_seen: true,
        }
    }
}

/// Degraded-mode knobs, separate from [`ServeConfig`] so the happy-path
/// configuration stays untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Admission-control bound: [`ServeEngine::try_serve`] rejects a call
    /// carrying more than this many requests with
    /// [`ServeError::Overloaded`] instead of queuing unbounded work. For
    /// a [`CatalogShard`] fanned out by the gateway, the same field
    /// bounds the rows accepted per shard call (per-shard backpressure).
    pub max_queue_depth: usize,
    /// Bounded retry-with-backoff for micro-batches that panic.
    pub retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_queue_depth: 1024,
            retry: RetryPolicy::default(),
        }
    }
}

/// Which retrieval strategy [`ServeEngine`] scores candidates with.
///
/// `Exact` is the default dense path: one gemm `users·Vᵀ` over the whole
/// catalog. `Ivf` probes an attached [`IvfIndex`] instead, scanning only
/// the `nprobe` most promising inverted lists per query — sublinear in
/// |I|, with `nprobe = nlist` provably (and differentially tested)
/// bit-identical to `Exact` on healthy engines.
///
/// Degraded-mode semantics differ in one documented corner: `Exact`
/// masks quarantined item rows to `-inf` (they can still surface when
/// fewer than `k` finite candidates exist), while `Ivf` excludes them
/// from the candidate set outright. On a healthy engine the quarantine
/// set is empty and the two are indistinguishable. Injected *score*
/// poisoning (`serve.score`) only exists on the dense path — the IVF
/// scan never materializes a dense score row — so chaos drills exercise
/// the `Exact` scorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scorer {
    /// Dense gemm over the full catalog.
    Exact,
    /// IVF-flat probe of `nprobe` inverted lists (clamped to `nlist`).
    Ivf { nprobe: usize },
}

/// Typed serving failures surfaced by [`ServeEngine::try_serve`] and the
/// strict replica path ([`CatalogShard::try_serve_replica`]).
#[derive(Debug)]
pub enum ServeError {
    /// The call exceeded [`ResilienceConfig::max_queue_depth`]. The caller
    /// should shed load (split the batch, back off) — nothing was scored.
    Overloaded { depth: usize, limit: usize },
    /// The micro-batch panicked on every retry attempt. Nothing was
    /// answered; a replica-aware caller should fail over to a sibling
    /// (same window, same cache ⇒ bit-identical answers) instead of
    /// degrading.
    Panicked { attempts: u32 },
    /// The request's [`wr_obs::DeadlineBudget`] was already spent when the
    /// call arrived — scoring would answer after the caller stopped
    /// listening, so nothing was scored.
    DeadlineExceeded { elapsed_ns: u64, budget_ns: u64 },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => {
                write!(f, "serve overloaded: {depth} requests exceed queue depth {limit}")
            }
            ServeError::Panicked { attempts } => {
                write!(f, "serve micro-batch panicked on all {attempts} attempts")
            }
            ServeError::DeadlineExceeded { elapsed_ns, budget_ns } => {
                write!(
                    f,
                    "serve deadline exceeded: {elapsed_ns} ns elapsed of a {budget_ns} ns budget"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Online inference over a trained sequential recommender.
///
/// Construction snapshots the model's item representations into an
/// [`crate::EmbeddingCache`] (for WhitenRec: whitened table → trained
/// projection head, baked into one frozen `V`), so per-query work is only
///
/// ```text
/// encode histories → users: [b, d]   (transformer forward, batched)
/// score            → users · Vᵀ      (one gemm against the shared cache)
/// extract          → top-k per row   (bounded heap, pool-parallel)
/// ```
///
/// # Scoring contract
///
/// The engine scores by raw inner product against the cached `V`, which
/// reproduces `model.score` bit-for-bit for every Softmax-loss model in
/// the zoo (the WhitenRec family, SASRec variants). Cosine-loss models
/// (UniSRec) normalize inside `score`; serve those by caching normalized
/// representations upstream or fall back to [`ServeEngine::serve_naive`]
/// semantics at the call site.
pub struct ServeEngine {
    model: Box<dyn SeqRecModel>,
    /// The full catalog as a single window at offset 0. Scoring,
    /// quarantine, extraction, and the fault hooks all live here.
    shard: CatalogShard,
    batcher: MicroBatcher,
    cfg: ServeConfig,
    /// Optional write-only telemetry: per-micro-batch spans, request/batch
    /// counters, a queue-depth gauge. Never consulted when producing
    /// responses — the differential suite asserts instrumented ==
    /// uninstrumented bit-for-bit. (The shard holds a clone for its own
    /// retry/quarantine/ANN counters.)
    telemetry: Option<Telemetry>,
}

impl ServeEngine {
    /// Serve an in-memory model.
    pub fn new(model: Box<dyn SeqRecModel>, cfg: ServeConfig) -> Self {
        let items = model.item_representations();
        let shard = CatalogShard::from_cache(crate::EmbeddingCache::new(items), &cfg);
        let batcher = MicroBatcher::new(BatcherConfig {
            max_batch: cfg.max_batch,
            max_seq: cfg.max_seq,
        });
        ServeEngine {
            model,
            shard,
            batcher,
            cfg,
            telemetry: None,
        }
    }

    /// Switch the engine to IVF retrieval (builder-style): score via
    /// `index` with the given `nprobe` instead of the dense gemm. The
    /// index must have been built over (or loaded against) this engine's
    /// item table — shape disagreement is a construction bug, checked
    /// at attach time rather than discovered per query.
    pub fn with_ann(mut self, index: Arc<IvfIndex>, nprobe: usize) -> Self {
        self.shard.set_ann(index, nprobe);
        self
    }

    /// The active retrieval strategy.
    pub fn scorer(&self) -> Scorer {
        self.shard.scorer()
    }

    /// The attached IVF index, when [`Scorer::Ivf`] is active.
    pub fn ann_index(&self) -> Option<&Arc<IvfIndex>> {
        self.shard.ann_index()
    }

    /// Attach a fault injector (builder-style). The item cache is
    /// re-snapshotted through the injector's `cache.load` site so poisoned
    /// rows are quarantined exactly as a damaged on-disk cache would be;
    /// `serve.row` / `serve.score` faults are injected per request on the
    /// hot path and absorbed by retry, isolation, and quarantine.
    pub fn with_faults(mut self, injector: SharedInjector) -> Self {
        let items = self.model.item_representations();
        self.shard.rearm(&items, injector);
        self
    }

    /// Override degraded-mode knobs (builder-style).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.shard = self.shard.with_resilience(resilience);
        self
    }

    /// Replace the backoff sleeper (builder-style). Tests inject
    /// [`wr_fault::NoSleep`] so retry storms never block the suite.
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        self.shard = self.shard.with_sleeper(sleeper);
        self
    }

    /// Item rows quarantined at cache load (non-finite embeddings).
    pub fn quarantined_items(&self) -> &[usize] {
        self.shard.quarantined_items()
    }

    /// Attach telemetry (builder-style). Serving records, per micro-batch:
    /// a `serve.batch` span, `serve.requests` / `serve.batches` counters, a
    /// `serve.cache_scored_rows` counter (rows scored against the shared
    /// cache — the cache-share signal: every row of every batch hits the
    /// same `Arc`'d matrix), and the `serve.queue_depth` gauge (requests
    /// still waiting after the current batch).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        // Create the degraded-mode counters at 0 eagerly: a metrics export
        // from a healthy process must still show the recovery counters, so
        // dashboards can alert on them going *from* zero.
        telemetry.registry.counter("serve.rejected_overload");
        telemetry.registry.counter("serve.quarantined_rows");
        telemetry.registry.counter("serve.retries");
        // ANN probe accounting, eagerly at 0 for the same reason: an
        // exact-scorer export still names the counters, so a dashboard
        // can tell "ANN off" (0) from "ANN missing" (absent).
        telemetry.registry.counter("serve.ann.lists_probed");
        telemetry.registry.counter("serve.ann.rows_scanned");
        self.shard = self.shard.with_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
        self
    }

    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Restore `checkpoint` into `model` (same architecture it was saved
    /// from), then serve it. This is the deployment path: train offline,
    /// `wr_nn::save_params`, ship the file, load here.
    pub fn from_checkpoint(
        model: Box<dyn SeqRecModel>,
        checkpoint: impl AsRef<Path>,
        cfg: ServeConfig,
    ) -> Result<Self, CheckpointError> {
        let loaded = load_params(checkpoint)?;
        restore_params(&model.params(), &loaded)?;
        Ok(ServeEngine::new(model, cfg))
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &crate::EmbeddingCache {
        self.shard.cache()
    }

    /// The full-catalog scoring core (window offset 0) this engine wraps.
    pub fn shard(&self) -> &CatalogShard {
        &self.shard
    }

    pub fn model_name(&self) -> String {
        self.model.name()
    }

    pub fn n_items(&self) -> usize {
        self.shard.n_items()
    }

    /// Encode one group of histories and score them against the cache.
    fn score_group(&self, contexts: &[&[usize]]) -> Tensor {
        let users = self.model.user_representations(contexts);
        users.matmul(self.shard.cache().items_t())
    }

    /// Answer a batch of queries. Requests are micro-batched in arrival
    /// order; responses come back in the same order.
    ///
    /// Degraded-mode behavior: a micro-batch that panics is retried up to
    /// [`ResilienceConfig::retry`] times with exponential backoff; if it
    /// still fails, its requests are re-scored one at a time so a single
    /// poisoned request fails alone (empty item list) while its batch
    /// peers get their normal, bit-identical answers. Score rows carrying
    /// NaN/+Inf fall back to a full-sort path that skips non-finite
    /// candidates (counted as `serve.quarantined_rows`).
    pub fn serve(&self, requests: &[Request]) -> Vec<Response> {
        let mut responses = Vec::with_capacity(requests.len());
        for (batch_index, group) in self.batcher.plan(requests.len()).into_iter().enumerate() {
            // The batcher's plan covers 0..len by contract; the checked
            // slice keeps a buggy plan from panicking mid-batch.
            let Some(slice) = requests.get(group.clone()) else {
                continue;
            };
            // Deterministic trace identity for this micro-batch — pure
            // function of (first request id, batch index), so a replay
            // harness predicts it without plumbing state through us.
            let ctx = TraceContext::root(
                slice.first().map(|r| r.id).unwrap_or(0),
                batch_index as u64,
            );
            let span = self.telemetry.as_ref().map(|tel| {
                tel.registry.counter("serve.batches").inc();
                tel.registry.counter("serve.requests").add(slice.len() as u64);
                tel.registry
                    .counter("serve.cache_scored_rows")
                    .add(slice.len() as u64);
                tel.registry
                    .gauge("serve.queue_depth")
                    .set((requests.len() - group.end) as f64);
                tel.tracer.span_ctx("batch", "serve", ctx)
            });
            responses.extend(self.serve_group_with_recovery(slice, ctx));
            drop(span);
        }
        responses
    }

    /// [`ServeEngine::serve`] behind admission control: calls carrying
    /// more than [`ResilienceConfig::max_queue_depth`] requests are
    /// rejected outright (typed, counted) instead of queuing unbounded
    /// work behind the micro-batcher.
    pub fn try_serve(&self, requests: &[Request]) -> Result<Vec<Response>, ServeError> {
        let limit = self.shard.resilience().max_queue_depth;
        if requests.len() > limit {
            if let Some(tel) = &self.telemetry {
                tel.registry.counter("serve.rejected_overload").inc();
                tel.flight.note(
                    "overload",
                    "serve.admission",
                    TraceContext::UNTRACED,
                    u64::MAX,
                    u64::MAX,
                    tel.clock.now_ns(),
                );
                tel.flight.trigger("overload");
            }
            return Err(ServeError::Overloaded {
                depth: requests.len(),
                limit,
            });
        }
        Ok(self.serve(requests))
    }

    /// [`ServeEngine::try_serve`] under a request deadline: a budget that
    /// is already spent at clock reading `now_ns` is rejected outright
    /// ([`ServeError::DeadlineExceeded`]) — answering after the caller
    /// stopped listening is wasted work. The clock reading is the
    /// caller's (virtual time flows through `wr_obs::Clock`, so tests
    /// drive this with a [`wr_obs::MockClock`]); an unlimited budget
    /// never rejects.
    pub fn try_serve_deadline(
        &self,
        requests: &[Request],
        deadline: DeadlineBudget,
        now_ns: u64,
    ) -> Result<Vec<Response>, ServeError> {
        if deadline.expired(now_ns) {
            if let Some(tel) = &self.telemetry {
                tel.flight.note(
                    "deadline",
                    "serve.admission",
                    TraceContext::UNTRACED,
                    u64::MAX,
                    u64::MAX,
                    tel.clock.now_ns(),
                );
            }
            return Err(ServeError::DeadlineExceeded {
                elapsed_ns: deadline.elapsed_ns(now_ns),
                budget_ns: deadline.budget_ns,
            });
        }
        self.try_serve(requests)
    }

    /// Run one micro-batch with containment: panic → bounded retry with
    /// backoff → per-request isolation. Lives on the engine (not the
    /// shard) so the model forward is inside the containment boundary;
    /// per attempt the histories are re-encoded and the shard re-scores.
    fn serve_group_with_recovery(&self, slice: &[Request], ctx: TraceContext) -> Vec<Response> {
        let policy = self.shard.resilience().retry;
        for attempt in 0..policy.max_attempts {
            match catch_unwind(AssertUnwindSafe(|| self.process_group(slice, attempt, ctx))) {
                Ok(responses) => return responses,
                Err(_payload) => {
                    if let Some(tel) = &self.telemetry {
                        tel.registry.counter("serve.retries").inc();
                        tel.flight.note(
                            "retry",
                            "serve.row",
                            ctx,
                            u64::MAX,
                            u64::MAX,
                            tel.clock.now_ns(),
                        );
                    }
                    if attempt + 1 < policy.max_attempts {
                        self.shard.sleeper().sleep_ns(policy.delay_ns(attempt));
                    }
                }
            }
        }
        // The batch keeps dying: isolate requests so the poisoned one
        // fails alone. Single-request scoring is bit-identical to batched
        // scoring (the differential suite's contract), so the survivors'
        // answers match what the healthy batch would have produced.
        let mut permanent = false;
        let out: Vec<Response> = slice
            .iter()
            .map(|req| {
                let one = std::slice::from_ref(req);
                match catch_unwind(AssertUnwindSafe(|| {
                    self.process_group(one, policy.max_attempts, ctx)
                })) {
                    Ok(mut responses) => responses.pop().unwrap_or(Response {
                        id: req.id,
                        items: Vec::new(),
                    }),
                    Err(_) => {
                        if let Some(tel) = &self.telemetry {
                            tel.flight.note(
                                "panic",
                                "serve.row",
                                ctx,
                                req.id,
                                u64::MAX,
                                tel.clock.now_ns(),
                            );
                        }
                        permanent = true;
                        Response {
                            id: req.id,
                            items: Vec::new(),
                        }
                    }
                }
            })
            .collect();
        if permanent {
            if let Some(tel) = &self.telemetry {
                tel.flight.trigger("permanent-panic");
            }
        }
        out
    }

    /// Encode one micro-batch and hand it to the scoring core. May panic
    /// (induced faults or genuine bugs); the caller contains it.
    /// `attempt` feeds the injector so transient faults clear on retry.
    fn process_group(&self, slice: &[Request], attempt: u32, ctx: TraceContext) -> Vec<Response> {
        let contexts: Vec<&[usize]> = slice
            .iter()
            .map(|r| MicroBatcher::sanitize(&r.history))
            .collect();
        let users = self.model.user_representations(&contexts);
        self.shard.process_encoded_ctx(slice, &users, attempt, ctx)
    }

    /// Reference scorer for the differential tests: one user at a time, no
    /// micro-batching, no bounded heap — a full sort of every score row
    /// under the same (`total_cmp`, ascending index) policy, then filter
    /// and truncate. Deliberately shares *no* extraction code with
    /// [`ServeEngine::serve`] beyond the model forward and the cache.
    pub fn serve_naive(&self, requests: &[Request]) -> Vec<Response> {
        requests
            .iter()
            .map(|req| {
                let ctx = MicroBatcher::sanitize(&req.history);
                let scores = self.score_group(&[ctx]);
                let row = scores.row(0);
                let mut order: Vec<usize> = (0..row.len()).collect();
                order.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
                let mut excluded = vec![false; row.len()];
                if self.cfg.filter_seen {
                    for &h in &req.history {
                        if h < excluded.len() {
                            excluded[h] = true;
                        }
                    }
                }
                let items: Vec<ScoredItem> = order
                    .into_iter()
                    .filter(|&i| !excluded[i])
                    .take(self.cfg.k)
                    .map(|i| ScoredItem {
                        item: i,
                        score: row[i],
                    })
                    .collect();
                Response { id: req.id, items }
            })
            .collect()
    }

    /// Single-query convenience (the interactive path). Honors the active
    /// [`Scorer`], so an IVF engine answers interactively through the
    /// same index as its batch path.
    pub fn recommend(&self, history: &[usize]) -> Vec<ScoredItem> {
        let ctx = MicroBatcher::sanitize(history);
        let users = self.model.user_representations(&[ctx]);
        self.shard.recommend_encoded(history, &users)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_tensor::Rng64;

    fn tiny_engine(filter_seen: bool) -> ServeEngine {
        let mut rng = Rng64::seed_from(17);
        let config = ModelConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            max_seq: 8,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let model = SasRec::new(
            "unit",
            Box::new(IdTower::new(30, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        );
        ServeEngine::new(
            Box::new(model),
            ServeConfig {
                k: 5,
                max_batch: 4,
                max_seq: 8,
                filter_seen,
            },
        )
    }

    #[test]
    fn serve_answers_every_request_in_order() {
        let engine = tiny_engine(true);
        let requests: Vec<Request> = (0..11)
            .map(|i| Request {
                id: 100 + i as u64,
                history: vec![(i % 7) + 1, (i % 5) + 2],
            })
            .collect();
        let responses = engine.serve(&requests);
        assert_eq!(responses.len(), 11);
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(req.id, resp.id);
            assert_eq!(resp.items.len(), 5);
            for s in &resp.items {
                assert!(!req.history.contains(&s.item), "seen item recommended");
                assert!(s.item < engine.n_items());
            }
            // Best-first ordering.
            for w in resp.items.windows(2) {
                assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].item < w[1].item)
                );
            }
        }
    }

    #[test]
    fn filter_seen_toggle_changes_candidates() {
        let with = tiny_engine(true);
        let without = tiny_engine(false);
        let req = Request {
            id: 1,
            history: vec![3, 4, 5],
        };
        for s in &with.serve(&[req.clone()])[0].items {
            assert!(![3usize, 4, 5].contains(&s.item));
        }
        // Without filtering the candidate pool is strictly larger; results
        // must still be internally consistent.
        let resp = without.serve(&[req])[0].clone();
        assert_eq!(resp.items.len(), 5);
    }

    #[test]
    fn recommend_matches_serve_single() {
        let engine = tiny_engine(true);
        let history = vec![2, 9, 4];
        let solo = engine.recommend(&history);
        let served = engine.serve(&[Request { id: 7, history }]);
        assert_eq!(solo, served[0].items);
    }

    #[test]
    fn empty_history_is_served() {
        let engine = tiny_engine(true);
        let resp = engine.serve(&[Request {
            id: 0,
            history: Vec::new(),
        }]);
        assert_eq!(resp[0].items.len(), 5);
    }

    #[test]
    fn cache_is_shared_not_copied() {
        let engine = tiny_engine(true);
        let handle = engine.cache().clone();
        assert!(handle.shares_storage_with(engine.cache()));
    }

    #[test]
    fn engine_shard_covers_the_whole_catalog_at_offset_zero() {
        let engine = tiny_engine(true);
        assert_eq!(engine.shard().item_offset(), 0);
        assert_eq!(engine.shard().item_range(), 0..engine.n_items());
    }
}
