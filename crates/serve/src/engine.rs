//! The serving engine: checkpoint → shared cache → batched top-k answers.

use std::path::Path;

use crate::{batch_top_k, top_k_filtered, BatcherConfig, EmbeddingCache, MicroBatcher, ScoredItem};
use wr_nn::{load_params, restore_params, CheckpointError};
use wr_obs::Telemetry;
use wr_tensor::Tensor;
use wr_train::SeqRecModel;

/// One top-k query: an opaque request id plus the user's session history
/// (most recent item last, the convention of `wr_data`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub history: Vec<usize>,
}

/// The answer to one [`Request`]: up to `k` items, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: u64,
    pub items: Vec<ScoredItem>,
}

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Recommendations per query.
    pub k: usize,
    /// Micro-batch row bound.
    pub max_batch: usize,
    /// Padded sequence length (must equal the model's training `max_seq`).
    pub max_seq: usize,
    /// Exclude items already in the user's history from the candidates
    /// (the RecBole convention the offline eval uses).
    pub filter_seen: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: 10,
            max_batch: 64,
            max_seq: 20,
            filter_seen: true,
        }
    }
}

/// Online inference over a trained sequential recommender.
///
/// Construction snapshots the model's item representations into an
/// [`EmbeddingCache`] (for WhitenRec: whitened table → trained projection
/// head, baked into one frozen `V`), so per-query work is only
///
/// ```text
/// encode histories → users: [b, d]   (transformer forward, batched)
/// score            → users · Vᵀ      (one gemm against the shared cache)
/// extract          → top-k per row   (bounded heap, pool-parallel)
/// ```
///
/// # Scoring contract
///
/// The engine scores by raw inner product against the cached `V`, which
/// reproduces `model.score` bit-for-bit for every Softmax-loss model in
/// the zoo (the WhitenRec family, SASRec variants). Cosine-loss models
/// (UniSRec) normalize inside `score`; serve those by caching normalized
/// representations upstream or fall back to [`ServeEngine::serve_naive`]
/// semantics at the call site.
pub struct ServeEngine {
    model: Box<dyn SeqRecModel>,
    cache: EmbeddingCache,
    batcher: MicroBatcher,
    cfg: ServeConfig,
    /// Optional write-only telemetry: per-micro-batch spans, request/batch
    /// counters, a queue-depth gauge. Never consulted when producing
    /// responses — the differential suite asserts instrumented ==
    /// uninstrumented bit-for-bit.
    telemetry: Option<Telemetry>,
}

impl ServeEngine {
    /// Serve an in-memory model.
    pub fn new(model: Box<dyn SeqRecModel>, cfg: ServeConfig) -> Self {
        let cache = EmbeddingCache::from_model(model.as_ref());
        let batcher = MicroBatcher::new(BatcherConfig {
            max_batch: cfg.max_batch,
            max_seq: cfg.max_seq,
        });
        ServeEngine {
            model,
            cache,
            batcher,
            cfg,
            telemetry: None,
        }
    }

    /// Attach telemetry (builder-style). Serving records, per micro-batch:
    /// a `serve.batch` span, `serve.requests` / `serve.batches` counters, a
    /// `serve.cache_scored_rows` counter (rows scored against the shared
    /// cache — the cache-share signal: every row of every batch hits the
    /// same `Arc`'d matrix), and the `serve.queue_depth` gauge (requests
    /// still waiting after the current batch).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Restore `checkpoint` into `model` (same architecture it was saved
    /// from), then serve it. This is the deployment path: train offline,
    /// `wr_nn::save_params`, ship the file, load here.
    pub fn from_checkpoint(
        model: Box<dyn SeqRecModel>,
        checkpoint: impl AsRef<Path>,
        cfg: ServeConfig,
    ) -> Result<Self, CheckpointError> {
        let loaded = load_params(checkpoint)?;
        restore_params(&model.params(), &loaded)?;
        Ok(ServeEngine::new(model, cfg))
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &EmbeddingCache {
        &self.cache
    }

    pub fn model_name(&self) -> String {
        self.model.name()
    }

    pub fn n_items(&self) -> usize {
        self.cache.n_items()
    }

    /// Encode one group of histories and score them against the cache.
    fn score_group(&self, contexts: &[&[usize]]) -> Tensor {
        let users = self.model.user_representations(contexts);
        users.matmul(self.cache.items_t())
    }

    /// Answer a batch of queries. Requests are micro-batched in arrival
    /// order; responses come back in the same order.
    pub fn serve(&self, requests: &[Request]) -> Vec<Response> {
        let mut responses = Vec::with_capacity(requests.len());
        for group in self.batcher.plan(requests.len()) {
            let slice = &requests[group.clone()];
            let span = self.telemetry.as_ref().map(|tel| {
                tel.registry.counter("serve.batches").inc();
                tel.registry.counter("serve.requests").add(slice.len() as u64);
                tel.registry
                    .counter("serve.cache_scored_rows")
                    .add(slice.len() as u64);
                tel.registry
                    .gauge("serve.queue_depth")
                    .set((requests.len() - group.end) as f64);
                tel.tracer.span(format!("batch[{}]", slice.len()), "serve")
            });
            let contexts: Vec<&[usize]> = slice
                .iter()
                .map(|r| MicroBatcher::sanitize(&r.history))
                .collect();
            let scores = self.score_group(&contexts);
            let seen: Vec<&[usize]> = slice
                .iter()
                .map(|r| {
                    if self.cfg.filter_seen {
                        r.history.as_slice()
                    } else {
                        &[]
                    }
                })
                .collect();
            let lists = batch_top_k(&scores, self.cfg.k, &seen);
            for (req, items) in slice.iter().zip(lists) {
                responses.push(Response { id: req.id, items });
            }
            drop(span);
        }
        responses
    }

    /// Reference scorer for the differential tests: one user at a time, no
    /// micro-batching, no bounded heap — a full sort of every score row
    /// under the same (`total_cmp`, ascending index) policy, then filter
    /// and truncate. Deliberately shares *no* extraction code with
    /// [`ServeEngine::serve`] beyond the model forward and the cache.
    pub fn serve_naive(&self, requests: &[Request]) -> Vec<Response> {
        requests
            .iter()
            .map(|req| {
                let ctx = MicroBatcher::sanitize(&req.history);
                let scores = self.score_group(&[ctx]);
                let row = scores.row(0);
                let mut order: Vec<usize> = (0..row.len()).collect();
                order.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
                let mut excluded = vec![false; row.len()];
                if self.cfg.filter_seen {
                    for &h in &req.history {
                        if h < excluded.len() {
                            excluded[h] = true;
                        }
                    }
                }
                let items: Vec<ScoredItem> = order
                    .into_iter()
                    .filter(|&i| !excluded[i])
                    .take(self.cfg.k)
                    .map(|i| ScoredItem {
                        item: i,
                        score: row[i],
                    })
                    .collect();
                Response { id: req.id, items }
            })
            .collect()
    }

    /// Single-query convenience (the interactive path).
    pub fn recommend(&self, history: &[usize]) -> Vec<ScoredItem> {
        let ctx = MicroBatcher::sanitize(history);
        let scores = self.score_group(&[ctx]);
        let seen: &[usize] = if self.cfg.filter_seen { history } else { &[] };
        top_k_filtered(scores.row(0), self.cfg.k, seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_tensor::Rng64;

    fn tiny_engine(filter_seen: bool) -> ServeEngine {
        let mut rng = Rng64::seed_from(17);
        let config = ModelConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            max_seq: 8,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let model = SasRec::new(
            "unit",
            Box::new(IdTower::new(30, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        );
        ServeEngine::new(
            Box::new(model),
            ServeConfig {
                k: 5,
                max_batch: 4,
                max_seq: 8,
                filter_seen,
            },
        )
    }

    #[test]
    fn serve_answers_every_request_in_order() {
        let engine = tiny_engine(true);
        let requests: Vec<Request> = (0..11)
            .map(|i| Request {
                id: 100 + i as u64,
                history: vec![(i % 7) + 1, (i % 5) + 2],
            })
            .collect();
        let responses = engine.serve(&requests);
        assert_eq!(responses.len(), 11);
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(req.id, resp.id);
            assert_eq!(resp.items.len(), 5);
            for s in &resp.items {
                assert!(!req.history.contains(&s.item), "seen item recommended");
                assert!(s.item < engine.n_items());
            }
            // Best-first ordering.
            for w in resp.items.windows(2) {
                assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].item < w[1].item)
                );
            }
        }
    }

    #[test]
    fn filter_seen_toggle_changes_candidates() {
        let with = tiny_engine(true);
        let without = tiny_engine(false);
        let req = Request {
            id: 1,
            history: vec![3, 4, 5],
        };
        for s in &with.serve(&[req.clone()])[0].items {
            assert!(![3usize, 4, 5].contains(&s.item));
        }
        // Without filtering the candidate pool is strictly larger; results
        // must still be internally consistent.
        let resp = without.serve(&[req])[0].clone();
        assert_eq!(resp.items.len(), 5);
    }

    #[test]
    fn recommend_matches_serve_single() {
        let engine = tiny_engine(true);
        let history = vec![2, 9, 4];
        let solo = engine.recommend(&history);
        let served = engine.serve(&[Request { id: 7, history }]);
        assert_eq!(solo, served[0].items);
    }

    #[test]
    fn empty_history_is_served() {
        let engine = tiny_engine(true);
        let resp = engine.serve(&[Request {
            id: 0,
            history: Vec::new(),
        }]);
        assert_eq!(resp[0].items.len(), 5);
    }

    #[test]
    fn cache_is_shared_not_copied() {
        let engine = tiny_engine(true);
        let handle = engine.cache().clone();
        assert!(handle.shares_storage_with(engine.cache()));
    }
}
