//! # wr-serve — online batched inference for the WhitenRec reproduction
//!
//! Everything before this crate scores items inside offline experiment
//! loops. `wr-serve` turns a trained checkpoint plus the paper's central
//! artifact — the frozen, pre-whitened item-embedding table (Eq. 4–6) —
//! into a subsystem that answers top-k next-item queries for batches of
//! live user histories:
//!
//! * [`MicroBatcher`] packs variable-length session histories into
//!   fixed-shape batches (left padding + length masking, the exact
//!   `wr_data::Batch` conventions the models were trained with);
//! * [`EmbeddingCache`] stores the projected item matrix `V` (and its
//!   transpose) once behind `Arc`s, so every worker thread of the
//!   `wr-runtime` pool scores against the same buffer — no per-request
//!   copies;
//! * [`ServeEngine`] restores a `wr_nn::checkpoint`, encodes each
//!   micro-batch of histories, scores `users · Vᵀ`, and extracts top-k
//!   with seen-item filtering via the bounded-heap scorer shared with
//!   `wr_eval` ([`wr_eval::top_k_filtered`]), parallelized over the batch;
//! * [`CatalogShard`] is the `Sync` half of the engine on its own: one
//!   (window of the) frozen catalog plus quarantine/retry/ANN machinery,
//!   scoring *pre-encoded* user representations — the unit `wr-gateway`
//!   fans out across the pool while the non-`Sync` model stays on the
//!   caller thread;
//! * [`QueryLog`] + [`replay`] record/replay query traffic (uniform or
//!   Zipf user-skewed synthetic generation) and report p50/p95/p99
//!   latency and QPS as a JSON document shaped like the
//!   `wr_bench::harness` export (`serve-bench` in `wr-core` is the CLI).
//!
//! # Determinism contract
//!
//! Serving results are *bit-identical* across
//!
//! 1. batch compositions — the response for a history does not depend on
//!    which other histories shared its micro-batch, because every kernel on
//!    the scoring path (gemm, attention, layer norm) computes each batch
//!    row with the same arithmetic sequence regardless of neighbors;
//! 2. thread counts — all parallelism goes through `wr-runtime`, whose
//!    chunking is thread-count-independent.
//!
//! Both claims are enforced by `tests/differential.rs`, which compares the
//! batched engine against a naive one-user-at-a-time full-sort scorer and
//! against itself under `WR_THREADS=1` vs `8`.
//!
//! # Degraded mode
//!
//! The engine stays up when individual requests go bad ([`ServeEngine`]
//! docs): [`ServeEngine::try_serve`] applies admission control
//! ([`ServeError::Overloaded`]), micro-batches that panic are retried
//! with bounded backoff and then re-scored one request at a time so a
//! poisoned request fails alone, and non-finite embeddings/scores are
//! quarantined (masked items, full-sort fallback rows). `wr_fault`
//! injects these failures deterministically in `tests/degraded.rs`.

mod batcher;
mod cache;
mod engine;
mod latency;
mod querylog;
mod shard;
pub mod topk;

pub use batcher::{BatcherConfig, MicroBatch, MicroBatcher};
pub use cache::EmbeddingCache;
pub use engine::{Request, ResilienceConfig, Response, Scorer, ServeConfig, ServeEngine, ServeError};
pub use latency::{replay, replay_observed, top1_digest, ReplayReport};
pub use querylog::{QueryLog, QueryLogError, ZipfError};
pub use shard::CatalogShard;
pub use topk::{batch_top_k, batch_top_k_shifted, merge_top_k};

pub use wr_ann::{AnnError, IvfIndex, SearchStats};
pub use wr_eval::{top_k_filtered, ScoredItem};
