//! Request micro-batching: variable-length histories → fixed-shape batches.

use std::ops::Range;

use wr_data::{Batch, PAD_ITEM};

/// Knobs for the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum rows per packed batch.
    pub max_batch: usize,
    /// Fixed sequence length every history is padded/truncated to (must
    /// match the served model's `max_seq`, or positions will disagree with
    /// the training-time layout).
    pub max_seq: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_seq: 20,
        }
    }
}

/// One packed batch: the padded [`Batch`] plus the request rows it covers.
#[derive(Debug, Clone)]
pub struct MicroBatch {
    /// Fixed-shape inference batch (`[len, max_seq]`, left-padded).
    pub batch: Batch,
    /// Range of request indices (in arrival order) this batch covers.
    pub requests: Range<usize>,
}

/// Packs request histories into bounded, fixed-shape inference batches.
///
/// Requests are grouped *in arrival order* — no reordering, no
/// length-bucketing — so responses can be stitched back positionally and
/// results are independent of queue timing. Each group is at most
/// `max_batch` rows; within a group, histories are left-padded to
/// `max_seq` with [`PAD_ITEM`] and truncated to their most recent
/// `max_seq` items, exactly as [`Batch::inference`] does for the offline
/// evaluation path (pad positions are excluded from attention by the
/// length masks the models build from `Batch::lengths`).
///
/// Empty histories (brand-new sessions) are mapped to the single-item
/// context `[PAD_ITEM]`: the pad embedding is the model's "no signal"
/// vector, so cold users get the model's unconditional ranking instead of
/// a panic.
#[derive(Debug, Clone, Copy)]
pub struct MicroBatcher {
    cfg: BatcherConfig,
}

/// The fallback context for an empty history.
const EMPTY_HISTORY: [usize; 1] = [PAD_ITEM];

impl MicroBatcher {
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.max_seq >= 1, "max_seq must be at least 1");
        MicroBatcher { cfg }
    }

    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Substitute the pad-token context for empty histories.
    pub fn sanitize<'a>(history: &'a [usize]) -> &'a [usize] {
        if history.is_empty() {
            &EMPTY_HISTORY
        } else {
            history
        }
    }

    /// Split `n` requests (by index, arrival order) into batch-sized ranges.
    ///
    /// The decomposition depends only on `n` and `max_batch` — never on
    /// thread count or history contents — so a replay packs identically
    /// every time.
    pub fn plan(&self, n: usize) -> Vec<Range<usize>> {
        let mut groups = Vec::with_capacity(n.div_ceil(self.cfg.max_batch.max(1)));
        let mut start = 0;
        while start < n {
            let end = (start + self.cfg.max_batch).min(n);
            groups.push(start..end);
            start = end;
        }
        groups
    }

    /// Pack histories into padded fixed-shape batches.
    pub fn pack(&self, histories: &[&[usize]]) -> Vec<MicroBatch> {
        self.plan(histories.len())
            .into_iter()
            .map(|range| {
                let contexts: Vec<&[usize]> = histories[range.clone()]
                    .iter()
                    .map(|h| Self::sanitize(h))
                    .collect();
                MicroBatch {
                    batch: Batch::inference(&contexts, self.cfg.max_seq),
                    requests: range,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(max_batch: usize, max_seq: usize) -> MicroBatcher {
        MicroBatcher::new(BatcherConfig { max_batch, max_seq })
    }

    #[test]
    fn plan_covers_all_requests_in_order() {
        let b = batcher(4, 8);
        assert_eq!(b.plan(0), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(b.plan(3), vec![0..3]);
        assert_eq!(b.plan(4), vec![0..4]);
        assert_eq!(b.plan(10), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn pack_produces_fixed_shape_left_padded_batches() {
        let b = batcher(2, 4);
        let h1: &[usize] = &[5, 6];
        let h2: &[usize] = &[1, 2, 3, 4, 5, 6, 7]; // truncated to last 4
        let h3: &[usize] = &[9];
        let packed = b.pack(&[h1, h2, h3]);
        assert_eq!(packed.len(), 2);
        let first = &packed[0];
        assert_eq!(first.requests, 0..2);
        assert_eq!(first.batch.seq, 4);
        assert_eq!(&first.batch.items[0..4], &[PAD_ITEM, PAD_ITEM, 5, 6]);
        assert_eq!(&first.batch.items[4..8], &[4, 5, 6, 7]);
        assert_eq!(first.batch.lengths, vec![2, 4]);
        let second = &packed[1];
        assert_eq!(second.requests, 2..3);
        assert_eq!(&second.batch.items[0..4], &[PAD_ITEM, PAD_ITEM, PAD_ITEM, 9]);
        // Inference batches never carry training targets.
        assert!(first.batch.targets.is_empty());
    }

    #[test]
    fn empty_history_becomes_pad_context() {
        let b = batcher(8, 3);
        let empty: &[usize] = &[];
        let packed = b.pack(&[empty]);
        assert_eq!(packed.len(), 1);
        assert_eq!(&packed[0].batch.items[..], &[PAD_ITEM, PAD_ITEM, PAD_ITEM]);
        assert_eq!(packed[0].batch.lengths, vec![1]);
    }

    #[test]
    fn plan_is_independent_of_thread_count() {
        let b = batcher(3, 4);
        wr_runtime::set_threads(1);
        let p1 = b.plan(11);
        wr_runtime::set_threads(8);
        let p8 = b.plan(11);
        wr_runtime::set_threads(1);
        assert_eq!(p1, p8);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_rejected() {
        MicroBatcher::new(BatcherConfig {
            max_batch: 0,
            max_seq: 4,
        });
    }
}
