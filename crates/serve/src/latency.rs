//! Query-log replay with latency percentiles and throughput.
//!
//! `wr_bench` cannot be used here (it depends on the workspace root, which
//! would close a dependency cycle), so this module carries its own timing
//! and emits JSON in the same `{"suite": ..., "benches": [...]}` shape as
//! `wr_bench::harness`, extended with percentile fields — downstream
//! tooling that diffs bench exports parses both.

use std::time::Instant;

use crate::{QueryLog, Request, Response, ServeEngine};

/// Latency/throughput summary of one query-log replay.
///
/// Latency is *batch-attributed*: each query's latency is the wall time of
/// the micro-batch `serve` call that answered it, which is what a caller
/// awaiting that batch would observe. Timing numbers vary run to run (they
/// are measurements, not results); the served responses themselves are
/// deterministic, and `top1_checksum` digests them so a replay's output
/// can be asserted stable across thread counts.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Queries replayed.
    pub n_queries: usize,
    /// Micro-batches dispatched.
    pub n_batches: usize,
    /// End-to-end wall time of the replay loop, seconds.
    pub total_s: f64,
    /// Queries per second over the whole replay.
    pub qps: f64,
    /// Mean per-query latency, milliseconds.
    pub mean_ms: f64,
    /// Fastest per-query latency, milliseconds.
    pub min_ms: f64,
    /// Latency percentiles (nearest-rank), milliseconds.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Order-sensitive digest of `(id, top-1 item)` over all responses;
    /// thread-count- and batch-composition-independent for a deterministic
    /// engine.
    pub top1_checksum: u64,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn checksum(responses: &[Response]) -> u64 {
    let mut acc = 0xcbf29ce484222325u64; // FNV offset basis
    for r in responses {
        let top = r.items.first().map_or(u64::MAX, |s| s.item as u64);
        acc = acc.wrapping_mul(0x100000001b3).wrapping_add(r.id ^ top);
    }
    acc
}

/// Replay `log` through `engine` one micro-batch at a time, timing each
/// batch, and return every response plus the latency report.
///
/// The log is split into groups of the engine's `max_batch` (the same
/// grouping [`crate::MicroBatcher::plan`] produces), so each timed `serve`
/// call dispatches exactly one packed batch.
pub fn replay(engine: &ServeEngine, log: &QueryLog) -> (Vec<Response>, ReplayReport) {
    let max_batch = engine.config().max_batch.max(1);
    let mut responses: Vec<Response> = Vec::with_capacity(log.len());
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(log.len());
    let mut n_batches = 0usize;

    // wr-check: allow(R4) — serve-side latency measurement is this
    // module's purpose; timing never feeds back into served results.
    let replay_start = Instant::now();
    let mut start = 0;
    while start < log.len() {
        let end = (start + max_batch).min(log.len());
        let group: &[Request] = &log.queries[start..end];
        // wr-check: allow(R4) — per-batch wall clock for the latency
        // percentiles; measurement only, results are unaffected.
        let t = Instant::now();
        let answered = engine.serve(group);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        // Every query in the batch waited for the whole batch.
        latencies_ms.extend(std::iter::repeat(ms).take(group.len()));
        responses.extend(answered);
        n_batches += 1;
        start = end;
    }
    let total_s = replay_start.elapsed().as_secs_f64();

    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let report = ReplayReport {
        n_queries: log.len(),
        n_batches,
        total_s,
        qps: if total_s > 0.0 {
            log.len() as f64 / total_s
        } else {
            0.0
        },
        mean_ms,
        min_ms: sorted.first().copied().unwrap_or(0.0),
        p50_ms: percentile(&sorted, 50.0),
        p95_ms: percentile(&sorted, 95.0),
        p99_ms: percentile(&sorted, 99.0),
        top1_checksum: checksum(&responses),
    };
    (responses, report)
}

impl ReplayReport {
    /// Compact JSON in the `wr_bench::harness` export shape:
    /// `{"suite":"serve-bench","benches":[{...}]}` with one bench entry
    /// carrying the percentile and throughput fields.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":\"serve-bench\",\"benches\":[{\"name\":\"replay\",\"iters\":");
        wr_tensor::json::write_f64(&mut out, self.n_queries as f64);
        for (key, val) in [
            ("batches", self.n_batches as f64),
            ("total_s", self.total_s),
            ("qps", self.qps),
            ("mean_ms", self.mean_ms),
            ("min_ms", self.min_ms),
            ("p50_ms", self.p50_ms),
            ("p95_ms", self.p95_ms),
            ("p99_ms", self.p99_ms),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            wr_tensor::json::write_f64(&mut out, val);
        }
        out.push_str(",\"top1_checksum\":\"");
        out.push_str(&format!("{:016x}", self.top1_checksum));
        out.push_str("\"}]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServeEngine};
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_tensor::Rng64;

    fn tiny_engine() -> ServeEngine {
        let mut rng = Rng64::seed_from(23);
        let config = ModelConfig {
            dim: 8,
            heads: 2,
            blocks: 1,
            max_seq: 6,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let model = SasRec::new(
            "replay-unit",
            Box::new(IdTower::new(25, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        );
        ServeEngine::new(
            Box::new(model),
            ServeConfig {
                k: 3,
                max_batch: 8,
                max_seq: 6,
                filter_seen: true,
            },
        )
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn replay_answers_everything_and_reports() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(37, 25, 5, 2);
        let (responses, report) = replay(&engine, &log);
        assert_eq!(responses.len(), 37);
        assert_eq!(report.n_queries, 37);
        assert_eq!(report.n_batches, 5); // ceil(37 / 8)
        assert!(report.total_s > 0.0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
        assert!(report.min_ms <= report.mean_ms);
        // Replay responses match a direct serve of the same queries.
        let direct = engine.serve(&log.queries);
        assert_eq!(responses, direct);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(24, 25, 5, 4);
        wr_runtime::set_threads(1);
        let (_, r1) = replay(&engine, &log);
        wr_runtime::set_threads(8);
        let (_, r8) = replay(&engine, &log);
        wr_runtime::set_threads(1);
        assert_eq!(r1.top1_checksum, r8.top1_checksum);
    }

    #[test]
    fn report_json_parses_in_harness_shape() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(9, 25, 4, 6);
        let (_, report) = replay(&engine, &log);
        let parsed = wr_tensor::Json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("suite").unwrap().as_str().unwrap(), "serve-bench");
        let benches = parsed.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        let b = &benches[0];
        assert_eq!(b.get("name").unwrap().as_str().unwrap(), "replay");
        assert_eq!(b.get("iters").unwrap().as_usize().unwrap(), 9);
        for key in ["qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms"] {
            assert!(b.get(key).unwrap().as_f64().is_some(), "{key}");
        }
    }
}
