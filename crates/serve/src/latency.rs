//! Query-log replay with latency percentiles and throughput.
//!
//! `wr_bench` cannot be used here (it depends on the workspace root, which
//! would close a dependency cycle), so this module emits JSON in the same
//! `{"suite": ..., "benches": [...]}` shape as `wr_bench::harness`,
//! extended with percentile fields — downstream tooling that diffs bench
//! exports parses both.
//!
//! Timing flows through `wr-obs`: [`replay_observed`] reads the
//! telemetry's [`wr_obs::Clock`] (so tests can drive it with a
//! [`wr_obs::MockClock`]) and the percentile math is
//! [`wr_obs::nearest_rank`] — the single nearest-rank implementation
//! shared with the histogram type. This module contains no direct
//! `Instant::now` calls (wr-check R4 confines those to `crates/obs`).

use wr_obs::{nearest_rank, Histogram, Telemetry};

use crate::{QueryLog, Request, Response, ServeEngine};

/// Latency/throughput summary of one query-log replay.
///
/// Latency is *batch-attributed*: each query's latency is the wall time of
/// the micro-batch `serve` call that answered it, which is what a caller
/// awaiting that batch would observe. Timing numbers vary run to run (they
/// are measurements, not results); the served responses themselves are
/// deterministic, and `top1_checksum` digests them so a replay's output
/// can be asserted stable across thread counts.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Queries replayed.
    pub n_queries: usize,
    /// Micro-batches dispatched.
    pub n_batches: usize,
    /// End-to-end wall time of the replay loop, seconds.
    pub total_s: f64,
    /// Queries per second over the whole replay.
    pub qps: f64,
    /// Mean per-query latency, milliseconds.
    pub mean_ms: f64,
    /// Fastest per-query latency, milliseconds.
    pub min_ms: f64,
    /// Latency percentiles (nearest-rank), milliseconds.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Order-sensitive digest of `(id, top-1 item)` over all responses;
    /// thread-count- and batch-composition-independent for a deterministic
    /// engine.
    pub top1_checksum: u64,
}

/// Order-sensitive FNV-style digest of `(request id, top-1 item)` pairs
/// (`None` = empty/degraded response, digested as `u64::MAX`). This is
/// THE `top1_checksum` formula: the serve replay, the gateway replay, and
/// `scripts/check.sh`'s cross-binary comparisons all share it, so a
/// sharded replay can be asserted equal to a single-engine replay by
/// comparing two hex strings.
pub fn top1_digest(pairs: impl Iterator<Item = (u64, Option<usize>)>) -> u64 {
    let mut acc = 0xcbf29ce484222325u64; // FNV offset basis
    for (id, top) in pairs {
        let top = top.map_or(u64::MAX, |item| item as u64);
        acc = acc.wrapping_mul(0x100000001b3).wrapping_add(id ^ top);
    }
    acc
}

fn checksum(responses: &[Response]) -> u64 {
    top1_digest(responses.iter().map(|r| (r.id, r.items.first().map(|s| s.item))))
}

/// Replay `log` through `engine` one micro-batch at a time, timing each
/// batch on a fresh production clock, and return every response plus the
/// latency report. Equivalent to [`replay_observed`] with telemetry
/// nobody reads.
pub fn replay(engine: &ServeEngine, log: &QueryLog) -> (Vec<Response>, ReplayReport) {
    replay_observed(engine, log, &Telemetry::new())
}

/// [`replay`] with explicit telemetry: batch wall times come from
/// `telemetry.clock`, every per-query latency is also observed into the
/// `serve.latency_ms` histogram, the whole replay is wrapped in a
/// `replay` span, and the report percentiles are exact nearest-rank over
/// the raw batch-attributed samples (the histogram carries the same data
/// at bucket resolution for snapshot export).
///
/// The log is split into groups of the engine's `max_batch` (the same
/// grouping [`crate::MicroBatcher::plan`] produces), so each timed `serve`
/// call dispatches exactly one packed batch.
pub fn replay_observed(
    engine: &ServeEngine,
    log: &QueryLog,
    telemetry: &Telemetry,
) -> (Vec<Response>, ReplayReport) {
    let clock = &telemetry.clock;
    let latency_hist = telemetry
        .registry
        .histogram("serve.latency_ms", &Histogram::default_ms_bounds());
    let max_batch = engine.config().max_batch.max(1);
    let mut responses: Vec<Response> = Vec::with_capacity(log.len());
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(log.len());
    let mut n_batches = 0usize;

    let replay_start_ns = clock.now_ns();
    let mut start = 0;
    while start < log.len() {
        let end = (start + max_batch).min(log.len());
        let group: &[Request] = &log.queries[start..end];
        let t_ns = clock.now_ns();
        let answered = engine.serve(group);
        let ms = clock.now_ns().saturating_sub(t_ns) as f64 / 1e6;
        // Exemplar: each `serve(group)` call sees the group as its batch
        // 0, so this is exactly the trace id `ServeEngine::serve` minted
        // for the batch span — the bucket joins back to the span tree.
        let trace_id = group
            .first()
            .map(|r| wr_obs::TraceContext::root(r.id, 0).trace_id)
            .unwrap_or(0);
        latency_hist.observe_exemplar(ms, trace_id);
        // Every query in the batch waited for the whole batch.
        latencies_ms.extend(std::iter::repeat(ms).take(group.len()));
        responses.extend(answered);
        n_batches += 1;
        start = end;
    }
    let end_ns = clock.now_ns();
    telemetry
        .tracer
        .record("replay", "serve", replay_start_ns, end_ns);
    let total_s = end_ns.saturating_sub(replay_start_ns) as f64 / 1e9;

    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let report = ReplayReport {
        n_queries: log.len(),
        n_batches,
        total_s,
        qps: if total_s > 0.0 {
            log.len() as f64 / total_s
        } else {
            0.0
        },
        mean_ms,
        min_ms: sorted.first().copied().unwrap_or(0.0),
        p50_ms: nearest_rank(&sorted, 50.0),
        p95_ms: nearest_rank(&sorted, 95.0),
        p99_ms: nearest_rank(&sorted, 99.0),
        top1_checksum: checksum(&responses),
    };
    (responses, report)
}

impl ReplayReport {
    /// Compact JSON in the `wr_bench::harness` export shape:
    /// `{"suite":"serve-bench","benches":[{...}]}` with one bench entry
    /// carrying the percentile and throughput fields.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":\"serve-bench\",\"benches\":[{\"name\":\"replay\",\"iters\":");
        wr_tensor::json::write_f64(&mut out, self.n_queries as f64);
        for (key, val) in [
            ("batches", self.n_batches as f64),
            ("total_s", self.total_s),
            ("qps", self.qps),
            ("mean_ms", self.mean_ms),
            ("min_ms", self.min_ms),
            ("p50_ms", self.p50_ms),
            ("p95_ms", self.p95_ms),
            ("p99_ms", self.p99_ms),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            wr_tensor::json::write_f64(&mut out, val);
        }
        out.push_str(",\"top1_checksum\":\"");
        out.push_str(&format!("{:016x}", self.top1_checksum));
        out.push_str("\"}]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServeEngine};
    use std::sync::Arc;
    use wr_models::{IdTower, LossKind, ModelConfig, SasRec};
    use wr_obs::MockClock;
    use wr_tensor::Rng64;

    fn tiny_engine() -> ServeEngine {
        let mut rng = Rng64::seed_from(23);
        let config = ModelConfig {
            dim: 8,
            heads: 2,
            blocks: 1,
            max_seq: 6,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let model = SasRec::new(
            "replay-unit",
            Box::new(IdTower::new(25, config.dim, &mut rng)),
            LossKind::Softmax,
            config,
            &mut rng,
        );
        ServeEngine::new(
            Box::new(model),
            ServeConfig {
                k: 3,
                max_batch: 8,
                max_seq: 6,
                filter_seen: true,
            },
        )
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        // The shared implementation — sanity-check it at the call site.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&xs, 50.0), 50.0);
        assert_eq!(nearest_rank(&xs, 95.0), 95.0);
        assert_eq!(nearest_rank(&xs, 99.0), 99.0);
        assert_eq!(nearest_rank(&[], 50.0), 0.0);
    }

    #[test]
    fn replay_answers_everything_and_reports() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(37, 25, 5, 2);
        let (responses, report) = replay(&engine, &log);
        assert_eq!(responses.len(), 37);
        assert_eq!(report.n_queries, 37);
        assert_eq!(report.n_batches, 5); // ceil(37 / 8)
        assert!(report.total_s > 0.0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
        assert!(report.min_ms <= report.mean_ms);
        // Replay responses match a direct serve of the same queries.
        let direct = engine.serve(&log.queries);
        assert_eq!(responses, direct);
    }

    #[test]
    fn mock_clock_makes_the_report_deterministic() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(20, 25, 5, 3);
        // Each clock read advances 1 ms. Reads per replay: 1 start + 2 per
        // batch + 1 end. Batch wall time = exactly 1 ms each.
        let clock = Arc::new(MockClock::with_tick(1_000_000));
        let tel = Telemetry::with_clock(clock);
        let (_, report) = replay_observed(&engine, &log, &tel);
        assert_eq!(report.n_batches, 3); // ceil(20 / 8)
        assert_eq!(report.p50_ms, 1.0);
        assert_eq!(report.p95_ms, 1.0);
        assert_eq!(report.p99_ms, 1.0);
        assert_eq!(report.mean_ms, 1.0);
        assert_eq!(report.min_ms, 1.0);
        // total = (1 + 2·3 + 1 − 1) ticks… exactly: reads happen at 0,
        // then start/end pairs; last read index = 7 → total 7 ms.
        assert!((report.total_s - 0.007).abs() < 1e-12, "{}", report.total_s);
        // The histogram saw one sample per batch.
        let snap = tel.registry.snapshot();
        let lat = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.latency_ms")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(lat.count, 3);
        assert_eq!(lat.min, 1.0);
        // And the replay span covers the whole run.
        let events = tel.tracer.events();
        assert!(events.iter().any(|e| e.name == "replay"));
    }

    #[test]
    fn engine_telemetry_records_batches_without_changing_results() {
        let log = QueryLog::synthetic(21, 25, 5, 9);
        let plain = tiny_engine();
        let expected = plain.serve(&log.queries);

        let tel = Telemetry::new();
        let observed_engine = tiny_engine().with_telemetry(tel.clone());
        let got = observed_engine.serve(&log.queries);
        assert_eq!(expected, got, "telemetry must be write-only");

        let snap = tel.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(counter("serve.requests"), 21);
        assert_eq!(counter("serve.batches"), 3); // ceil(21 / 8)
        assert_eq!(counter("serve.cache_scored_rows"), 21);
        let depth = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "serve.queue_depth")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(depth, 0.0, "after the last batch the queue is empty");
        // One span per micro-batch.
        assert_eq!(tel.tracer.events().len(), 3);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(24, 25, 5, 4);
        wr_runtime::set_threads(1);
        let (_, r1) = replay(&engine, &log);
        wr_runtime::set_threads(8);
        let (_, r8) = replay(&engine, &log);
        wr_runtime::set_threads(1);
        assert_eq!(r1.top1_checksum, r8.top1_checksum);
    }

    #[test]
    fn report_json_parses_in_harness_shape() {
        let engine = tiny_engine();
        let log = QueryLog::synthetic(9, 25, 4, 6);
        let (_, report) = replay(&engine, &log);
        let parsed = wr_tensor::Json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("suite").unwrap().as_str().unwrap(), "serve-bench");
        let benches = parsed.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        let b = &benches[0];
        assert_eq!(b.get("name").unwrap().as_str().unwrap(), "replay");
        assert_eq!(b.get("iters").unwrap().as_usize().unwrap(), 9);
        for key in ["qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms"] {
            assert!(b.get(key).unwrap().as_f64().is_some(), "{key}");
        }
    }
}
