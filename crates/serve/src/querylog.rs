//! Recorded query traffic: JSONL persistence + synthetic trace generation.

use std::io;
use std::path::Path;

use crate::Request;
use wr_tensor::{json::usize_array_to_string, Json, Rng64};

/// A recorded (or generated) sequence of serving requests, replayable via
/// [`crate::replay`]. On disk the log is JSON-lines, one request per line:
///
/// ```text
/// {"id":0,"history":[3,17,4]}
/// {"id":1,"history":[]}
/// ```
///
/// The format is append-friendly (a recorder can `>>` lines as queries
/// arrive) and line-diffable, matching the workspace's other sequence
/// files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLog {
    pub queries: Vec<Request>,
}

/// Why a query log failed to load.
#[derive(Debug)]
pub enum QueryLogError {
    Io(io::Error),
    /// A line was not a well-formed request object (1-based line number).
    Parse { line: usize, message: String },
}

impl std::fmt::Display for QueryLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryLogError::Io(e) => write!(f, "query log io: {e}"),
            QueryLogError::Parse { line, message } => {
                write!(f, "query log line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for QueryLogError {}

impl From<io::Error> for QueryLogError {
    fn from(e: io::Error) -> Self {
        QueryLogError::Io(e)
    }
}

/// Why a Zipf-skewed synthetic trace could not be generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ZipfError {
    /// The exponent must be finite and strictly positive: `α ≤ 0` is a
    /// uniform (or inverted) distribution pretending to be a power law,
    /// and NaN/∞ silently degenerate the CDF — both rejected outright
    /// instead of producing a quietly meaningless trace.
    BadAlpha(f64),
    /// At least one user is required to sample from.
    NoUsers,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::BadAlpha(a) => {
                write!(f, "zipf exponent must be finite and > 0, got {a}")
            }
            ZipfError::NoUsers => write!(f, "zipf trace needs at least one user"),
        }
    }
}

impl std::error::Error for ZipfError {}

impl QueryLog {
    /// Generate a reproducible synthetic trace: `n` queries over a catalog
    /// of `n_items`, history lengths uniform in `[0, max_len]` (length 0
    /// exercises the cold-session path), items uniform over the real
    /// catalog `1..n_items` (`0` is the pad id). The same `(n, n_items,
    /// max_len, seed)` always yields the same trace.
    pub fn synthetic(n: usize, n_items: usize, max_len: usize, seed: u64) -> QueryLog {
        assert!(n_items >= 2, "need at least one real item besides pad");
        let mut rng = Rng64::seed_from(seed);
        let queries = (0..n)
            .map(|i| {
                let len = rng.below(max_len + 1);
                let history = (0..len).map(|_| 1 + rng.below(n_items - 1)).collect();
                Request {
                    id: i as u64,
                    history,
                }
            })
            .collect();
        QueryLog { queries }
    }

    /// Generate a reproducible *user-skewed* synthetic trace: `n` queries
    /// whose issuing users are drawn Zipf(`alpha`)-distributed over a
    /// universe of `n_users` (rank 1 most popular — the head users of a
    /// production gateway's traffic), catalog/history conventions as in
    /// [`QueryLog::synthetic`].
    ///
    /// Each query's `id` is its sampled user id (`0..n_users`), and a
    /// user's history is a pure function of `(seed, user)` — the same
    /// user always replays the same session, so repeated queries from hot
    /// users look like real repeat traffic rather than fresh sessions.
    /// The whole trace is a pure function of its arguments: same inputs →
    /// same trace, bit for bit.
    ///
    /// `alpha` must be finite and strictly positive ([`ZipfError`]);
    /// `alpha → 0⁺` approaches uniform, `alpha ≈ 1` is classic web-trace
    /// skew. The CDF table costs `O(n_users)` memory — a 1M-user universe
    /// is ~8 MB, built once per generation.
    pub fn synthetic_zipf(
        n: usize,
        n_users: usize,
        n_items: usize,
        max_len: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<QueryLog, ZipfError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(ZipfError::BadAlpha(alpha));
        }
        if n_users == 0 {
            return Err(ZipfError::NoUsers);
        }
        assert!(n_items >= 2, "need at least one real item besides pad");
        // Cumulative Zipf weights: cum[u] = Σ_{r ≤ u} (r+1)^-alpha,
        // normalized at sample time so the table stays a plain prefix sum.
        let mut cum = Vec::with_capacity(n_users);
        let mut total = 0.0f64;
        for rank in 0..n_users {
            total += ((rank + 1) as f64).powf(-alpha);
            cum.push(total);
        }
        let mut rng = Rng64::seed_from(seed);
        let queries = (0..n)
            .map(|_| {
                let target = rng.uniform() as f64 * total;
                // First rank whose cumulative mass exceeds the target;
                // clamp covers target == total (uniform() < 1 makes this
                // unreachable, but the clamp keeps the lookup total).
                let user = cum.partition_point(|&c| c <= target).min(n_users - 1);
                // Per-user deterministic session: seed mixed with the
                // user id through the golden-ratio multiplier so nearby
                // users get uncorrelated streams.
                let mut user_rng =
                    Rng64::seed_from(seed ^ (user as u64).wrapping_mul(0x9E3779B97F4A7C15));
                let len = user_rng.below(max_len + 1);
                let history = (0..len).map(|_| 1 + user_rng.below(n_items - 1)).collect();
                Request {
                    id: user as u64,
                    history,
                }
            })
            .collect();
        Ok(QueryLog { queries })
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Serialize to the JSONL wire form (one request per line, trailing
    /// newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            out.push_str("{\"id\":");
            wr_tensor::json::write_f64(&mut out, q.id as f64);
            out.push_str(",\"history\":");
            out.push_str(&usize_array_to_string(&q.history));
            out.push_str("}\n");
        }
        out
    }

    /// Save as sealed JSONL: the lines are suffixed with a `#crc32:`
    /// integrity footer and landed atomically (temp → fsync → rename),
    /// so a crash mid-save never tears a recorded trace.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), QueryLogError> {
        wr_fault::write_atomic(path, wr_fault::seal_lines(self.to_jsonl()).as_bytes())?;
        Ok(())
    }

    fn parse_line(line: &str, number: usize) -> Result<Request, QueryLogError> {
        let parse_err = |message: String| QueryLogError::Parse {
            line: number,
            message,
        };
        let v = Json::parse(line).map_err(parse_err)?;
        let id = v
            .get("id")
            .and_then(|x| x.as_usize())
            .ok_or_else(|| parse_err("missing or non-integer \"id\"".into()))?;
        let history = v
            .get("history")
            .and_then(|x| x.as_usize_vec())
            .ok_or_else(|| parse_err("missing or malformed \"history\"".into()))?;
        Ok(Request {
            id: id as u64,
            history,
        })
    }

    /// Parse the JSONL wire form, strictly: the first malformed line is
    /// an error naming its position. Blank lines and `#` comments are
    /// skipped so hand-edited logs stay loadable.
    pub fn from_jsonl(text: &str) -> Result<QueryLog, QueryLogError> {
        let mut queries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            queries.push(QueryLog::parse_line(line, i + 1)?);
        }
        Ok(QueryLog { queries })
    }

    /// Parse the JSONL wire form leniently: malformed lines are skipped
    /// and counted instead of aborting the load. A recorder that died
    /// mid-line (or an operator's stray edit) costs one query, not the
    /// whole trace. Returns `(log, skipped_line_count)`.
    pub fn from_jsonl_lenient(text: &str) -> (QueryLog, usize) {
        let mut queries = Vec::new();
        let mut skipped = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match QueryLog::parse_line(line, i + 1) {
                Ok(q) => queries.push(q),
                Err(_) => skipped += 1,
            }
        }
        (QueryLog { queries }, skipped)
    }

    /// Strict load: integrity footer verified when present, first
    /// malformed line aborts.
    pub fn load(path: impl AsRef<Path>) -> Result<QueryLog, QueryLogError> {
        let text = std::fs::read_to_string(path)?;
        let body = wr_fault::verify_lines(&text)?;
        QueryLog::from_jsonl(body)
    }

    /// Lenient load for replay tooling: a failed footer check is still an
    /// error (the whole file is suspect), but individually malformed
    /// lines are skipped and counted.
    pub fn load_lenient(path: impl AsRef<Path>) -> Result<(QueryLog, usize), QueryLogError> {
        let text = std::fs::read_to_string(path)?;
        let body = wr_fault::verify_lines(&text)?;
        Ok(QueryLog::from_jsonl_lenient(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_reproducible_and_in_range() {
        let a = QueryLog::synthetic(100, 50, 12, 9);
        let b = QueryLog::synthetic(100, 50, 12, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.queries.iter().any(|q| q.history.is_empty()));
        for q in &a.queries {
            assert!(q.history.len() <= 12);
            for &item in &q.history {
                assert!((1..50).contains(&item));
            }
        }
        let c = QueryLog::synthetic(100, 50, 12, 10);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let a = QueryLog::synthetic_zipf(500, 1000, 50, 8, 1.1, 7).unwrap();
        let b = QueryLog::synthetic_zipf(500, 1000, 50, 8, 1.1, 7).unwrap();
        assert_eq!(a, b, "same seed → same trace");
        let c = QueryLog::synthetic_zipf(500, 1000, 50, 8, 1.1, 8).unwrap();
        assert_ne!(a, c, "different seeds should differ");
        for q in &a.queries {
            assert!((q.id as usize) < 1000);
            assert!(q.history.len() <= 8);
            for &item in &q.history {
                assert!((1..50).contains(&item));
            }
        }
    }

    #[test]
    fn zipf_skews_toward_head_users_and_replays_sessions() {
        let log = QueryLog::synthetic_zipf(4000, 500, 40, 6, 1.2, 11).unwrap();
        let mut counts = vec![0usize; 500];
        for q in &log.queries {
            counts[q.id as usize] += 1;
        }
        // Head users dominate the tail under α = 1.2.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[490..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "head users got {head}, tail got {tail}"
        );
        // A user's history is a pure function of (seed, user): every
        // repeat query from the same user carries the same session.
        let mut first: std::collections::HashMap<u64, &Vec<usize>> = Default::default();
        for q in &log.queries {
            match first.get(&q.id) {
                Some(h) => assert_eq!(*h, &q.history, "user {} session drifted", q.id),
                None => {
                    first.insert(q.id, &q.history);
                }
            }
        }
        assert!(first.len() > 50, "universe barely sampled");
    }

    #[test]
    fn zipf_rejects_degenerate_exponents() {
        for alpha in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match QueryLog::synthetic_zipf(10, 100, 20, 5, alpha, 1) {
                Err(ZipfError::BadAlpha(a)) => {
                    assert!(a.is_nan() == alpha.is_nan() && (a.is_nan() || a == alpha))
                }
                other => panic!("alpha {alpha} must be rejected, got {other:?}"),
            }
        }
        assert!(matches!(
            QueryLog::synthetic_zipf(10, 0, 20, 5, 1.0, 1),
            Err(ZipfError::NoUsers)
        ));
    }

    #[test]
    fn jsonl_round_trip() {
        let log = QueryLog::synthetic(40, 30, 6, 3);
        let text = log.to_jsonl();
        let back = QueryLog::from_jsonl(&text).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "{\"id\":7,\"history\":[1,2]}\n\n{\"id\":8,\"history\":[]}\n";
        let log = QueryLog::from_jsonl(text).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.queries[0].id, 7);
        assert_eq!(log.queries[0].history, vec![1, 2]);
        assert!(log.queries[1].history.is_empty());
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = QueryLog::from_jsonl("{\"id\":1,\"history\":[1]}\nnot json\n").unwrap_err();
        match err {
            QueryLogError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("wr_serve_querylog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let log = QueryLog::synthetic(16, 20, 5, 1);
        log.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().last().unwrap().starts_with("#crc32:"),
            "save must seal the trace"
        );
        let back = QueryLog::load(&path).unwrap();
        assert_eq!(log, back);
        let (lenient, skipped) = QueryLog::load_lenient(&path).unwrap();
        assert_eq!(lenient, log);
        assert_eq!(skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_parse_skips_and_counts_malformed_lines() {
        let text = concat!(
            "{\"id\":1,\"history\":[1]}\n",
            "not json at all\n",
            "{\"id\":2}\n",                      // missing history
            "{\"id\":\"x\",\"history\":[]}\n",  // non-integer id
            "# a comment survives\n",
            "{\"id\":3,\"history\":[4,5]}\n",
        );
        let (log, skipped) = QueryLog::from_jsonl_lenient(text);
        assert_eq!(skipped, 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.queries[0].id, 1);
        assert_eq!(log.queries[1].id, 3);
        assert_eq!(log.queries[1].history, vec![4, 5]);
        // The strict parser still aborts on the same input.
        assert!(QueryLog::from_jsonl(text).is_err());
    }

    #[test]
    fn tampered_sealed_trace_is_rejected_even_leniently() {
        let dir = std::env::temp_dir().join("wr_serve_querylog_tamper");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        QueryLog::synthetic(8, 20, 5, 2).save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("\"id\":0", "\"id\":7", 1)).unwrap();
        // A broken integrity footer means the whole file is suspect —
        // lenient line-skipping must not paper over it.
        assert!(matches!(QueryLog::load(&path), Err(QueryLogError::Io(_))));
        assert!(matches!(QueryLog::load_lenient(&path), Err(QueryLogError::Io(_))));
        std::fs::remove_file(&path).ok();
    }
}
