//! Batch-parallel top-k extraction over a score matrix.

use wr_eval::{top_k_filtered, ScoredItem};
use wr_tensor::Tensor;

/// Minimum rows per dispatched chunk: a top-k scan over a full catalog is
/// thousands of comparisons, so even single rows are worth a task, but
/// tiny batches should not fan out one row at a time.
const ROW_GRAIN: usize = 2;

/// Top-`k` per row of `scores: [batch, n_items]`, excluding each row's
/// `seen` items, parallelized over the batch on the `wr-runtime` pool.
///
/// Each row is extracted by exactly one pool task into its own output
/// slot (`parallel_chunks_mut` over the result vector, chunk boundaries
/// independent of thread count), and the per-row scorer
/// [`wr_eval::top_k_filtered`] is deterministic (`total_cmp`, index
/// tie-break) — so the output is bit-identical for any `WR_THREADS`.
///
/// `seen` must have one entry per batch row.
pub fn batch_top_k(scores: &Tensor, k: usize, seen: &[&[usize]]) -> Vec<Vec<ScoredItem>> {
    assert!(scores.rank() == 2, "batch_top_k expects [batch, n_items]");
    assert_eq!(
        scores.rows(),
        seen.len(),
        "one seen-list per batch row required"
    );
    let rows = scores.rows();
    let mut out: Vec<Vec<ScoredItem>> = vec![Vec::new(); rows];
    let chunk = wr_runtime::chunk_len(rows, ROW_GRAIN);
    wr_runtime::parallel_chunks_mut(&mut out, chunk, |ci, slot_chunk| {
        let base = ci * chunk;
        for (off, slot) in slot_chunk.iter_mut().enumerate() {
            let row = base + off;
            *slot = top_k_filtered(scores.row(row), k, seen[row]);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn matches_per_row_scorer() {
        let mut rng = Rng64::seed_from(5);
        let scores = Tensor::randn(&[17, 120], &mut rng);
        let seen_store: Vec<Vec<usize>> = (0..17)
            .map(|_| (0..rng.below(6)).map(|_| rng.below(120)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        let batched = batch_top_k(&scores, 10, &seen);
        for r in 0..17 {
            let solo = top_k_filtered(scores.row(r), 10, seen[r]);
            assert_eq!(batched[r], solo, "row {r}");
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let mut rng = Rng64::seed_from(6);
        // Quantized scores force exact ties across rows.
        let data: Vec<f32> = (0..64 * 200).map(|_| (rng.below(9) as f32) * 0.25).collect();
        let scores = Tensor::from_vec(data, &[64, 200]);
        let seen_store: Vec<Vec<usize>> = (0..64)
            .map(|_| (0..rng.below(4)).map(|_| rng.below(200)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        wr_runtime::set_threads(1);
        let serial = batch_top_k(&scores, 20, &seen);
        wr_runtime::set_threads(8);
        let parallel = batch_top_k(&scores, 20, &seen);
        wr_runtime::set_threads(1);
        assert_eq!(serial.len(), parallel.len());
        for (r, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.len(), b.len(), "row {r}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.item, y.item, "row {r}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let scores = Tensor::zeros(&[0, 10]);
        assert!(batch_top_k(&scores, 5, &[]).is_empty());
    }
}
