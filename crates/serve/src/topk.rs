//! Batch-parallel top-k extraction over a score matrix.
//!
//! The per-row scan is *segmented*: each score row is cut into
//! fixed-width column segments, each segment feeds its own bounded heap
//! ([`wr_eval::TopK`]), and the partials are combined with
//! [`merge_top_k`] — the same k-way merge the IVF list-scan and any
//! future sharded gateway use. The top-k of a disjoint union equals the
//! merge of per-part top-ks under one total order (`total_cmp`
//! descending, ascending item-index tie-break), so the segmented scan is
//! *exactly* — bit-for-bit — the single-pass [`wr_eval::top_k_filtered`]
//! result; the tests pin that equivalence.

pub use wr_eval::merge_top_k;
use wr_eval::{ScoredItem, TopK};
use wr_tensor::Tensor;

/// Minimum rows per dispatched chunk: a top-k scan over a full catalog is
/// thousands of comparisons, so even single rows are worth a task, but
/// tiny batches should not fan out one row at a time.
const ROW_GRAIN: usize = 2;

/// Columns per scan segment. Wide enough that the heap, not the merge,
/// dominates; narrow enough that a segment's scores stay cache-resident.
const SEGMENT: usize = 4096;

/// Top-`k` of one score row via segmented scan + k-way merge. `seen_mask`
/// is the row-length exclusion bitmap (seen items skipped before the
/// heap, exactly as [`wr_eval::top_k_filtered`] skips them). Returned
/// item ids are shifted by `item_base` — column `c` reports as
/// `item_base + c` — so a catalog-window row answers in global ids. The
/// shift preserves the tie order (it is monotone in the column index).
fn row_top_k_segmented(row: &[f32], k: usize, seen_mask: &[bool], item_base: usize) -> Vec<ScoredItem> {
    let n = row.len();
    let n_segments = n.div_ceil(SEGMENT).max(1);
    let mut partials: Vec<Vec<ScoredItem>> = Vec::with_capacity(n_segments);
    for s in 0..n_segments {
        let lo = s * SEGMENT;
        let hi = (lo + SEGMENT).min(n);
        let mut acc = TopK::new(k);
        for item in lo..hi {
            if !seen_mask[item] {
                acc.push(item_base + item, row[item]);
            }
        }
        partials.push(acc.into_sorted());
    }
    merge_top_k(k, &partials)
}

/// Top-`k` per row of `scores: [batch, n_items]`, excluding each row's
/// `seen` items, parallelized over the batch on the `wr-runtime` pool.
///
/// Each row is extracted by exactly one pool task into its own output
/// slot (`parallel_chunks_mut` over the result vector, chunk boundaries
/// independent of thread count), and the per-row segmented scorer is
/// deterministic (`total_cmp`, index tie-break) — so the output is
/// bit-identical for any `WR_THREADS`, and bit-identical to the unsplit
/// [`wr_eval::top_k_filtered`] scan.
///
/// `seen` must have one entry per batch row.
pub fn batch_top_k(scores: &Tensor, k: usize, seen: &[&[usize]]) -> Vec<Vec<ScoredItem>> {
    batch_top_k_shifted(scores, k, seen, 0)
}

/// [`batch_top_k`] over a catalog *window*: `scores` holds columns
/// `[item_base, item_base + n_items)` of the global catalog, `seen` lists
/// **global** item ids (entries outside the window are ignored — they
/// belong to some other shard), and the returned items are global ids.
///
/// With `item_base = 0` this is exactly `batch_top_k` — the window case
/// only shifts the mask lookup on the way in and the reported ids on the
/// way out, so per-shard results from disjoint windows merge into the
/// full-catalog answer bit-for-bit (see [`merge_top_k`]). The mask is
/// built in place per row (set, scan, unset) rather than remapping each
/// seen list into a fresh allocation on the hot path.
pub fn batch_top_k_shifted(
    scores: &Tensor,
    k: usize,
    seen: &[&[usize]],
    item_base: usize,
) -> Vec<Vec<ScoredItem>> {
    assert!(scores.rank() == 2, "batch_top_k expects [batch, n_items]");
    assert_eq!(
        scores.rows(),
        seen.len(),
        "one seen-list per batch row required"
    );
    let rows = scores.rows();
    let n_items = scores.cols();
    let mut out: Vec<Vec<ScoredItem>> = vec![Vec::new(); rows];
    let chunk = wr_runtime::chunk_len(rows, ROW_GRAIN);
    wr_runtime::parallel_chunks_mut(&mut out, chunk, |ci, slot_chunk| {
        let base = ci * chunk;
        let mut mask = vec![false; n_items];
        for (off, slot) in slot_chunk.iter_mut().enumerate() {
            let row = base + off;
            // `row < rows == seen.len()` because the chunks partition
            // `out`; the checked lookup keeps the pool closure panic-free.
            let row_seen: &[usize] = seen.get(row).copied().unwrap_or(&[]);
            for &s in row_seen {
                if let Some(m) = s.checked_sub(item_base).and_then(|l| mask.get_mut(l)) {
                    *m = true;
                }
            }
            *slot = row_top_k_segmented(scores.row(row), k, &mask, item_base);
            for &s in row_seen {
                if let Some(m) = s.checked_sub(item_base).and_then(|l| mask.get_mut(l)) {
                    *m = false;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_eval::top_k_filtered;
    use wr_tensor::Rng64;

    #[test]
    fn matches_per_row_scorer() {
        let mut rng = Rng64::seed_from(5);
        let scores = Tensor::randn(&[17, 120], &mut rng);
        let seen_store: Vec<Vec<usize>> = (0..17)
            .map(|_| (0..rng.below(6)).map(|_| rng.below(120)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        let batched = batch_top_k(&scores, 10, &seen);
        for r in 0..17 {
            let solo = top_k_filtered(scores.row(r), 10, seen[r]);
            assert_eq!(batched[r], solo, "row {r}");
        }
    }

    #[test]
    fn segmented_scan_is_bit_identical_to_unsplit() {
        // Rows wider than one segment, quantized scores so ties straddle
        // segment boundaries — the hard case for the merge.
        let mut rng = Rng64::seed_from(9);
        let cols = SEGMENT * 2 + 513;
        let data: Vec<f32> = (0..3 * cols).map(|_| (rng.below(7) as f32) * 0.5).collect();
        let scores = Tensor::from_vec(data, &[3, cols]);
        let seen_store: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..10).map(|_| rng.below(cols)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        let batched = batch_top_k(&scores, 25, &seen);
        for r in 0..3 {
            let solo = top_k_filtered(scores.row(r), 25, seen[r]);
            assert_eq!(batched[r].len(), solo.len(), "row {r}");
            for (a, b) in batched[r].iter().zip(&solo) {
                assert_eq!(a.item, b.item, "row {r}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let mut rng = Rng64::seed_from(6);
        // Quantized scores force exact ties across rows.
        let data: Vec<f32> = (0..64 * 200).map(|_| (rng.below(9) as f32) * 0.25).collect();
        let scores = Tensor::from_vec(data, &[64, 200]);
        let seen_store: Vec<Vec<usize>> = (0..64)
            .map(|_| (0..rng.below(4)).map(|_| rng.below(200)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        wr_runtime::set_threads(1);
        let serial = batch_top_k(&scores, 20, &seen);
        wr_runtime::set_threads(8);
        let parallel = batch_top_k(&scores, 20, &seen);
        wr_runtime::set_threads(1);
        assert_eq!(serial.len(), parallel.len());
        for (r, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.len(), b.len(), "row {r}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.item, y.item, "row {r}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let scores = Tensor::zeros(&[0, 10]);
        assert!(batch_top_k(&scores, 5, &[]).is_empty());
    }

    #[test]
    fn shifted_window_matches_full_catalog_slice() {
        // Score a full catalog, then re-extract through a window at
        // item_base: the window's global-id results must be exactly the
        // full extraction restricted to the window (quantized scores so
        // ties cross the boundary).
        let mut rng = Rng64::seed_from(12);
        let (n_items, base, width) = (230usize, 57usize, 91usize);
        let data: Vec<f32> = (0..5 * n_items).map(|_| (rng.below(11) as f32) * 0.5).collect();
        let scores = Tensor::from_vec(data, &[5, n_items]);
        let window_data: Vec<f32> = (0..5)
            .flat_map(|r| scores.row(r)[base..base + width].to_vec())
            .collect();
        let window = Tensor::from_vec(window_data, &[5, width]);
        let seen_store: Vec<Vec<usize>> = (0..5)
            .map(|_| (0..8).map(|_| rng.below(n_items)).collect())
            .collect();
        let seen: Vec<&[usize]> = seen_store.iter().map(|s| s.as_slice()).collect();
        // k larger than the whole catalog so nothing is lost to
        // truncation on either side.
        let k = n_items + 5;
        let full = batch_top_k(&scores, k, &seen);
        let shifted = batch_top_k_shifted(&window, k, &seen, base);
        for r in 0..5 {
            let expect: Vec<_> = full[r]
                .iter()
                .filter(|s| (base..base + width).contains(&s.item))
                .collect();
            assert_eq!(shifted[r].len(), expect.len(), "row {r}");
            for (a, b) in shifted[r].iter().zip(expect) {
                assert_eq!(a.item, b.item, "row {r}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "row {r}");
            }
        }
    }
}
