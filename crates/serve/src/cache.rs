//! Read-only item-embedding cache shared across serving threads.

use std::sync::Arc;

use wr_tensor::Tensor;
use wr_train::SeqRecModel;
use wr_whiten::{GroupWhitening, WhiteningMethod};

/// The frozen item matrix a serving process scores against, stored once.
///
/// Two tensors live behind `Arc`s: the projected item representations
/// `V: [n_items, d]` and the pre-materialized transpose `Vᵀ: [d, n_items]`
/// that the scoring matmul consumes. Cloning the cache clones handles, not
/// buffers — every micro-batch, worker thread, and engine clone reads the
/// same memory. The transpose is materialized eagerly because it is hit by
/// every single query, while `V` itself is kept for diagnostics and
/// row-level lookups.
///
/// The cache is deliberately *not* mutable: WhitenRec's whitening matrix
/// and the trained projection head are fixed at deployment time (the paper
/// computes the whitened table once, as a pre-processing step), which is
/// what makes the zero-copy sharing sound.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    items: Arc<Tensor>,
    items_t: Arc<Tensor>,
}

impl EmbeddingCache {
    /// Wrap a projected item matrix `V: [n_items, d]`.
    pub fn new(items: Tensor) -> Self {
        assert!(items.rank() == 2, "EmbeddingCache expects [n_items, d]");
        let items_t = items.transpose();
        EmbeddingCache {
            items: Arc::new(items),
            items_t: Arc::new(items_t),
        }
    }

    /// Snapshot a trained model's item representations (the tower output
    /// `V` of Eq. 2). For WhitenRec this bakes the whitened table *and*
    /// the trained projection head into one frozen matrix, so serving
    /// never re-runs the tower.
    pub fn from_model(model: &dyn SeqRecModel) -> Self {
        EmbeddingCache::new(model.item_representations())
    }

    /// Build the paper's frozen whitened table directly from raw text
    /// embeddings: relaxed group whitening with `groups` groups (`groups =
    /// 1` is full ZCA, Eq. 4–6). This is the table a WhitenRec tower is
    /// constructed around; callers that serve a full model should prefer
    /// [`EmbeddingCache::from_model`], which also includes the projection.
    pub fn whitened(raw: &Tensor, groups: usize, eps: f32) -> Self {
        let gw = GroupWhitening::fit(raw, groups, WhiteningMethod::Zca, eps);
        EmbeddingCache::new(gw.apply(raw))
    }

    /// The item matrix `V: [n_items, d]`.
    pub fn items(&self) -> &Tensor {
        &self.items
    }

    /// The pre-materialized transpose `Vᵀ: [d, n_items]`.
    pub fn items_t(&self) -> &Tensor {
        &self.items_t
    }

    pub fn n_items(&self) -> usize {
        self.items.rows()
    }

    pub fn dim(&self) -> usize {
        self.items.cols()
    }

    /// True when `other` is a handle onto the same underlying buffers —
    /// the no-copy guarantee, testable.
    pub fn shares_storage_with(&self, other: &EmbeddingCache) -> bool {
        Arc::ptr_eq(&self.items, &other.items) && Arc::ptr_eq(&self.items_t, &other.items_t)
    }

    /// Build an IVF-flat index over this catalog (deterministic for fixed
    /// `(table, nlist, seed)` — see `wr_ann`). The whitened table is the
    /// intended input: isotropic geometry is what makes the coarse
    /// quantizer's cells well-behaved for inner-product search.
    pub fn build_ivf(&self, nlist: usize, seed: u64) -> Result<wr_ann::IvfIndex, wr_ann::AnnError> {
        wr_ann::IvfIndex::build(&self.items, nlist, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn clone_shares_storage() {
        let mut rng = Rng64::seed_from(1);
        let cache = EmbeddingCache::new(Tensor::randn(&[10, 4], &mut rng));
        let handle = cache.clone();
        assert!(cache.shares_storage_with(&handle));
        assert_eq!(handle.n_items(), 10);
        assert_eq!(handle.dim(), 4);
        // Independent caches over equal data do NOT share storage.
        let other = EmbeddingCache::new(cache.items().clone());
        assert!(!cache.shares_storage_with(&other));
    }

    #[test]
    fn transpose_is_materialized_consistently() {
        let mut rng = Rng64::seed_from(2);
        let v = Tensor::randn(&[6, 3], &mut rng);
        let cache = EmbeddingCache::new(v.clone());
        assert_eq!(cache.items_t().dims(), &[3, 6]);
        for i in 0..6 {
            for j in 0..3 {
                assert_eq!(cache.items().at2(i, j), cache.items_t().at2(j, i));
            }
        }
        assert_eq!(cache.items().data(), v.data());
    }

    #[test]
    fn whitened_table_is_white() {
        let mut rng = Rng64::seed_from(3);
        let mixer = Tensor::randn(&[8, 8], &mut rng);
        let raw = Tensor::randn(&[400, 8], &mut rng).matmul(&mixer);
        let cache = EmbeddingCache::whitened(&raw, 1, 1e-6);
        let cov = wr_linalg::covariance_of_rows(cache.items(), 0.0);
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (cov.at2(i, j) - expect).abs() < 0.1,
                    "cov[{i}][{j}] = {}",
                    cov.at2(i, j)
                );
            }
        }
    }

    #[test]
    fn sharing_across_pool_threads_reads_one_buffer() {
        let mut rng = Rng64::seed_from(4);
        let cache = EmbeddingCache::new(Tensor::randn(&[64, 8], &mut rng));
        // Sum each row on the pool; every task reads through the same Arc.
        let sums = wr_runtime::parallel_map(cache.n_items(), 8, |i| {
            cache.items().row(i).iter().map(|&x| x as f64).sum::<f64>()
        });
        let serial: Vec<f64> = (0..cache.n_items())
            .map(|i| cache.items().row(i).iter().map(|&x| x as f64).sum::<f64>())
            .collect();
        assert_eq!(sums, serial);
    }
}
